//! End-to-end integration: PIR → pcc → image → simulated OS → protean
//! runtime → online transformation, checking semantic preservation and
//! the paper's core mechanism claims across crate boundaries.

use pcc::{Compiler, EdgePolicy, NtAssignment, Options};
use pir::{FunctionBuilder, Locality, Module};
use protean::{Runtime, RuntimeConfig};
use simos::{Os, OsConfig};

/// A deterministic program that computes a checksum over a buffer (with
/// enough structure to exercise calls, loops, and both load kinds) and
/// stores it to a known location, then halts.
fn checksum_program() -> Module {
    let mut m = Module::new("checksum");
    let data = m.add_global_full(pir::Global::with_words(
        "data",
        (0..512)
            .map(|i| (i * 2654435761u64 as i64) ^ 0x5bd1e995)
            .collect(),
    ));
    let out = m.add_global("out", 64);

    // mix(acc, v) -> acc'
    let mut mix = FunctionBuilder::new("mix", 2);
    let acc = mix.param(0);
    let v = mix.param(1);
    let x = mix.bin(pir::BinOp::Xor, acc, v);
    let r = mix.mul_imm(x, 0x100000001b3u64 as i64);
    let t = mix.new_block();
    mix.br(t);
    mix.switch_to(t);
    mix.ret(Some(r));
    let mix_id = m.add_function(mix.finish());

    // sum() -> checksum over the buffer
    let mut sum = FunctionBuilder::new("sum", 0);
    let base = sum.global_addr(data);
    let acc0 = sum.const_(0xcbf29ce484222325u64 as i64);
    let acc_r = sum.accumulate_loop(0, 512, 1, acc0, |b, i, acc| {
        let off = b.shl_imm(i, 3);
        let addr = b.add(base, off);
        let v = b.load(addr, 0, Locality::Normal);
        let mixed = b.call(mix_id, &[acc, v]);
        b.add_into(acc, mixed, mixed);
    });
    sum.ret(Some(acc_r));
    let sum_id = m.add_function(sum.finish());

    let mut main_fn = FunctionBuilder::new("main", 0);
    let o = main_fn.global_addr(out);
    let c1 = main_fn.call(sum_id, &[]);
    main_fn.store(o, 0, c1);
    let c2 = main_fn.call(sum_id, &[]);
    main_fn.store(o, 8, c2);
    main_fn.ret(None);
    let main_id = m.add_function(main_fn.finish());
    m.set_entry(main_id);
    m
}

fn run_to_halt(image: &visa::Image) -> (Os, simos::Pid) {
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(image, 0);
    for _ in 0..10_000 {
        os.advance(100_000);
        if matches!(os.status(pid), machine::ExecStatus::Halted) {
            return (os, pid);
        }
    }
    panic!("program did not halt");
}

fn checksum_of(os: &Os, pid: simos::Pid, image: &visa::Image) -> (u64, u64) {
    let g = image.global_by_name("out").expect("out global");
    (os.read_u64(pid, g.addr), os.read_u64(pid, g.addr + 8))
}

#[test]
fn plain_and_protean_binaries_compute_identical_results() {
    let m = checksum_program();
    let plain = Compiler::new(Options::plain()).compile(&m).unwrap().image;
    let protean = Compiler::new(Options::protean()).compile(&m).unwrap().image;
    let (os_a, pid_a) = run_to_halt(&plain);
    let (os_b, pid_b) = run_to_halt(&protean);
    let a = checksum_of(&os_a, pid_a, &plain);
    let b = checksum_of(&os_b, pid_b, &protean);
    assert_eq!(a, b, "edge virtualization must be semantically invisible");
    assert_ne!(a.0, 0);
    assert_eq!(a.0, a.1, "checksum is deterministic across calls");
}

#[test]
fn transformed_variant_preserves_semantics() {
    // Swap `sum` for a fully non-temporal variant between the two calls:
    // the second checksum must still equal the first.
    let m = checksum_program();
    let out = Compiler::new(Options::protean()).compile(&m).unwrap();
    let image = out.image;
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&image, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let sum_id = rt.module().function_by_name("sum").unwrap();
    // Transform immediately; the EVT routes the *next* call to the
    // variant. Because dispatch is asynchronous this can happen while the
    // program runs.
    let nt = NtAssignment::all(pir::load_sites(rt.module()).iter().map(|s| s.site));
    rt.transform(&mut os, sum_id, &nt).unwrap();
    for _ in 0..10_000 {
        os.advance(100_000);
        if matches!(os.status(pid), machine::ExecStatus::Halted) {
            break;
        }
    }
    assert!(matches!(os.status(pid), machine::ExecStatus::Halted));
    let (c1, c2) = checksum_of(&os, pid, &image);
    assert_eq!(c1, c2, "the NT variant must compute the same checksum");
    assert!(
        os.counters(pid).nt_prefetches > 0,
        "the variant must actually have run"
    );
}

#[test]
fn image_byte_roundtrip_runs_identically() {
    let m = checksum_program();
    let image = Compiler::new(Options::protean()).compile(&m).unwrap().image;
    let bytes = visa::encode::encode_image(&image);
    let image2 = visa::encode::decode_image(&bytes).unwrap();
    assert_eq!(image, image2);
    let (os_a, pid_a) = run_to_halt(&image);
    let (os_b, pid_b) = run_to_halt(&image2);
    assert_eq!(
        checksum_of(&os_a, pid_a, &image),
        checksum_of(&os_b, pid_b, &image2)
    );
    assert_eq!(
        os_a.counters(pid_a).instructions,
        os_b.counters(pid_b).instructions,
        "decoded image must execute identically"
    );
}

#[test]
fn edge_policies_are_semantically_equivalent() {
    let m = checksum_program();
    let mut results = Vec::new();
    for policy in [
        EdgePolicy::Never,
        EdgePolicy::MultiBlockCallees,
        EdgePolicy::AllCalls,
    ] {
        let opts = Options {
            protean: true,
            edge_policy: policy,
            embed_ir: true,
            optimize: false,
            ..Options::protean()
        };
        let image = Compiler::new(opts).compile(&m).unwrap().image;
        let (os, pid) = run_to_halt(&image);
        results.push(checksum_of(&os, pid, &image));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn simulation_is_deterministic() {
    let build = || {
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let host = workloads::catalog::build("milc", llc).unwrap();
        let ext = workloads::catalog::build("web-search", llc).unwrap();
        let host_img = Compiler::new(Options::protean())
            .compile(&host)
            .unwrap()
            .image;
        let ext_img = Compiler::new(Options::plain()).compile(&ext).unwrap().image;
        let mut os = Os::new(cfg);
        let e = os.spawn(&ext_img, 0);
        let h = os.spawn(&host_img, 1);
        os.set_load(e, simos::LoadSchedule::constant(8.0));
        os.advance_seconds(5.0);
        (os.counters(h), os.counters(e), os.app_metric(e, 0))
    };
    assert_eq!(build(), build(), "two identical runs must agree exactly");
}

#[test]
fn runtime_survives_repeated_transform_restore_cycles() {
    let m = checksum_program();
    let out = Compiler::new(Options::protean()).compile(&m).unwrap();
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&out.image, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let sum_id = rt.module().function_by_name("sum").unwrap();
    let sites: Vec<_> = pir::load_sites(rt.module())
        .iter()
        .map(|s| s.site)
        .filter(|s| s.func == sum_id)
        .collect();
    // Cycle through many distinct variants while the program runs.
    for k in 0..sites.len() {
        let nt: NtAssignment = sites.iter().copied().take(k + 1).collect();
        rt.transform(&mut os, sum_id, &nt).unwrap();
        os.advance(20_000);
        rt.restore(&mut os, sum_id).unwrap();
        os.advance(20_000);
    }
    assert_eq!(rt.compilations() as usize, sites.len());
    // Finish the program; the answer must be unaffected.
    for _ in 0..10_000 {
        os.advance(100_000);
        if matches!(os.status(pid), machine::ExecStatus::Halted) {
            break;
        }
    }
    let g = out.image.global_by_name("out").unwrap();
    assert_eq!(os.read_u64(pid, g.addr), os.read_u64(pid, g.addr + 8));
}

#[test]
fn assembled_text_programs_execute() {
    // The visa assembler + the machine: write a program in text, run it.
    let ops = visa::assemble(
        "    movi r0, #0\n\
             movi r1, #10\n\
         loop:\n\
             add  r0, r0, #1\n\
             lt   r2, r0, r1\n\
             bnz  r2, loop\n\
             movi r3, #256\n\
             st   [r3+0], r0\n\
             halt\n",
    )
    .expect("assemble");
    use machine::{CostModel, ExecContext, ExecEnv, MachineConfig, MemorySystem, PerfCounters};
    let cfg = MachineConfig::small();
    let mut mem = MemorySystem::new(&cfg);
    let mut counters = PerfCounters::default();
    let mut ctx = ExecContext::new(0, 1, 0);
    let mut data = vec![0u8; 512];
    let mut blocks = machine::BlockCache::new();
    let mut env = ExecEnv {
        text: &ops,
        text_gen: 0,
        blocks: &mut blocks,
        data: &mut data,
        mem: &mut mem,
        core: 0,
        counters: &mut counters,
        costs: CostModel::default(),
    };
    let res = machine::exec::run(&mut ctx, &mut env, 100_000);
    assert_eq!(res.stop, machine::StopReason::Halted);
    assert_eq!(i64::from_le_bytes(data[256..264].try_into().unwrap()), 10);
}
