//! Trace determinism and observability integration tests.
//!
//! Every trace event is stamped with the simulated cycle counter — never
//! a wall clock — so two runs from the same seed must produce
//! *bit-identical* exported traces. CI leans on this: it runs this test
//! binary twice with `PROTEAN_TRACE` pointing at two different
//! directories and `diff`s the exports; any nondeterminism (a stray
//! `Instant::now()`, an unordered `HashMap` walk feeding the stream)
//! fails the build.
//!
//! The second group checks the ring-buffer discipline end-to-end: a
//! deliberately tiny runtime ring overflows under a chaos run, the drop
//! counter says so, and the surviving events are still in order.

use pc3d::{Pc3d, Pc3dConfig};
use pcc::{Compiler, Options};
use protean::{FaultKind, FaultPlan, HealthConfig, Runtime, RuntimeConfig, Subsystem};
use simos::{Os, OsConfig, Pid};

fn spawn_pair(host: &str, ext: &str) -> (Os, Pid, Pid, Runtime) {
    let cfg = OsConfig::small();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let host_img = Compiler::new(Options::protean())
        .compile(&workloads::catalog::build(host, llc).unwrap())
        .unwrap()
        .image;
    let ext_img = Compiler::new(Options::plain())
        .compile(&workloads::catalog::build(ext, llc).unwrap())
        .unwrap()
        .image;
    let mut os = Os::new(cfg);
    let e = os.spawn(&ext_img, 0);
    let h = os.spawn(&host_img, 1);
    let rt = Runtime::attach(&os, h, RuntimeConfig::on_core(1)).unwrap();
    (os, h, e, rt)
}

/// One fully traced chaos run: tracing force-enabled (independent of
/// `PROTEAN_TRACE`), EVT writes dropped half the time, one-strike
/// quarantine, ladder frozen high so the controller keeps dispatching.
fn traced_chaos_run(seed: u64, secs: f64) -> (Os, Pc3d) {
    let (mut os, _h, ext, mut rt) = spawn_pair("libquantum", "mcf");
    rt.tracer_mut().set_enabled(true);
    let mut ctl = Pc3d::with_health(
        &mut os,
        rt,
        ext,
        Pc3dConfig {
            qos_target: 0.98,
            ..Pc3dConfig::default()
        },
        HealthConfig {
            quarantine_threshold: 1,
            degrade_threshold: 1_000,
            detach_threshold: 2_000,
            ..HealthConfig::default()
        },
    );
    ctl.inject_faults(
        &mut os,
        FaultPlan::seeded(seed).with_rate(FaultKind::EvtWriteFail, 0.5),
    );
    ctl.run_for(&mut os, secs);
    (os, ctl)
}

#[test]
fn same_seed_runs_export_bit_identical_traces() {
    let (os_a, ctl_a) = traced_chaos_run(7, 60.0);
    let (os_b, ctl_b) = traced_chaos_run(7, 60.0);

    let jsonl_a = ctl_a.runtime().trace_jsonl(&os_a);
    let jsonl_b = ctl_b.runtime().trace_jsonl(&os_b);
    assert!(!jsonl_a.is_empty(), "a chaos run must produce events");
    assert_eq!(
        jsonl_a, jsonl_b,
        "same-seed JSONL streams must be bit-identical"
    );

    let chrome_a = ctl_a.runtime().chrome_trace(&os_a);
    let chrome_b = ctl_b.runtime().chrome_trace(&os_b);
    assert_eq!(
        chrome_a, chrome_b,
        "same-seed Chrome traces must be bit-identical"
    );

    // CI determinism gate: with `PROTEAN_TRACE` set, write the export so
    // two invocations of this binary can be `diff`ed. A no-op otherwise.
    let files = ctl_a
        .export_trace(&os_a, "trace_replay_chaos")
        .expect("export must not fail");
    if let Some(files) = files {
        assert!(files.chrome.exists() && files.jsonl.exists());
    }
}

#[test]
fn chaos_trace_contains_every_decision_class() {
    let (os, ctl) = traced_chaos_run(7, 60.0);
    let jsonl = ctl.runtime().trace_jsonl(&os);
    // Compile, dispatch (successful and dropped EVT writes), safety-gate
    // verdicts, quarantine, nap duty-cycle moves, the variant search, and
    // the kernel's PC-sample delivery must all be on the one stream.
    for needed in [
        "\"event\":\"compile-start\"",
        "\"event\":\"compile-finish\"",
        "\"event\":\"gate-verdict\"",
        "\"event\":\"evt-write\"",
        "\"event\":\"evt-write-dropped\"",
        "\"event\":\"quarantine\"",
        "\"event\":\"nap-set\"",
        "\"event\":\"search-start\"",
        "\"event\":\"search-end\"",
        "\"event\":\"pc-sample\"",
        "\"event\":\"counter-read\"",
    ] {
        assert!(
            jsonl.contains(needed),
            "trace must contain {needed}; got events: {:?}",
            event_names(&jsonl)
        );
    }
    // The Chrome export carries the same taxonomy (acceptance criterion:
    // compile, dispatch, quarantine, and nap events).
    let chrome = ctl.runtime().chrome_trace(&os);
    for needed in ["compile-finish", "evt-write", "quarantine", "nap-set"] {
        assert!(chrome.contains(needed), "chrome trace must show {needed}");
    }
    // Cycle stamps only: a simulated trace cannot mention wall time.
    assert!(chrome.starts_with('[') && chrome.trim_end().ends_with(']'));

    // The metrics surface agrees with the events.
    let snap = ctl.metrics_snapshot();
    assert!(snap.counters["compile.count"] > 0);
    assert!(snap.counters["dispatch.count"] > 0);
    assert!(snap.counters["health.quarantines"] > 0);
    assert!(snap.counters.contains_key("pc3d.qos_window_violations"));
    assert!(snap.histograms["pc3d.qos_window_slack_permille"].count > 0);
    assert!(snap.gauges.contains_key("pc3d.nap_permille"));
}

fn event_names(jsonl: &str) -> Vec<String> {
    let mut names: Vec<String> = jsonl
        .lines()
        .filter_map(|l| {
            let start = l.find("\"event\":\"")? + "\"event\":\"".len();
            let end = l[start..].find('"')? + start;
            Some(l[start..end].to_string())
        })
        .collect();
    names.sort();
    names.dedup();
    names
}

#[test]
fn ring_overflow_counts_drops_and_keeps_order() {
    let (mut os, _h, ext, mut rt) = spawn_pair("libquantum", "mcf");
    rt.tracer_mut().set_enabled(true);
    rt.tracer_mut().set_capacity(Subsystem::Runtime, 8);
    let mut ctl = Pc3d::new(
        &mut os,
        rt,
        ext,
        Pc3dConfig {
            qos_target: 0.98,
            ..Pc3dConfig::default()
        },
    );
    ctl.run_for(&mut os, 60.0);

    let tracer = ctl.runtime().tracer();
    assert!(
        tracer.dropped(Subsystem::Runtime) > 0,
        "an 8-slot runtime ring must overflow during a searching run"
    );
    let survivors = tracer.events(Subsystem::Runtime);
    assert!(survivors.len() <= 8);
    assert!(
        survivors
            .windows(2)
            .all(|w| w[0].seq < w[1].seq && w[0].cycle <= w[1].cycle),
        "surviving events must stay in emission order"
    );
    // The merged stream (all subsystems) is still globally sorted.
    let merged = tracer.merged();
    assert!(merged
        .windows(2)
        .all(|w| (w[0].cycle, w[0].seq) <= (w[1].cycle, w[1].seq)));
}

#[test]
fn disabled_tracer_records_nothing_during_a_full_run() {
    // `PROTEAN_TRACE` unset (the bench_gate configuration): attach leaves
    // the tracer disabled and a full controller run must not buffer a
    // single event — the overhead story depends on it.
    if std::env::var_os("PROTEAN_TRACE").is_some() {
        return; // CI determinism shard runs with tracing armed.
    }
    let (mut os, _h, ext, rt) = spawn_pair("libquantum", "mcf");
    let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
    ctl.run_for(&mut os, 10.0);
    assert!(ctl.runtime().tracer().is_empty());
    assert!(!os.obs_trace_enabled());
}
