//! Soundness fuzzing of OSR transfer recipes against the reference
//! interpreter, over the full workload catalog.
//!
//! The transfer contract is *suffix equivalence*: running the baseline
//! to its N-th certified-header hit, rebuilding the frame through a
//! [`Proved`](pir::equiv::TransferVerdict::Proved) recipe, and
//! continuing in the variant must produce observables (final data
//! segment, metric reports, parked flag) bit-identical to the
//! baseline run it continues. This harness drives
//! [`pir::interp::run_with_transfer`] as the concrete oracle for every
//! recipe the cut-point prover certifies — on pristine catalog
//! workloads, their non-temporal variants, and seeded semantic mutants.
//! A single diverging proved recipe is an unsoundness and fails the run.
//!
//! The harness also proves the prover can actually reject bad recipes:
//! corrupted recipes (rotated move sources, dropped moves, poisoned
//! compensation constants) must never re-validate as `Proved` unless
//! they are accidentally still correct, in which case the lockstep
//! oracle must agree.
//!
//! Mutations are drawn from a seeded generator so CI is reproducible;
//! set `PROTEAN_OSR_FUZZ_SEED` to explore a different stream. On a
//! failure, set `PROTEAN_OSR_DUMP` to a path to get the offending
//! module rendered with absint + OSR annotations and the recipe under
//! test appended.

use pir::absint::{self, OsrCertificate};
use pir::equiv::{EquivOptions, TransferRecipe, TransferVerdict};
use pir::interp::{self, InterpError, OsrTransferSpec};
use pir::{FuncId, FunctionBuilder, Inst, Locality, Module};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::catalog;

const LLC_LINES: u64 = 4_096;
/// Catalog drivers loop forever (batch) or park in `Wait` (server), so
/// the concrete oracle replaces the entry with a bounded driver and
/// shrinks the working sets: at 64 LLC lines every workload completes
/// in under half a million interpreter steps.
const DRIVER_LLC_LINES: u64 = 64;
const STEP_BUDGET: u64 = 5_000_000;
/// Header hits to transfer at: the first iteration, a mid-loop one, and
/// one deep enough to skip short loops entirely (`transferred == false`
/// then ends the sweep for that recipe).
const TRANSFER_HITS: [u64; 3] = [1, 3, 9];

/// The same synthetic 64-byte-aligned placement the absint and
/// equivalence fuzzers use, so failures reproduce across harnesses.
fn layout(m: &Module) -> (Vec<u64>, usize) {
    let mut addrs = Vec::new();
    let mut next = 64u64;
    for g in m.globals() {
        addrs.push(next);
        next += g.size().div_ceil(64).max(1) * 64;
    }
    (addrs, next as usize + 64)
}

fn fuzz_seed() -> u64 {
    std::env::var("PROTEAN_OSR_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0512_2014)
}

/// A per-program RNG stream: deterministic for a given base seed and
/// corpus position regardless of which pool worker runs the program.
fn program_rng(base: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(base ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Every buildable catalog workload — batch and server alike.
fn corpus() -> Vec<(&'static str, Module)> {
    catalog::CATALOG
        .iter()
        .filter_map(|w| catalog::build(w.name, LLC_LINES).map(|m| (w.name, m)))
        .collect()
}

/// Replaces the entry with a bounded driver that calls every worker
/// function `rounds` times and returns. Catalog entries are infinite
/// request loops; the workers they call (and everything the OSR
/// certificates describe) terminate per call, so this yields a module
/// with the same certified headers but decidable whole-run observables.
fn terminating(m: &Module, rounds: i64) -> Module {
    let mut t = m.clone();
    let entry = t.entry().expect("catalog modules have an entry");
    let callees: Vec<FuncId> = (0..t.functions().len() as u32)
        .map(FuncId)
        .filter(|f| *f != entry)
        .collect();
    let mut b = FunctionBuilder::new("driver", 0);
    b.counted_loop(0, rounds, 1, |b, _| {
        for f in &callees {
            b.call_void(*f, &[]);
        }
    });
    b.ret(None);
    t.functions_mut()[entry.index()] = b.finish();
    t
}

/// The interpreter-facing corpus: terminating drivers over shrunken
/// working sets, re-verified so a harness bug cannot masquerade as a
/// prover bug.
fn driver_corpus() -> Vec<(&'static str, Module)> {
    catalog::CATALOG
        .iter()
        .filter_map(|w| {
            let m = catalog::build(w.name, DRIVER_LLC_LINES)?;
            let t = terminating(&m, 1);
            pir::verify::verify_module(&t).unwrap_or_else(|e| panic!("{}: driver: {e}", w.name));
            Some((w.name, t))
        })
        .collect()
}

fn certs_of(m: &Module) -> Vec<OsrCertificate> {
    absint::certify_module(m)
        .into_iter()
        .filter_map(|d| d.certificate().cloned())
        .collect()
}

/// The all-NT variant module: every load in `fid` flipped non-temporal
/// — the paper's legal transformation space, and the shape the runtime
/// actually switches into mid-loop.
fn nt_variant(m: &Module, fid: FuncId) -> Module {
    let mut v = m.clone();
    for block in v.functions_mut()[fid.index()].blocks_mut() {
        for inst in &mut block.insts {
            if let Inst::Load { locality, .. } = inst {
                *locality = Locality::NonTemporal;
            }
        }
    }
    v
}

/// Fails the test with `why`, first dumping annotated IR (and the
/// recipe under test) to `PROTEAN_OSR_DUMP` when set.
fn fail_with_dump(name: &str, m: &Module, recipe: Option<&TransferRecipe>, why: &str) -> ! {
    if let Ok(path) = std::env::var("PROTEAN_OSR_DUMP") {
        let opts = pir::PrintOptions {
            absint: true,
            osr: true,
        };
        let mut text = pir::render_module(m, &opts);
        if let Some(r) = recipe {
            text.push('\n');
            text.push_str(&pir::render_transfer_recipe(r));
            text.push('\n');
        }
        let _ = std::fs::write(&path, text);
        panic!("{name}: {why} (annotated IR dumped to {path})");
    }
    panic!("{name}: {why}");
}

/// Runs the lockstep oracle for one recipe: transfer at each pinned
/// header hit and compare observables against the baseline-from-start
/// run. That is the recipe's contract — the transferred run is the
/// *baseline's* continuation, rebuilt in the variant's frame — and for
/// the locality variants the runtime switches into it coincides with
/// variant-from-start, since the interpreter ignores NT hints. `Err`
/// describes the first divergence; runs the oracle cannot decide (step
/// budget, faults on both sides) are vacuously `Ok`.
fn lockstep(baseline: &Module, variant: &Module, recipe: &TransferRecipe) -> Result<u32, String> {
    let (addrs, size) = layout(baseline);
    let oracle = match interp::run(baseline, &addrs, size, STEP_BUDGET) {
        Ok(o) => o,
        Err(_) => return Ok(0), // no decidable oracle for this module
    };
    let mut checked = 0u32;
    for hit in TRANSFER_HITS {
        let spec = OsrTransferSpec {
            func: recipe.func,
            from_block: recipe.baseline_header,
            to_block: recipe.variant_header,
            hit,
            moves: &recipe.moves,
            consts: &recipe.consts,
        };
        let t = match interp::run_with_transfer(baseline, variant, &spec, &addrs, size, STEP_BUDGET)
        {
            Ok(t) => t,
            // An exhausted budget is inconclusive, not a divergence.
            Err(InterpError::StepBudgetExceeded) => break,
            Err(e) => return Err(format!("transfer at hit {hit}: interpreter error: {e}")),
        };
        if !t.transferred {
            break; // the loop finished before this hit; deeper hits won't fire
        }
        if t.result.data != oracle.data
            || t.result.reports != oracle.reports
            || t.result.parked != oracle.parked
        {
            return Err(format!(
                "transfer at hit {hit}: observables diverge from the \
                 variant-from-start oracle"
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

#[test]
fn proved_recipes_cover_most_certified_headers() {
    let corpus = corpus();
    assert!(corpus.len() >= 20, "catalog shrank to {}", corpus.len());
    let per_program = protean_bench::pool::map(&corpus, |_, (name, m)| {
        let mut certified = 0usize;
        let mut proved = 0usize;
        for cert in certs_of(m) {
            certified += 1;
            let verdict = pir::prove_osr_transfer(m, m, cert.func, &cert, &EquivOptions::default());
            match verdict {
                TransferVerdict::Proved { .. } => proved += 1,
                TransferVerdict::Refuted(cex) => fail_with_dump(
                    name,
                    m,
                    None,
                    &format!("identity self-transfer refuted at {}: {cex}", cert.header),
                ),
                TransferVerdict::Unproved { .. } => {}
            }
        }
        (certified, proved)
    });
    let certified: usize = per_program.iter().map(|(c, _)| c).sum();
    let proved: usize = per_program.iter().map(|(_, p)| p).sum();
    assert!(certified > 0, "catalog has no certified headers?");
    // The acceptance bar: at least 60% of certified headers carry a
    // proved transfer recipe. Soundness is absolute; coverage is the
    // tuning knob this guards.
    assert!(
        proved * 10 >= certified * 6,
        "only {proved}/{certified} certified headers proved a transfer recipe"
    );
}

#[test]
fn proved_recipes_pass_the_interpreter_lockstep_oracle() {
    let corpus = driver_corpus();
    assert!(!corpus.is_empty());
    let per_program = protean_bench::pool::map(&corpus, |_, (name, m)| {
        let mut checked = 0u32;
        for cert in certs_of(m) {
            // Identity transfer (baseline to itself)…
            if let Some(recipe) =
                pir::prove_osr_transfer(m, m, cert.func, &cert, &EquivOptions::default())
                    .recipe()
                    .cloned()
            {
                match lockstep(m, m, &recipe) {
                    Ok(n) => checked += n,
                    Err(why) => fail_with_dump(name, m, Some(&recipe), &why),
                }
            }
            // …and the switch the runtime actually performs: into the
            // all-NT variant of the certified function.
            let vmod = nt_variant(m, cert.func);
            if let Some(recipe) =
                pir::prove_osr_transfer(m, &vmod, cert.func, &cert, &EquivOptions::default())
                    .recipe()
                    .cloned()
            {
                match lockstep(m, &vmod, &recipe) {
                    Ok(n) => checked += n,
                    Err(why) => fail_with_dump(name, &vmod, Some(&recipe), &why),
                }
            }
        }
        checked
    });
    let checked: u32 = per_program.iter().sum();
    assert!(
        checked >= 50,
        "only {checked} transfer runs exercised the lockstep oracle"
    );
}

/// One random semantics-affecting edit inside function `fi` — the same
/// edit space as the absint fuzzer, so the harnesses stress the prover
/// on comparable mutants. Confined to one function because a transfer
/// proof's contract is frame-scoped: it says nothing about functions
/// the certified frame never executes.
fn mutate(m: &mut Module, fi: usize, rng: &mut StdRng) -> Option<String> {
    for _ in 0..16 {
        let func = &mut m.functions_mut()[fi];
        let bi = rng.gen_range(0..func.block_count());
        let block = &mut func.blocks_mut()[bi];
        if block.insts.is_empty() {
            continue;
        }
        let ii = rng.gen_range(0..block.insts.len());
        let delta = 1 + rng.gen_range(0i64..7);
        let what = match &mut block.insts[ii] {
            Inst::BinImm { imm, .. } => {
                *imm = imm.wrapping_add(delta);
                "BinImm imm changed"
            }
            Inst::Const { value, .. } => {
                *value = value.wrapping_add(delta);
                "Const value changed"
            }
            Inst::Store { offset, .. } => {
                *offset += 8;
                "Store offset shifted"
            }
            _ => continue,
        };
        return Some(format!("f{fi} bb{bi}[{ii}]: {what}"));
    }
    None
}

#[test]
fn mutant_transfers_never_prove_unsoundly() {
    let corpus = driver_corpus();
    assert!(!corpus.is_empty());
    let seed = fuzz_seed();
    let per_program = protean_bench::pool::map(&corpus, |idx, (name, m)| {
        let mut rng = program_rng(seed, idx);
        let mut exercised = 0u32;
        // Baseline -> mutant transfers, with the mutation confined to
        // the certified function so the frame-scoped proof obligation
        // actually covers it. The edit usually breaks suffix
        // equivalence, so Proved is only acceptable when the concrete
        // oracle agrees with it (a mutation in the pre-header prefix,
        // which the transfer skips, is legitimately provable).
        for cert in &certs_of(m) {
            for _ in 0..3 {
                let mut mutant = m.clone();
                let Some(what) = mutate(&mut mutant, cert.func.index(), &mut rng) else {
                    continue;
                };
                if pir::verify::verify_module(&mutant).is_err() {
                    continue;
                }
                let verdict =
                    pir::prove_osr_transfer(m, &mutant, cert.func, cert, &EquivOptions::default());
                if let Some(recipe) = verdict.recipe().cloned() {
                    if let Err(why) = lockstep(m, &mutant, &recipe) {
                        fail_with_dump(
                            name,
                            &mutant,
                            Some(&recipe),
                            &format!("{what}: proved transfer into a diverging mutant: {why}"),
                        );
                    }
                }
                exercised += 1;
            }
        }
        exercised
    });
    let exercised: u32 = per_program.iter().sum();
    assert!(
        exercised >= 20,
        "only {exercised} mutant transfers exercised"
    );
}

/// Corrupts a proved recipe in one of three ways. Returns `None` when
/// the recipe is too small for the drawn corruption.
fn corrupt(recipe: &TransferRecipe, rng: &mut StdRng) -> Option<(TransferRecipe, &'static str)> {
    let mut r = recipe.clone();
    match rng.gen_range(0..3u32) {
        0 if r.moves.len() > 1 => {
            let srcs: Vec<_> = r.moves.iter().map(|&(_, s)| s).collect();
            for (i, mv) in r.moves.iter_mut().enumerate() {
                mv.1 = srcs[(i + 1) % srcs.len()];
            }
            Some((r, "rotated move sources"))
        }
        1 if !r.moves.is_empty() => {
            let i = rng.gen_range(0..r.moves.len());
            r.moves.remove(i);
            Some((r, "dropped a move"))
        }
        2 if !r.moves.is_empty() => {
            let (dst, _) = r.moves[rng.gen_range(0..r.moves.len())];
            r.consts.push((dst, 0x5EED));
            Some((r, "poisoned a compensation constant"))
        }
        _ => None,
    }
}

#[test]
fn corrupted_recipes_are_rejected_or_provably_harmless() {
    let corpus = driver_corpus();
    assert!(!corpus.is_empty());
    let seed = fuzz_seed();
    let per_program = protean_bench::pool::map(&corpus, |idx, (name, m)| {
        let mut rng = program_rng(seed, idx ^ 0x0521);
        let mut rejected = 0u32;
        let mut refuted = 0u32;
        for cert in certs_of(m) {
            let Some(recipe) =
                pir::prove_osr_transfer(m, m, cert.func, &cert, &EquivOptions::default())
                    .recipe()
                    .cloned()
            else {
                continue;
            };
            for _ in 0..4 {
                let Some((bad, what)) = corrupt(&recipe, &mut rng) else {
                    continue;
                };
                if bad == recipe {
                    continue;
                }
                match pir::validate_osr_transfer(
                    m,
                    m,
                    cert.func,
                    &cert,
                    &bad,
                    &EquivOptions::default(),
                ) {
                    // A corruption can be accidentally semantics-preserving
                    // (e.g. rotating sources that hold equal values); a
                    // Proved verdict is then only acceptable if the
                    // concrete oracle agrees.
                    TransferVerdict::Proved { .. } => {
                        if let Err(why) = lockstep(m, m, &bad) {
                            fail_with_dump(
                                name,
                                m,
                                Some(&bad),
                                &format!("{what}: corrupted recipe proved yet diverges: {why}"),
                            );
                        }
                    }
                    TransferVerdict::Refuted(_) => {
                        rejected += 1;
                        refuted += 1;
                    }
                    TransferVerdict::Unproved { .. } => rejected += 1,
                }
            }
        }
        (rejected, refuted)
    });
    let rejected: u32 = per_program.iter().map(|(r, _)| r).sum();
    let refuted: u32 = per_program.iter().map(|(_, x)| x).sum();
    assert!(rejected >= 20, "only {rejected} corruptions rejected");
    // The refutation path (concrete counterexample confirmed by the
    // interpreter) must actually fire, not just typed refusals.
    assert!(refuted >= 1, "no corruption was concretely refuted");
}

#[test]
fn embedded_recipes_rederive_on_compiled_catalog_modules() {
    let corpus = corpus();
    let mut with_recipes = 0u32;
    for (name, m) in corpus.iter().take(6) {
        let out = match pcc::Compiler::new(pcc::Options::protean()).compile(m) {
            Ok(out) => out,
            Err(e) => panic!("{name}: {e}"),
        };
        let meta = out.meta.as_ref().expect("protean output embeds meta");
        // The inter-stage invariant holds on the final module: embedded
        // recipes are exactly what a re-proof derives.
        pcc::invariants::check_osr_transfer(&meta.module, &meta.osr, &meta.osr_recipes, "final")
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // And the wire format round-trips them bit-for-bit.
        let back = pcc::EmbeddedMeta::from_blob(&meta.to_blob()).expect("blob decodes");
        assert_eq!(
            back.osr_recipes, meta.osr_recipes,
            "{name}: wire roundtrip changed recipes"
        );
        if !meta.osr_recipes.is_empty() {
            with_recipes += 1;
        }
    }
    assert!(
        with_recipes >= 1,
        "no compiled workload carried transfer recipes"
    );
}
