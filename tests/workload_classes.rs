//! Workload-class fidelity guards: the generated benchmark programs must
//! keep the contentiousness/sensitivity character their real namesakes
//! have, because the evaluation's shapes depend on it.

use pcc::{Compiler, NtAssignment, Options};
use protean::{ExtMonitor, Runtime, RuntimeConfig};
use simos::{Os, OsConfig};
use workloads::catalog;

fn scaled_os() -> OsConfig {
    OsConfig {
        machine: machine::MachineConfig::scaled(),
        ..OsConfig::default()
    }
}

/// Unmanaged co-runner QoS: `victim`'s IPS when `aggressor` shares the
/// LLC, relative to running alone.
fn unmanaged_qos(aggressor: &str, victim: &str) -> f64 {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let vi = Compiler::new(Options::plain())
        .compile(&catalog::build(victim, llc).unwrap())
        .unwrap()
        .image;
    let ai = Compiler::new(Options::plain())
        .compile(&catalog::build(aggressor, llc).unwrap())
        .unwrap()
        .image;
    let solo = {
        let mut os = Os::new(cfg.clone());
        let v = os.spawn(&vi, 0);
        os.advance_seconds(2.0);
        let mut mon = ExtMonitor::new(&os, v);
        os.advance_seconds(3.0);
        mon.end_window(&os).ips
    };
    let mut os = Os::new(cfg);
    let v = os.spawn(&vi, 0);
    let _a = os.spawn(&ai, 1);
    os.advance_seconds(2.0);
    let mut mon = ExtMonitor::new(&os, v);
    os.advance_seconds(3.0);
    mon.end_window(&os).ips / solo
}

#[test]
fn streaming_apps_are_more_contentious_than_compute_apps() {
    // libquantum (streaming, 6x LLC) must hurt a sensitive victim far
    // more than namd (compute-bound, tiny footprint).
    let victim = "er-naive";
    let from_stream = unmanaged_qos("libquantum", victim);
    let from_compute = unmanaged_qos("namd", victim);
    assert!(
        from_compute > from_stream + 0.02,
        "namd ({from_compute:.3}) should be gentler than libquantum ({from_stream:.3})"
    );
    assert!(from_stream < 0.97, "libquantum must visibly hurt er-naive");
}

#[test]
fn every_fig8_host_is_measurably_contentious_or_benign_as_classed() {
    // The heavy streamers of the paper's evaluation.
    for aggressor in ["libquantum", "lbm", "sledge"] {
        let q = unmanaged_qos(aggressor, "er-naive");
        assert!(q < 0.99, "{aggressor} should pressure the LLC, qos {q:.3}");
    }
}

#[test]
fn nt_hints_cost_little_on_streamers_and_more_on_reusers() {
    // Apply the all-innermost-hints variant and measure the *host's own*
    // slowdown: near-free for streaming libquantum, costly for
    // LLC-reusing blockie.
    let self_cost = |name: &str| -> f64 {
        let cfg = scaled_os();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let img = Compiler::new(Options::protean())
            .compile(&catalog::build(name, llc).unwrap())
            .unwrap()
            .image;
        let run = |hints: bool| -> f64 {
            let mut os = Os::new(scaled_os());
            let pid = os.spawn(&img, 0);
            if hints {
                let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
                let nt = NtAssignment::all(
                    pir::load_sites(rt.module())
                        .iter()
                        .filter(|s| s.at_max_depth())
                        .map(|s| s.site),
                );
                for func in rt.virtualized_funcs() {
                    let sub: NtAssignment = nt.sites_in(func).into_iter().collect();
                    if !sub.is_empty() {
                        let _ = rt.transform(&mut os, func, &sub);
                    }
                }
            }
            os.advance_seconds(2.0);
            let mut mon = ExtMonitor::new(&os, pid);
            os.advance_seconds(3.0);
            mon.end_window(&os).bps
        };
        run(false) / run(true) // slowdown factor from hints
    };
    let streamer = self_cost("libquantum");
    let reuser = self_cost("blockie");
    assert!(
        streamer < 1.05,
        "hints must be near-free for a pure streamer, got {streamer:.3}x"
    );
    assert!(
        reuser > streamer + 0.05,
        "hints must cost an LLC-reuser more ({reuser:.3}x) than a streamer ({streamer:.3}x)"
    );
}

#[test]
fn servers_degrade_under_contention_only_near_saturation() {
    // The Figure 16 mechanism: web-search at low load is insensitive to a
    // heavy co-runner; at high load it saturates and loses throughput.
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let ws = Compiler::new(Options::plain())
        .compile(&catalog::build("web-search", llc).unwrap())
        .unwrap()
        .image;
    let lq = Compiler::new(Options::protean())
        .compile(&catalog::build("libquantum", llc).unwrap())
        .unwrap()
        .image;
    let qos_at = |qps: f64| -> f64 {
        let measure = |with_aggressor: bool| -> f64 {
            let mut os = Os::new(scaled_os());
            let w = os.spawn(&ws, 0);
            if with_aggressor {
                os.spawn(&lq, 1);
            }
            os.set_load(w, simos::LoadSchedule::constant(qps));
            os.advance_seconds(4.0);
            let start = os.app_metric(w, 0);
            os.advance_seconds(8.0);
            (os.app_metric(w, 0) - start) as f64 / 8.0
        };
        measure(true) / measure(false)
    };
    let capacity = protean_repro_capacity();
    let low = qos_at(capacity * 0.15);
    let high = qos_at(capacity * 0.9);
    assert!(
        low > 0.97,
        "at low load the server must keep up, got {low:.3}"
    );
    assert!(
        high < low - 0.05,
        "near saturation contention must cost throughput: high {high:.3} vs low {low:.3}"
    );
}

/// Measures web-search's solo capacity on the scaled machine.
fn protean_repro_capacity() -> f64 {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let ws = Compiler::new(Options::plain())
        .compile(&catalog::build("web-search", llc).unwrap())
        .unwrap()
        .image;
    let mut os = Os::new(cfg);
    let w = os.spawn(&ws, 0);
    os.set_load(w, simos::LoadSchedule::constant(1e9));
    os.advance_seconds(3.0);
    let start = os.app_metric(w, 0);
    os.advance_seconds(5.0);
    (os.app_metric(w, 0) - start) as f64 / 5.0
}

#[test]
fn tail_latency_rises_under_contention() {
    // The paper's optional app-level QoS metric: p99 query latency. A
    // heavy co-runner must raise web-search's tail latency.
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let ws = Compiler::new(Options::plain())
        .compile(&catalog::build("web-search", llc).unwrap())
        .unwrap()
        .image;
    let lq = Compiler::new(Options::plain())
        .compile(&catalog::build("libquantum", llc).unwrap())
        .unwrap()
        .image;
    let p99_at = |with_aggressor: bool| -> u64 {
        let mut os = Os::new(scaled_os());
        let w = os.spawn(&ws, 0);
        if with_aggressor {
            os.spawn(&lq, 1);
        }
        os.set_load(w, simos::LoadSchedule::constant(40.0));
        os.advance_seconds(10.0);
        let stats = os.latency_stats(w).expect("queries completed");
        assert!(stats.p99 >= stats.p50);
        stats.p50
    };
    let solo = p99_at(false);
    let contended = p99_at(true);
    assert!(
        contended as f64 > solo as f64 * 1.3,
        "contention should raise median latency: solo {solo} vs contended {contended} cycles"
    );
}

#[test]
fn batch_processes_report_no_latency() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let img = Compiler::new(Options::plain())
        .compile(&catalog::build("milc", llc).unwrap())
        .unwrap()
        .image;
    let mut os = Os::new(scaled_os());
    let pid = os.spawn(&img, 0);
    os.advance_seconds(2.0);
    assert!(os.latency_stats(pid).is_none());
}
