//! Soundness fuzzing of the abstract-interpretation engine against the
//! reference interpreter, over the full workload catalog.
//!
//! The absint contract is *containment*: at every program point, the
//! concrete machine state of any execution must lie inside the abstract
//! state the engine computed — every register value within its interval
//! and known-bits fact. This harness replays catalog programs (and
//! seeded mutants of them) through a checker that mirrors
//! [`pir::interp`]'s semantics step for step, validating containment at
//! every block entry and after every instruction via the public
//! [`pir::absint::transfer_inst`]. A single inadmissible value is an
//! unsoundness and fails the run.
//!
//! The harness also proves it can actually catch bugs: poisoning a
//! recorded block state through the
//! [`override_block_in`](pir::absint::FuncAbsint::override_block_in)
//! testing hook must trip the checker.
//!
//! Mutations are drawn from a seeded generator so CI is reproducible;
//! set `PROTEAN_ABSINT_FUZZ_SEED` to explore a different stream. On a
//! containment failure, set `PROTEAN_ABSINT_DUMP` to a path to get the
//! offending module rendered with absint annotations.

use pir::absint::{self, AbsVal, FuncAbsint, OsrDecision};
use pir::{BlockId, FuncId, GlobalInit, Inst, Locality, Module, Reg, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::catalog;

const LLC_LINES: u64 = 4_096;
const STEP_BUDGET: u64 = 400_000;

/// The same synthetic 64-byte-aligned placement the equivalence fuzzer
/// uses, so failures reproduce across harnesses.
fn layout(m: &Module) -> (Vec<u64>, usize) {
    let mut addrs = Vec::new();
    let mut next = 64u64;
    for g in m.globals() {
        addrs.push(next);
        next += g.size().div_ceil(64).max(1) * 64;
    }
    (addrs, next as usize + 64)
}

fn fuzz_seed() -> u64 {
    std::env::var("PROTEAN_ABSINT_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAB51_2014)
}

/// A per-program RNG stream: deterministic for a given base seed and
/// corpus position regardless of which pool worker runs the program.
fn program_rng(base: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(base ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Every buildable catalog workload — batch and server alike.
fn corpus() -> Vec<(&'static str, Module)> {
    catalog::CATALOG
        .iter()
        .filter_map(|w| catalog::build(w.name, LLC_LINES).map(|m| (w.name, m)))
        .collect()
}

struct Frame {
    regs: Vec<i64>,
    /// Running abstract state, stepped by `transfer_inst` alongside the
    /// concrete execution.
    ab: Vec<AbsVal>,
    func: FuncId,
    block: usize,
    index: usize,
    ret_dst: Option<Reg>,
}

/// Checks containment of the concrete registers in the recorded abstract
/// entry state of (`func`, `block`) and returns a working copy of it.
fn enter_block(
    facts: &FuncAbsint,
    func: FuncId,
    block: usize,
    regs: &[i64],
) -> Result<Vec<AbsVal>, String> {
    let Some(state) = facts.block_in(BlockId(block as u32)) else {
        return Err(format!(
            "@{} bb{block}: concretely reached but abstractly unreachable",
            func.index()
        ));
    };
    for (r, v) in regs.iter().enumerate() {
        if let Some(av) = state.get(r) {
            if !av.admits(*v) {
                return Err(format!(
                    "@{} bb{block} entry: r{r} = {v} not admitted by {} {} {}",
                    func.index(),
                    av.range,
                    av.bits,
                    av.class
                ));
            }
        }
    }
    Ok(state.to_vec())
}

/// Mirrors [`pir::interp::run`] exactly — same zero-init, budget,
/// fault, wait, and call/return rules — while checking the abstract
/// states on the side. Interpreter-level stops (faults, exhausted step
/// budget) are clean results: containment held on the executed prefix.
/// `Err` means the abstract interpretation was unsound.
fn replay_check(
    module: &Module,
    facts: &[FuncAbsint],
    global_addrs: &[u64],
    data_size: usize,
    max_steps: u64,
) -> Result<(), String> {
    let Some(entry) = module.entry() else {
        return Ok(());
    };
    if global_addrs.len() != module.globals().len() {
        return Ok(());
    }
    let mut data = vec![0u8; data_size];
    for (g, addr) in module.globals().iter().zip(global_addrs) {
        if addr + g.size() > data_size as u64 {
            return Ok(()); // interp would report BadLayout
        }
        if let GlobalInit::Words(words) = g.init() {
            let mut a = *addr as usize;
            for w in words {
                data[a..a + 8].copy_from_slice(&w.to_le_bytes());
                a += 8;
            }
        }
    }

    let new_frame = |func: FuncId, args: &[i64], ret_dst: Option<Reg>| -> Result<Frame, String> {
        let f = module.function(func);
        let mut regs = vec![0i64; f.reg_count().max(f.params()) as usize];
        regs[..args.len()].copy_from_slice(args);
        let ab = enter_block(&facts[func.index()], func, 0, &regs)?;
        Ok(Frame {
            regs,
            ab,
            func,
            block: 0,
            index: 0,
            ret_dst,
        })
    };

    let mut stack = vec![new_frame(entry, &[], None)?];
    let mut steps = 0u64;

    'outer: while let Some(frame) = stack.last_mut() {
        if steps >= max_steps {
            return Ok(());
        }
        let func = module.function(frame.func);
        let block = &func.blocks()[frame.block];
        if frame.index < block.insts.len() {
            let inst = &block.insts[frame.index];
            frame.index += 1;
            steps += 1;
            // Step the abstract state first (it must cover every concrete
            // outcome of the instruction), then the concrete one.
            absint::transfer_inst(&mut frame.ab, inst);
            match inst {
                Inst::Const { dst, value } => frame.regs[dst.index()] = *value,
                Inst::Bin { op, dst, lhs, rhs } => {
                    frame.regs[dst.index()] =
                        op.eval(frame.regs[lhs.index()], frame.regs[rhs.index()]);
                }
                Inst::BinImm { op, dst, lhs, imm } => {
                    frame.regs[dst.index()] = op.eval(frame.regs[lhs.index()], *imm);
                }
                Inst::Load {
                    dst, base, offset, ..
                } => {
                    let addr = frame.regs[base.index()].wrapping_add(*offset) as u64;
                    if addr.checked_add(8).is_none_or(|e| e > data_size as u64) {
                        return Ok(()); // interp faults here
                    }
                    let a = addr as usize;
                    frame.regs[dst.index()] =
                        i64::from_le_bytes(data[a..a + 8].try_into().expect("8 bytes"));
                }
                Inst::Store { base, offset, src } => {
                    let addr = frame.regs[base.index()].wrapping_add(*offset) as u64;
                    if addr.checked_add(8).is_none_or(|e| e > data_size as u64) {
                        return Ok(());
                    }
                    let v = frame.regs[src.index()];
                    let a = addr as usize;
                    data[a..a + 8].copy_from_slice(&v.to_le_bytes());
                }
                Inst::GlobalAddr { dst, global } => {
                    frame.regs[dst.index()] = global_addrs[global.index()] as i64;
                }
                Inst::Report { .. } | Inst::Nop => {}
                Inst::Wait => break 'outer,
                Inst::Call { dst, callee, args } => {
                    let vals: Vec<i64> = args.iter().map(|r| frame.regs[r.index()]).collect();
                    let (callee, dst) = (*callee, *dst);
                    let callee_frame = new_frame(callee, &vals, dst)?;
                    stack.push(callee_frame);
                    continue 'outer;
                }
            }
            // Containment after the instruction. Only `dst` changed, in
            // both worlds, so checking it checks the whole frame.
            if let Some(d) = inst.dst() {
                let (v, av) = (frame.regs[d.index()], &frame.ab[d.index()]);
                if !av.admits(v) {
                    return Err(format!(
                        "@{} bb{}[{}]: after `{inst}`, {d} = {v} not admitted by {} {} {}",
                        frame.func.index(),
                        frame.block,
                        frame.index - 1,
                        av.range,
                        av.bits,
                        av.class
                    ));
                }
            }
            continue 'outer;
        }
        steps += 1;
        match &block.term {
            Term::Br(t) => {
                frame.block = t.index();
                frame.index = 0;
                frame.ab = enter_block(
                    &facts[frame.func.index()],
                    frame.func,
                    frame.block,
                    &frame.regs,
                )?;
            }
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                frame.block = if frame.regs[cond.index()] != 0 {
                    then_bb.index()
                } else {
                    else_bb.index()
                };
                frame.index = 0;
                frame.ab = enter_block(
                    &facts[frame.func.index()],
                    frame.func,
                    frame.block,
                    &frame.regs,
                )?;
            }
            Term::Ret(val) => {
                let v = val.map(|r| frame.regs[r.index()]);
                let ret_dst = frame.ret_dst;
                stack.pop();
                if let Some(caller) = stack.last_mut() {
                    if let (Some(dst), Some(v)) = (ret_dst, v) {
                        // The caller's abstract state already treated the
                        // call result as ⊤ when the Call was stepped.
                        caller.regs[dst.index()] = v;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Analyzes every function of `m` fresh (uncached, so tests can poison
/// individual results).
fn analyze_all(m: &Module) -> Vec<FuncAbsint> {
    m.functions().iter().map(absint::analyze_function).collect()
}

/// Fails the test with `why`, first dumping annotated IR to
/// `PROTEAN_ABSINT_DUMP` when set.
fn fail_with_dump(name: &str, m: &Module, why: &str) -> ! {
    if let Ok(path) = std::env::var("PROTEAN_ABSINT_DUMP") {
        let opts = pir::PrintOptions {
            absint: true,
            osr: true,
        };
        let _ = std::fs::write(&path, pir::render_module(m, &opts));
        panic!("{name}: {why} (annotated IR dumped to {path})");
    }
    panic!("{name}: {why}");
}

/// One random semantics-affecting (or hint-only) edit — the same edit
/// space as the equivalence fuzzer, so the two harnesses stress the
/// analyses on comparable mutants.
fn mutate(m: &mut Module, rng: &mut StdRng) -> Option<String> {
    for _ in 0..16 {
        let nfuncs = m.functions().len();
        let fi = rng.gen_range(0..nfuncs);
        let func = &mut m.functions_mut()[fi];
        let bi = rng.gen_range(0..func.block_count());
        let block = &mut func.blocks_mut()[bi];
        if block.insts.is_empty() {
            continue;
        }
        let ii = rng.gen_range(0..block.insts.len());
        let delta = 1 + rng.gen_range(0i64..7);
        let what = match &mut block.insts[ii] {
            Inst::BinImm { imm, .. } => {
                *imm = imm.wrapping_add(delta);
                "BinImm imm changed"
            }
            Inst::Const { value, .. } => {
                *value = value.wrapping_add(delta);
                "Const value changed"
            }
            Inst::Store { offset, .. } => {
                *offset += 8;
                "Store offset shifted"
            }
            Inst::Load { locality, .. } => {
                *locality = match locality {
                    Locality::Normal => Locality::NonTemporal,
                    Locality::NonTemporal => Locality::Normal,
                };
                "load locality flipped"
            }
            _ => continue,
        };
        return Some(format!("f{fi} bb{bi}[{ii}]: {what}"));
    }
    None
}

#[test]
fn catalog_executions_stay_inside_abstract_states() {
    let corpus = corpus();
    assert!(corpus.len() >= 20, "catalog shrank to {}", corpus.len());
    protean_bench::pool::map(&corpus, |_, (name, m)| {
        let facts = analyze_all(m);
        let (addrs, size) = layout(m);
        if let Err(why) = replay_check(m, &facts, &addrs, size, STEP_BUDGET) {
            fail_with_dump(name, m, &why);
        }
    });
}

#[test]
fn seeded_mutants_stay_inside_abstract_states() {
    let corpus = corpus();
    assert!(!corpus.is_empty());
    let seed = fuzz_seed();
    let per_program = protean_bench::pool::map(&corpus, |idx, (name, m)| {
        let mut rng = program_rng(seed, idx);
        let mut exercised = 0u32;
        for _ in 0..6 {
            let mut mutant = m.clone();
            let Some(what) = mutate(&mut mutant, &mut rng) else {
                continue;
            };
            if pir::verify::verify_module(&mutant).is_err() {
                continue;
            }
            let facts = analyze_all(&mutant);
            let (addrs, size) = layout(&mutant);
            if let Err(why) = replay_check(&mutant, &facts, &addrs, size, STEP_BUDGET) {
                fail_with_dump(name, &mutant, &format!("{what}: {why}"));
            }
            exercised += 1;
        }
        exercised
    });
    let exercised: u32 = per_program.iter().sum();
    assert!(exercised >= 20, "only {exercised} mutants exercised");
}

#[test]
fn poisoned_block_state_is_caught_by_the_replay_checker() {
    // A counted loop with a loaded accumulator: plenty of reachable
    // blocks whose states matter.
    let mut m = Module::new("poison");
    let buf = m.add_global_full(pir::Global::with_words(
        "buf",
        (0..16).map(|i| i * 3).collect(),
    ));
    let out = m.add_global("out", 8);
    let mut b = pir::FunctionBuilder::new("main", 0);
    let base = b.global_addr(buf);
    let o = b.global_addr(out);
    let acc0 = b.const_(0);
    let acc = b.accumulate_loop(0, 16, 1, acc0, |bl, i, acc| {
        let off = bl.shl_imm(i, 3);
        let a = bl.add(base, off);
        let v = bl.load(a, 0, Locality::Normal);
        bl.add_into(acc, acc, v);
    });
    b.store(o, 0, acc);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.set_entry(f);

    let (addrs, size) = layout(&m);
    let honest = analyze_all(&m);
    assert_eq!(
        replay_check(&m, &honest, &addrs, size, STEP_BUDGET),
        Ok(()),
        "honest analysis must pass"
    );

    // Poison every reachable non-entry block in turn with an absurdly
    // tight state; the checker must flag each one.
    let func = m.function(f);
    let mut caught = 0u32;
    for bi in 1..func.block_count() {
        if honest[f.index()].block_in(BlockId(bi as u32)).is_none() {
            continue;
        }
        let mut poisoned = analyze_all(&m);
        let n = poisoned[f.index()].reg_table_size();
        poisoned[f.index()].override_block_in(BlockId(bi as u32), vec![AbsVal::exact(-77); n]);
        let res = replay_check(&m, &poisoned, &addrs, size, STEP_BUDGET);
        assert!(res.is_err(), "poisoned bb{bi} slipped through");
        caught += 1;
    }
    assert!(
        caught >= 2,
        "only {caught} blocks exercised the poison path"
    );
}

/// Finds an adjacent store/load pair touching *distinct* globals (both
/// accesses statically in bounds, registers independent) and returns a
/// variant module with the two instructions swapped — a reorder that is
/// only provably safe with interval/points-to alias facts. Base-pointer
/// provenance comes from the flow-sensitive absint state, so bases
/// hoisted into earlier blocks (the common catalog shape) qualify.
fn cross_global_swap(m: &Module) -> Option<(FuncId, Module)> {
    for (fi, func) in m.functions().iter().enumerate() {
        let facts = absint::analyze_function(func);
        for (bi, block) in func.blocks().iter().enumerate() {
            let Some(entry) = facts.block_in(BlockId(bi as u32)) else {
                continue;
            };
            let mut state = entry.to_vec();
            for ii in 0..block.insts.len().saturating_sub(1) {
                // `state` is the abstract frame *before* inst `ii`.
                let pair = match (&block.insts[ii], &block.insts[ii + 1]) {
                    (
                        &Inst::Store {
                            base: sb,
                            offset: so,
                            src,
                        },
                        &Inst::Load {
                            dst,
                            base: lb,
                            offset: lo,
                            ..
                        },
                    )
                    | (
                        &Inst::Load {
                            dst,
                            base: lb,
                            offset: lo,
                            ..
                        },
                        &Inst::Store {
                            base: sb,
                            offset: so,
                            src,
                        },
                    ) if dst != sb && dst != src && dst != lb => Some((sb, so, lb, lo)),
                    _ => None,
                };
                if let Some((sb, so, lb, lo)) = pair {
                    use pir::PtClass;
                    let (ca, cb) = (state[sb.index()].class, state[lb.index()].class);
                    if let (PtClass::Global(ga), PtClass::Global(gb)) = (ca, cb) {
                        let fits = |g: pir::GlobalId, off: i64| {
                            let size = m.globals()[g.index()].size();
                            size >= 8 && off >= 0 && (off as u64) + 8 <= size
                        };
                        if ga != gb && fits(ga, so) && fits(gb, lo) {
                            let mut variant = m.clone();
                            variant.functions_mut()[fi].blocks_mut()[bi]
                                .insts
                                .swap(ii, ii + 1);
                            return Some((FuncId(fi as u32), variant));
                        }
                    }
                }
                absint::transfer_inst(&mut state, &block.insts[ii]);
            }
        }
    }
    None
}

#[test]
fn interval_alias_facts_upgrade_gate_verdicts_on_the_catalog() {
    use pir::equiv::{check_module, EquivOptions, Verdict};

    let corpus = corpus();
    let no_interval = EquivOptions {
        interval_alias: false,
        ..EquivOptions::default()
    };
    let mut upgraded = 0u32;
    for (name, m) in &corpus {
        let Some((fid, variant)) = cross_global_swap(m) else {
            continue;
        };
        let old = check_module(m, &variant, &no_interval);
        let new = check_module(m, &variant, &EquivOptions::default());
        let fname = m.function(fid).name();
        let verdict_of = |report: &pir::equiv::EquivReport| {
            report
                .results()
                .iter()
                .find(|(f, _)| f == fname)
                .map(|(_, v)| v.clone())
                .expect("checked function reported")
        };
        // The upgrade is strict: the reorder proves with interval facts…
        let new_v = verdict_of(&new);
        assert!(
            matches!(new_v, Verdict::Proved { .. }),
            "{name}: interval facts should prove the cross-global reorder, got {new_v}"
        );
        // …and the gate consumes it: the runtime's vet admits the variant.
        let vetted = protean::safety::vet_variant(m, fid, variant.function(fid));
        assert!(
            vetted.is_safe(),
            "{name}: gate refused a proved reorder: {vetted}"
        );
        // Precision never regresses: anything the old options decided is
        // decided identically with interval facts on.
        let old_v = verdict_of(&old);
        match old_v {
            Verdict::Unknown { .. } => upgraded += 1,
            ref decided => assert_eq!(
                std::mem::discriminant(decided),
                std::mem::discriminant(&new_v),
                "{name}: decided verdict changed"
            ),
        }
    }
    assert!(
        upgraded >= 1,
        "no catalog workload moved Unknown -> Proved under interval alias facts"
    );
}

#[test]
fn every_catalog_loop_header_gets_an_osr_decision() {
    let corpus = corpus();
    let mut headers = 0usize;
    let mut decisions = 0usize;
    let mut certified = 0usize;
    for (name, m) in &corpus {
        for func in m.functions() {
            headers += pir::loops::analyze(func).headers().len();
        }
        let ds = absint::certify_module(m);
        decisions += ds.len();
        for d in &ds {
            if matches!(d, OsrDecision::Certified(_)) {
                certified += 1;
            }
        }
        assert!(
            ds.len()
                == m.functions()
                    .iter()
                    .map(|f| pir::loops::analyze(f).headers().len())
                    .sum::<usize>(),
            "{name}: silent skips in OSR certification"
        );
    }
    assert!(headers > 0, "catalog has no loops?");
    assert_eq!(decisions, headers, "every header needs a typed decision");
    // The acceptance bar is 70% coverage; decisions are at 100%, and a
    // healthy share must be actual certificates, not just refusals.
    assert!(
        certified * 10 >= headers * 3,
        "only {certified}/{headers} headers certified"
    );
}

#[test]
fn osr_certificates_roundtrip_through_compiled_output() {
    let corpus = corpus();
    let mut with_certs = 0u32;
    for (name, m) in corpus.iter().take(6) {
        let out = match pcc::Compiler::new(pcc::Options::protean()).compile(m) {
            Ok(out) => out,
            Err(e) => panic!("{name}: {e}"),
        };
        let meta = out.meta.as_ref().expect("protean output embeds meta");
        let expected: Vec<_> = absint::certify_module(&meta.module)
            .into_iter()
            .filter_map(|d| d.certificate().cloned())
            .collect();
        assert_eq!(meta.osr, expected, "{name}: embedded set != derived set");
        let back = pcc::EmbeddedMeta::from_blob(&meta.to_blob()).expect("blob decodes");
        assert_eq!(
            back.osr, meta.osr,
            "{name}: wire roundtrip changed certificates"
        );
        if !meta.osr.is_empty() {
            with_certs += 1;
        }
    }
    assert!(with_certs >= 1, "no compiled workload carried OSR anchors");
}
