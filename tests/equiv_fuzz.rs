//! Differential fuzzing of the symbolic equivalence checker against the
//! reference interpreter, over real catalog workloads.
//!
//! The checker's contract has two sides, and each gets cross-checked
//! concretely here:
//!
//! * **Proved is sound**: whenever [`pir::equiv`] proves two modules
//!   equivalent (modulo non-temporal hints), running both under
//!   [`pir::interp`] must produce identical observables — final data
//!   segment, report stream, and parked status.
//! * **Refuted is witnessed**: whenever the checker refutes a pair, the
//!   counterexample must be real — the two concrete runs must actually
//!   diverge. `Unknown` makes no claim and is exempt.
//!
//! Mutations are drawn from a seeded generator so CI is reproducible;
//! set `PROTEAN_EQUIV_FUZZ_SEED` to explore a different stream. Each
//! corpus program owns an RNG stream derived from (seed, corpus index),
//! so programs are independent work items: the corpus fans out across
//! `protean_bench::pool` workers and the mutants tested are identical at
//! any worker count.

use pir::equiv::{check_module, EquivOptions, Verdict};
use pir::{interp, Inst, Locality, Module};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::catalog;

const LLC_LINES: u64 = 4_096;
const STEP_BUDGET: u64 = 4_000_000;

/// Structurally diverse catalog programs: streaming, pointer-chasing,
/// LLC-resident batch codes plus a latency-sensitive server.
const CORPUS_NAMES: [&str; 4] = ["libquantum", "bst", "milc", "web-search"];

/// The same synthetic 64-byte-aligned placement the checker's own
/// confirmation step uses, so both sides of the cross-check see one
/// memory image.
fn layout(m: &Module) -> (Vec<u64>, usize) {
    let mut addrs = Vec::new();
    let mut next = 64u64;
    for g in m.globals() {
        addrs.push(next);
        next += g.size().div_ceil(64).max(1) * 64;
    }
    (addrs, next as usize + 64)
}

/// Everything the paper's contract calls observable about a run.
type Observables = (Vec<u8>, Vec<(u8, i64)>, bool);

fn observe(m: &Module) -> Result<Observables, interp::InterpError> {
    let (addrs, size) = layout(m);
    interp::run(m, &addrs, size, STEP_BUDGET).map(|r| (r.data, r.reports, r.parked))
}

fn fuzz_seed() -> u64 {
    std::env::var("PROTEAN_EQUIV_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0DE_2014)
}

/// A per-program RNG stream: deterministic for a given base seed and
/// corpus position regardless of which pool worker runs the program.
fn program_rng(base: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(base ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The full corpus. Non-terminating entries still get full symbolic
/// checking; their interpreter runs both end in `StepBudgetExceeded`,
/// which compares equal and so never contradicts a `Proved`.
fn corpus() -> Vec<(&'static str, Module)> {
    CORPUS_NAMES
        .iter()
        .filter_map(|name| catalog::build(name, LLC_LINES).map(|m| (*name, m)))
        .collect()
}

/// One random semantics-affecting (or hint-only) edit, retrying a few
/// random sites until one is mutable. Returns a short description of
/// what was changed, or `None` if no attempt hit a mutable site.
fn mutate(m: &mut Module, rng: &mut StdRng) -> Option<String> {
    for _ in 0..16 {
        if let Some(what) = mutate_once(m, rng) {
            return Some(what);
        }
    }
    None
}

fn mutate_once(m: &mut Module, rng: &mut StdRng) -> Option<String> {
    let nfuncs = m.functions().len();
    let fi = rng.gen_range(0..nfuncs);
    let func = &mut m.functions_mut()[fi];
    let nblocks = func.block_count();
    let bi = rng.gen_range(0..nblocks);
    let block = &mut func.blocks_mut()[bi];
    if block.insts.is_empty() {
        return None;
    }
    let ii = rng.gen_range(0..block.insts.len());
    let delta = 1 + rng.gen_range(0i64..7);
    match &mut block.insts[ii] {
        Inst::BinImm { imm, .. } => {
            *imm = imm.wrapping_add(delta);
            Some(format!("f{fi} bb{bi}[{ii}]: BinImm imm changed"))
        }
        Inst::Const { value, .. } => {
            *value = value.wrapping_add(delta);
            Some(format!("f{fi} bb{bi}[{ii}]: Const value changed"))
        }
        Inst::Store { offset, .. } => {
            *offset += 8;
            Some(format!("f{fi} bb{bi}[{ii}]: Store offset shifted"))
        }
        Inst::Load { locality, .. } => {
            *locality = match locality {
                Locality::Normal => Locality::NonTemporal,
                Locality::NonTemporal => Locality::Normal,
            };
            Some(format!("f{fi} bb{bi}[{ii}]: load locality flipped"))
        }
        _ => None,
    }
}

/// The soundness cross-check for one (baseline, mutant) pair.
fn cross_check(name: &str, what: &str, baseline: &Module, mutant: &Module) {
    let report = check_module(baseline, mutant, &EquivOptions::default());
    for (func, verdict) in report.results() {
        match verdict {
            Verdict::Proved { .. } => {}
            Verdict::Refuted(cex) => {
                // A refutation must be backed by a real divergence.
                assert_ne!(
                    observe(baseline),
                    observe(mutant),
                    "{name}: {what}: refuted {func} but runs agree: {cex}"
                );
            }
            Verdict::Unknown { .. } => {}
        }
    }
    if report.all_proved() {
        assert_eq!(
            observe(baseline),
            observe(mutant),
            "{name}: {what}: proved equivalent but observables diverge"
        );
    }
}

#[test]
fn optimized_catalog_programs_prove_and_match_the_interpreter() {
    let corpus = corpus();
    assert!(
        corpus.iter().any(|(_, m)| observe(m).is_ok()),
        "at least one corpus program must terminate under the interpreter"
    );
    protean_bench::pool::map(&corpus, |_, (name, m)| {
        let mut optimized = m.clone();
        pcc::optimize_module(&mut optimized);
        let report = check_module(m, &optimized, &EquivOptions::default());
        assert!(report.all_proved(), "{name}: {report}");
        assert_eq!(
            observe(m),
            observe(&optimized),
            "{name}: optimizer changed observables"
        );
    });
}

#[test]
fn validated_pipeline_proves_every_stage_on_catalog_programs() {
    protean_bench::pool::map(&corpus(), |_, (name, m)| {
        let mut opt = m.clone();
        let stats =
            pcc::optimize_module_validated(&mut opt).unwrap_or_else(|e| panic!("{name}: {e}"));
        let _ = stats;
        let report = check_module(m, &opt, &EquivOptions::default());
        assert!(report.all_proved(), "{name}: {report}");
    });
}

#[test]
fn seeded_mutations_never_produce_unsound_verdicts() {
    let corpus = corpus();
    assert!(!corpus.is_empty());
    let seed = fuzz_seed();
    let per_program = protean_bench::pool::map(&corpus, |idx, (name, m)| {
        let mut rng = program_rng(seed, idx);
        let mut exercised = 0u32;
        for _ in 0..12 {
            let mut mutant = m.clone();
            let Some(what) = mutate(&mut mutant, &mut rng) else {
                continue;
            };
            // Only structurally valid mutants are the gate's concern;
            // malformed IR is the verifier's job (see analysis_mutation).
            if pir::verify::verify_module(&mutant).is_err() {
                continue;
            }
            cross_check(name, &what, m, &mutant);
            exercised += 1;
        }
        exercised
    });
    let exercised: u32 = per_program.iter().sum();
    assert!(exercised >= 8, "only {exercised} mutants exercised");
}

#[test]
fn locality_flips_are_proved_modulo_nt_and_observably_neutral() {
    let corpus = corpus();
    assert!(!corpus.is_empty());
    let seed = fuzz_seed() ^ 0x5eed;
    protean_bench::pool::map(&corpus, |idx, (name, m)| {
        let mut rng = program_rng(seed, idx);
        let mut mutant = m.clone();
        let mut flips = 0usize;
        for func in mutant.functions_mut() {
            for block in func.blocks_mut() {
                for inst in &mut block.insts {
                    if let Inst::Load { locality, .. } = inst {
                        if rng.gen_bool(0.5) {
                            *locality = match locality {
                                Locality::Normal => Locality::NonTemporal,
                                Locality::NonTemporal => Locality::Normal,
                            };
                            flips += 1;
                        }
                    }
                }
            }
        }
        if flips == 0 {
            return;
        }
        let report = check_module(m, &mutant, &EquivOptions::default());
        assert!(report.all_proved(), "{name}: {report}");
        assert_eq!(
            report.total_nt_flips(),
            Some(flips),
            "{name}: flip count mismatch"
        );
        assert_eq!(
            observe(m),
            observe(&mutant),
            "{name}: hints changed semantics"
        );
    });
}
