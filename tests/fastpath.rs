//! Regression tests for the interpreter fast path and the experiment
//! fan-out pool.
//!
//! The block-dispatch cache in `machine::exec` indexes decoded basic
//! blocks into the live text section; online transformation appends
//! variants and rewrites EVT slots *while blocks are cached*. These tests
//! drive that exact hazard end-to-end: a program halting under a
//! recompilation storm must produce output bit-identical to an untouched
//! run. The pool tests pin the other contract this PR leans on: a
//! parallel experiment sweep returns exactly what the serial sweep does.

use pcc::{Compiler, Options};
use pir::{FunctionBuilder, Locality, Module};
use protean::{Runtime, RuntimeConfig, StressEngine};
use simos::{Os, OsConfig, Pid};

/// Terminating program with observable output: repeated calls to a
/// worker that folds a buffer and stores per-call results.
fn observable_program() -> Module {
    let mut m = Module::new("observable");
    let data = m.add_global_full(pir::Global::with_words(
        "data",
        (0..256)
            .map(|i| (i * 2654435761u64 as i64) ^ 0x9e3779b9)
            .collect(),
    ));
    let out = m.add_global("out", 2048);
    let mut w = FunctionBuilder::new("worker", 1);
    let k = w.param(0);
    let base = w.global_addr(data);
    let ob = w.global_addr(out);
    let acc = w.const_(0x5bd1_e995);
    let acc = w.accumulate_loop(0, 256, 1, acc, |b, i, acc| {
        let off = b.shl_imm(i, 3);
        let a = b.add(base, off);
        let v = b.load(a, 0, Locality::Normal);
        let x = b.bin(pir::BinOp::Xor, acc, v);
        let y = b.mul_imm(x, 0x100_0000_01b3);
        b.add_into(acc, y, k);
    });
    let slot = w.and_imm(k, 0xff);
    let off = w.shl_imm(slot, 3);
    let addr = w.add(ob, off);
    w.store(addr, 0, acc);
    w.ret(None);
    let wid = m.add_function(w.finish());
    let mut main_fn = FunctionBuilder::new("main", 0);
    main_fn.counted_loop(0, 200, 1, |b, i| {
        b.call_void(wid, &[i]);
    });
    main_fn.ret(None);
    let mid = m.add_function(main_fn.finish());
    m.set_entry(mid);
    m
}

fn data_snapshot(os: &Os, pid: Pid) -> Vec<u8> {
    let mut bytes = Vec::new();
    for g in os.proc(pid).globals() {
        bytes.extend_from_slice(os.read_mem(pid, g.addr, g.size as usize));
    }
    bytes
}

/// Live patching under the block cache: a stress engine recompiling and
/// dispatching fresh identity variants every few thousand cycles grows
/// the text section and rewrites EVT targets while the interpreter holds
/// cached block shapes. The run must halt with output bit-identical to a
/// never-attached run — i.e. the cache must never execute stale code.
#[test]
fn block_cache_survives_live_patch_storm() {
    let image = Compiler::new(Options::protean())
        .compile(&observable_program())
        .unwrap()
        .image;

    // Baseline: never attached.
    let mut os_a = Os::new(OsConfig::small());
    let pid_a = os_a.spawn(&image, 0);
    for _ in 0..10_000 {
        os_a.advance(100_000);
        if matches!(os_a.status(pid_a), machine::ExecStatus::Halted) {
            break;
        }
    }
    assert!(matches!(os_a.status(pid_a), machine::ExecStatus::Halted));
    let baseline = data_snapshot(&os_a, pid_a);

    // Storm run: recompile a random virtualized function every 3k cycles,
    // stepping the OS in small quanta so dispatches land at many distinct
    // interpreter states (mid-block, at block entry, inside the worker).
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&image, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let mut eng = StressEngine::new(&rt, 3_000, 0xfa57);
    let mut steps = 0u64;
    while !matches!(os.status(pid), machine::ExecStatus::Halted) {
        os.advance(1_000);
        eng.step(&mut os, &mut rt);
        steps += 1;
        assert!(steps < 5_000_000, "storm run did not halt");
    }
    assert!(
        eng.recompiles() > 50,
        "storm must actually patch: {} recompiles",
        eng.recompiles()
    );
    assert_eq!(
        data_snapshot(&os, pid),
        baseline,
        "live patching must never let the block cache execute stale code"
    );
}

/// Runs the full patch-storm scenario with observation tracing on, in
/// the given decode mode, and returns everything an observer can see:
/// final data image, counters, step count, recompile count, the trace
/// JSONL, and the decode-cache stats.
fn storm_run(fallback: bool) -> StormOutcome {
    let image = Compiler::new(Options::protean())
        .compile(&observable_program())
        .unwrap()
        .image;
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&image, 0);
    os.set_obs_trace(Some(1 << 14));
    os.set_decode_fallback(pid, fallback);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let mut eng = StressEngine::new(&rt, 3_000, 0xfa57);
    let mut steps = 0u64;
    while !matches!(os.status(pid), machine::ExecStatus::Halted) {
        os.advance(1_000);
        eng.step(&mut os, &mut rt);
        steps += 1;
        assert!(steps < 5_000_000, "storm run did not halt");
    }
    StormOutcome {
        data: data_snapshot(&os, pid),
        counters: os.proc(pid).counters(),
        steps,
        recompiles: eng.recompiles(),
        trace: rt.trace_jsonl(&os),
        decode: os.decode_stats(pid),
    }
}

struct StormOutcome {
    data: Vec<u8>,
    counters: machine::PerfCounters,
    steps: u64,
    recompiles: u64,
    trace: String,
    decode: machine::DecodeStats,
}

/// The decoded tier under a recompilation storm must be bit-identical to
/// the forced always-decode fallback: same output, same counters, same
/// step count, same trace JSONL. Only the decode-cache stats may differ
/// (that is the point of the tier).
#[test]
fn decoded_tier_patch_storm_is_bit_identical_to_fallback() {
    let decoded = storm_run(false);
    let fallback = storm_run(true);
    assert_eq!(decoded.data, fallback.data, "output diverged");
    assert_eq!(decoded.counters, fallback.counters, "counters diverged");
    assert_eq!(decoded.steps, fallback.steps);
    assert_eq!(decoded.recompiles, fallback.recompiles);
    assert_eq!(decoded.trace, fallback.trace, "trace JSONL diverged");
    // The decoded run must have exercised the tier for the comparison to
    // mean anything: cache hits, superops, and storm-driven
    // invalidations all nonzero; the fallback never caches.
    assert!(decoded.decode.hits > decoded.decode.misses);
    assert!(decoded.decode.fused_ops > 0);
    assert!(decoded.decode.invalidations > 0, "storm must invalidate");
    assert_eq!(fallback.decode.hits, 0);
    assert_eq!(fallback.decode.fused_ops, 0);
}

/// Mid-block OSR park/resume through the decoded tier: arm parks at PCs
/// sampled mid-run (typically strictly inside a decoded block, often on
/// the second constituent of a fused pair), park, capture the frame,
/// resume in place, and run to completion — all bit-identical between
/// decoded and fallback modes.
#[test]
fn decoded_tier_osr_park_resume_matches_fallback() {
    let run_mode = |fallback: bool| {
        let image = Compiler::new(Options::protean())
            .compile(&observable_program())
            .unwrap()
            .image;
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&image, 0);
        os.set_decode_fallback(pid, fallback);
        let mut parks = Vec::new();
        for warmup in [10_000u64, 60_000] {
            os.advance(warmup);
            if matches!(os.status(pid), machine::ExecStatus::Halted) {
                break;
            }
            let pc = os.sample_pc(pid);
            os.osr_arm(pid, pc, 3);
            let mut waited = 0u64;
            while !os.is_osr_parked(pid) {
                os.advance(500);
                waited += 1;
                assert!(waited < 1_000_000, "park never fired at pc {pc}");
            }
            parks.push((pc, os.osr_hits(pid), os.osr_frame(pid).to_vec()));
            os.osr_disarm(pid);
        }
        while !matches!(os.status(pid), machine::ExecStatus::Halted) {
            os.advance(100_000);
        }
        (parks, data_snapshot(&os, pid), os.proc(pid).counters())
    };
    let decoded = run_mode(false);
    let fallback = run_mode(true);
    assert_eq!(decoded, fallback);
    assert_eq!(decoded.0.len(), 2, "both parks must fire");
}

/// A whole simulated experiment per work item returns bit-identical
/// results at any worker count: the property the parallel figure
/// harnesses rely on.
#[test]
fn pool_experiments_are_bit_identical_serial_vs_parallel() {
    let seeds: Vec<u64> = vec![1, 7, 23, 42];
    let experiment = |_: usize, &seed: &u64| {
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let m = workloads::catalog::build("bst", llc).unwrap();
        let img = Compiler::new(Options::plain()).compile(&m).unwrap().image;
        let mut os = Os::new(cfg);
        let pid = os.spawn(&img, 0);
        os.advance(200_000 + (seed % 5) * 50_000);
        let c = os.counters(pid);
        (c.instructions, c.cycles, c.llc_misses)
    };
    let serial = protean_bench::pool::map_with(1, &seeds, experiment);
    let parallel = protean_bench::pool::map_with(4, &seeds, experiment);
    assert_eq!(serial, parallel);
    assert!(serial.iter().all(|&(i, _, _)| i > 0));
}
