//! Regression tests for the interpreter fast path and the experiment
//! fan-out pool.
//!
//! The block-dispatch cache in `machine::exec` indexes decoded basic
//! blocks into the live text section; online transformation appends
//! variants and rewrites EVT slots *while blocks are cached*. These tests
//! drive that exact hazard end-to-end: a program halting under a
//! recompilation storm must produce output bit-identical to an untouched
//! run. The pool tests pin the other contract this PR leans on: a
//! parallel experiment sweep returns exactly what the serial sweep does.

use pcc::{Compiler, Options};
use pir::{FunctionBuilder, Locality, Module};
use protean::{Runtime, RuntimeConfig, StressEngine};
use simos::{Os, OsConfig, Pid};

/// Terminating program with observable output: repeated calls to a
/// worker that folds a buffer and stores per-call results.
fn observable_program() -> Module {
    let mut m = Module::new("observable");
    let data = m.add_global_full(pir::Global::with_words(
        "data",
        (0..256)
            .map(|i| (i * 2654435761u64 as i64) ^ 0x9e3779b9)
            .collect(),
    ));
    let out = m.add_global("out", 2048);
    let mut w = FunctionBuilder::new("worker", 1);
    let k = w.param(0);
    let base = w.global_addr(data);
    let ob = w.global_addr(out);
    let acc = w.const_(0x5bd1_e995);
    let acc = w.accumulate_loop(0, 256, 1, acc, |b, i, acc| {
        let off = b.shl_imm(i, 3);
        let a = b.add(base, off);
        let v = b.load(a, 0, Locality::Normal);
        let x = b.bin(pir::BinOp::Xor, acc, v);
        let y = b.mul_imm(x, 0x100_0000_01b3);
        b.add_into(acc, y, k);
    });
    let slot = w.and_imm(k, 0xff);
    let off = w.shl_imm(slot, 3);
    let addr = w.add(ob, off);
    w.store(addr, 0, acc);
    w.ret(None);
    let wid = m.add_function(w.finish());
    let mut main_fn = FunctionBuilder::new("main", 0);
    main_fn.counted_loop(0, 200, 1, |b, i| {
        b.call_void(wid, &[i]);
    });
    main_fn.ret(None);
    let mid = m.add_function(main_fn.finish());
    m.set_entry(mid);
    m
}

fn data_snapshot(os: &Os, pid: Pid) -> Vec<u8> {
    let mut bytes = Vec::new();
    for g in os.proc(pid).globals() {
        bytes.extend_from_slice(os.read_mem(pid, g.addr, g.size as usize));
    }
    bytes
}

/// Live patching under the block cache: a stress engine recompiling and
/// dispatching fresh identity variants every few thousand cycles grows
/// the text section and rewrites EVT targets while the interpreter holds
/// cached block shapes. The run must halt with output bit-identical to a
/// never-attached run — i.e. the cache must never execute stale code.
#[test]
fn block_cache_survives_live_patch_storm() {
    let image = Compiler::new(Options::protean())
        .compile(&observable_program())
        .unwrap()
        .image;

    // Baseline: never attached.
    let mut os_a = Os::new(OsConfig::small());
    let pid_a = os_a.spawn(&image, 0);
    for _ in 0..10_000 {
        os_a.advance(100_000);
        if matches!(os_a.status(pid_a), machine::ExecStatus::Halted) {
            break;
        }
    }
    assert!(matches!(os_a.status(pid_a), machine::ExecStatus::Halted));
    let baseline = data_snapshot(&os_a, pid_a);

    // Storm run: recompile a random virtualized function every 3k cycles,
    // stepping the OS in small quanta so dispatches land at many distinct
    // interpreter states (mid-block, at block entry, inside the worker).
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&image, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let mut eng = StressEngine::new(&rt, 3_000, 0xfa57);
    let mut steps = 0u64;
    while !matches!(os.status(pid), machine::ExecStatus::Halted) {
        os.advance(1_000);
        eng.step(&mut os, &mut rt);
        steps += 1;
        assert!(steps < 5_000_000, "storm run did not halt");
    }
    assert!(
        eng.recompiles() > 50,
        "storm must actually patch: {} recompiles",
        eng.recompiles()
    );
    assert_eq!(
        data_snapshot(&os, pid),
        baseline,
        "live patching must never let the block cache execute stale code"
    );
}

/// A whole simulated experiment per work item returns bit-identical
/// results at any worker count: the property the parallel figure
/// harnesses rely on.
#[test]
fn pool_experiments_are_bit_identical_serial_vs_parallel() {
    let seeds: Vec<u64> = vec![1, 7, 23, 42];
    let experiment = |_: usize, &seed: &u64| {
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let m = workloads::catalog::build("bst", llc).unwrap();
        let img = Compiler::new(Options::plain()).compile(&m).unwrap().image;
        let mut os = Os::new(cfg);
        let pid = os.spawn(&img, 0);
        os.advance(200_000 + (seed % 5) * 50_000);
        let c = os.counters(pid);
        (c.instructions, c.cycles, c.llc_misses)
    };
    let serial = protean_bench::pool::map_with(1, &seeds, experiment);
    let parallel = protean_bench::pool::map_with(4, &seeds, experiment);
    assert_eq!(serial, parallel);
    assert!(serial.iter().all(|&(i, _, _)| i > 0));
}
