//! Live OSR engine, end to end on real images: park / transfer / resume
//! with the `pir` interpreter as the semantic oracle, bit-identity when
//! the engine is disabled or every window expires, and the
//! first-exec-lag advantage over call-edge-only dispatch on the
//! single-long-loop workload.

use pcc::{Compiler, NtAssignment, Options};
use pir::interp::{run_with_transfer, OsrTransferSpec};
use pir::{FunctionBuilder, Locality, Module};
use protean::{HealthConfig, HealthMonitor, OsrConfig, OsrController, Runtime, RuntimeConfig};
use simos::{Os, OsConfig, Pid};

/// Terminating single-loop program with observable output: `main` calls
/// `spin` once; `spin` streams a buffer for `trip` iterations mixing a
/// checksum, then stores the cursor and the checksum. Any corruption of
/// the live state at the OSR transfer point changes the stored words.
fn oracle_module(trip: i64) -> Module {
    let mut m = Module::new("osr-oracle");
    let buf = m.add_global("buf", 1 << 12);
    let cur_g = m.add_global("cursor", 64);
    let mut b = FunctionBuilder::new("spin", 0);
    let base = b.global_addr(buf);
    let curg = b.global_addr(cur_g);
    let cur = b.load(curg, 0, Locality::Normal);
    let x = b.add_imm(cur, 12345);
    let t0 = b.fresh();
    let a0 = b.fresh();
    let v0 = b.fresh();
    b.counted_loop(0, trip, 1, |b, i| {
        b.bin_imm_into(pir::BinOp::Rem, t0, cur, 1 << 12);
        b.bin_into(pir::BinOp::Add, a0, base, t0);
        b.load_into(v0, a0, 0, Locality::Normal);
        b.bin_into(pir::BinOp::Xor, x, x, v0);
        b.bin_into(pir::BinOp::Xor, x, x, i);
        b.bin_imm_into(pir::BinOp::Mul, x, x, 0x100000001b3u64 as i64);
        b.bin_imm_into(pir::BinOp::Add, cur, cur, 64);
    });
    b.store(curg, 0, cur);
    b.store(curg, 8, x);
    b.ret(None);
    let spin = m.add_function(b.finish());
    let mut mb = FunctionBuilder::new("main", 0);
    mb.call_void(spin, &[]);
    mb.ret(None);
    let mid = m.add_function(mb.finish());
    m.set_entry(mid);
    m
}

fn nt_for(module: &Module, func: pir::FuncId) -> NtAssignment {
    pir::load_sites(module)
        .iter()
        .map(|s| s.site)
        .filter(|s| s.func == func)
        .collect()
}

fn spawn_attached(module: &Module) -> (Os, Pid, Runtime) {
    let out = Compiler::new(Options::protean()).compile(module).unwrap();
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&out.image, 0);
    let rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    (os, pid, rt)
}

fn run_to_halt(os: &mut Os, pid: Pid) {
    for _ in 0..100_000 {
        os.advance(50_000);
        if matches!(os.status(pid), machine::ExecStatus::Halted) {
            return;
        }
    }
    panic!("program did not halt");
}

/// Drives `ctl.tick` in small quanta until the transfer is applied (or
/// panics after a bound). Returns the cycle count spent waiting.
fn tick_until_applied(
    os: &mut Os,
    rt: &mut Runtime,
    health: &mut HealthMonitor,
    ctl: &mut OsrController,
) {
    for _ in 0..10_000 {
        os.advance(1_000);
        if let Some(e) = ctl.tick(os, rt, health) {
            panic!("unexpected OSR failure: {e}");
        }
        if rt.metrics().counter("osr.applied") >= 1 {
            return;
        }
    }
    panic!("transfer never applied");
}

// ---------------------------------------------------------------------
// Oracle lockstep: post-resume execution matches run_with_transfer
// ---------------------------------------------------------------------

#[test]
fn applied_transfer_matches_interpreter_oracle() {
    const TRIP: i64 = 20_000;
    const HIT: u64 = 500;
    let module = oracle_module(TRIP);
    let (mut os, pid, mut rt) = spawn_attached(&module);
    let spin = rt.module().function_by_name("spin").unwrap();
    let mut health = HealthMonitor::new(HealthConfig::default());
    let mut ctl = OsrController::new(OsrConfig {
        park_hit: HIT,
        stuck_samples: 1,
        arm_window_cycles: 50_000_000,
        probation_cycles: 1_000,
        enabled: true,
    });

    let nt = nt_for(rt.module(), spin);
    let idx = rt.compile_variant(&mut os, spin, &nt).unwrap();
    // The recipe the controller will pick: the function's only certified
    // header, proved against this exact variant.
    let recipe = protean::safety::vet_osr_transfers(
        rt.module(),
        spin,
        &rt.variants()[idx].ir,
        &rt.meta().osr,
        &rt.meta().osr_recipes,
    )
    .recipes
    .first()
    .cloned()
    .expect("spin's header must carry a proved recipe");

    // Arm before the first cycle executes: the machine counts header
    // entries from arming, the interpreter from program start, so both
    // fire at the HIT-th global entry.
    ctl.arm(&mut os, &mut rt, &mut health, spin, idx)
        .expect("arming must succeed");
    tick_until_applied(&mut os, &mut rt, &mut health, &mut ctl);
    assert_eq!(ctl.phase_name(), "probation");
    run_to_halt(&mut os, pid);

    // Interpreter oracle: same program, same variant, same switch point.
    let variant_module = {
        let mut vm = module.clone();
        vm.functions_mut()[spin.index()] = rt.variants()[idx].ir.clone();
        vm
    };
    let addrs = rt.link().global_addrs.clone();
    let data_size = os
        .proc(pid)
        .globals()
        .iter()
        .map(|g| (g.addr + g.size) as usize)
        .max()
        .unwrap();
    let spec = OsrTransferSpec {
        func: spin,
        from_block: recipe.baseline_header,
        to_block: recipe.variant_header,
        hit: HIT,
        moves: &recipe.moves,
        consts: &recipe.consts,
    };
    let oracle = run_with_transfer(
        &module,
        &variant_module,
        &spec,
        &addrs,
        data_size,
        50_000_000,
    )
    .expect("oracle run");
    assert!(oracle.transferred, "oracle must hit the transfer point");

    // Architectural state after the mid-loop switch must be bit-exact.
    let cursor_addr = rt.link().global_addrs[1];
    for (name, off) in [("cursor", 0u64), ("checksum", 8u64)] {
        let machine_word = os.read_u64(pid, cursor_addr + off);
        let lo = (cursor_addr + off) as usize;
        let oracle_word = u64::from_le_bytes(oracle.result.data[lo..lo + 8].try_into().unwrap());
        assert_eq!(
            machine_word, oracle_word,
            "{name}: machine diverged from the interpreter oracle after OSR"
        );
    }
    assert_eq!(rt.metrics().counter("osr.applied"), 1);
    assert!(
        rt.metrics()
            .histogram("osr.park_to_resume_cycles")
            .is_some(),
        "park-to-resume latency must be recorded"
    );
}

// ---------------------------------------------------------------------
// Decode-mode bit-identity: the park/transfer/resume round-trip must
// not care whether the pre-decoded superblock tier or the from-scratch
// fallback decoder is executing (a park lands mid-block by clamping the
// decoded replay at the armed PC; resume re-enters via block lookup).
// ---------------------------------------------------------------------

fn osr_round_trip(fallback: bool) -> (u64, u64, u64, u32) {
    const TRIP: i64 = 20_000;
    const HIT: u64 = 500;
    let module = oracle_module(TRIP);
    let (mut os, pid, mut rt) = spawn_attached(&module);
    os.set_decode_fallback(pid, fallback);
    let spin = rt.module().function_by_name("spin").unwrap();
    let mut health = HealthMonitor::new(HealthConfig::default());
    let mut ctl = OsrController::new(OsrConfig {
        park_hit: HIT,
        stuck_samples: 1,
        arm_window_cycles: 50_000_000,
        probation_cycles: 1_000,
        enabled: true,
    });
    let nt = nt_for(rt.module(), spin);
    let idx = rt.compile_variant(&mut os, spin, &nt).unwrap();
    ctl.arm(&mut os, &mut rt, &mut health, spin, idx)
        .expect("arming must succeed");
    tick_until_applied(&mut os, &mut rt, &mut health, &mut ctl);
    run_to_halt(&mut os, pid);
    let cursor_addr = rt.link().global_addrs[1];
    (
        os.read_u64(pid, cursor_addr),
        os.read_u64(pid, cursor_addr + 8),
        os.proc(pid).counters().instructions,
        os.proc(pid).ctx().pc(),
    )
}

#[test]
fn osr_round_trip_is_bit_identical_across_decode_modes() {
    let decoded = osr_round_trip(false);
    let fallback = osr_round_trip(true);
    assert_eq!(
        decoded, fallback,
        "OSR park/transfer/resume diverged between the decoded tier and \
         the fallback decoder (cursor, checksum, instructions, pc)"
    );
}

// ---------------------------------------------------------------------
// Bit-identity: disabled engine (and expired windows) are invisible
// ---------------------------------------------------------------------

/// Runs the long-loop workload for a fixed schedule under one of three
/// regimes and returns (instructions, pc, cursor word, llc misses).
enum Regime {
    NoController,
    Disabled,
    ArmedButExpires,
}

fn long_loop_fingerprint(regime: &Regime) -> (u64, u32, u64, u64) {
    let cfg = OsConfig::small();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let module = workloads::build_long_loop(llc);
    let (mut os, pid, mut rt) = spawn_attached(&module);
    let spin = rt.module().function_by_name("spin").unwrap();
    let mut health = HealthMonitor::new(HealthConfig::default());
    let nt = nt_for(rt.module(), spin);
    let idx = rt.compile_variant(&mut os, spin, &nt).unwrap();

    let mut ctl = match regime {
        Regime::NoController => None,
        Regime::Disabled => Some(OsrController::new(OsrConfig {
            enabled: false,
            ..OsrConfig::default()
        })),
        // Armed for real — but the park target is unreachable (u64::MAX
        // header entries) and the window is zero, so the very next tick
        // abandons. The machine briefly runs with an armed park gate;
        // that must not perturb execution by a single cycle.
        Regime::ArmedButExpires => Some(OsrController::new(OsrConfig {
            park_hit: u64::MAX,
            arm_window_cycles: 0,
            stuck_samples: 1,
            ..OsrConfig::default()
        })),
    };
    if let Some(c) = &mut ctl {
        c.set_goal(spin, idx);
        if matches!(regime, Regime::ArmedButExpires) {
            c.arm(&mut os, &mut rt, &mut health, spin, idx)
                .expect("arming must succeed");
        }
    }
    for _ in 0..200 {
        os.advance(2_000);
        if let Some(c) = &mut ctl {
            let pc = os.proc(pid).ctx().pc();
            c.note_pc_sample(&mut os, &mut rt, &mut health, pc);
            c.tick(&mut os, &mut rt, &mut health);
        }
    }
    if let Some(c) = &ctl {
        match regime {
            Regime::Disabled => {
                assert_eq!(rt.metrics().counter("osr.armed"), 0);
            }
            Regime::ArmedButExpires => {
                assert_eq!(rt.metrics().counter("osr.armed"), 1);
                assert_eq!(rt.metrics().counter("osr.abandoned"), 1);
                assert_eq!(rt.metrics().counter("osr.applied"), 0);
                assert_eq!(c.phase_name(), "idle");
            }
            Regime::NoController => {}
        }
    }
    let cursor_addr = rt.link().global_addrs[1];
    let c = os.proc(pid).counters();
    (
        c.instructions,
        os.proc(pid).ctx().pc(),
        os.read_u64(pid, cursor_addr),
        c.llc_misses,
    )
}

#[test]
fn disabled_or_expired_osr_is_bit_identical_to_no_osr() {
    let baseline = long_loop_fingerprint(&Regime::NoController);
    assert_eq!(
        long_loop_fingerprint(&Regime::Disabled),
        baseline,
        "a disabled OSR controller must be invisible to execution"
    );
    assert_eq!(
        long_loop_fingerprint(&Regime::ArmedButExpires),
        baseline,
        "an armed-then-expired window must leave execution untouched"
    );
}

// ---------------------------------------------------------------------
// First-exec lag: OSR takes effect mid-loop, call-edge waits for return
// ---------------------------------------------------------------------

fn first_exec_lag(osr: bool) -> u64 {
    let cfg = OsConfig::small();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    // Shorter calls than the default spec so the call-edge regime can
    // observe its variant within the test budget at all — each call is
    // still millions of cycles, dwarfing a mid-loop OSR switch.
    let module = workloads::build_long_loop_spec(
        &workloads::LongLoopSpec {
            iters_per_call: 40_000,
            ..workloads::LongLoopSpec::default()
        },
        llc,
    );
    let (mut os, pid, mut rt) = spawn_attached(&module);
    let spin = rt.module().function_by_name("spin").unwrap();
    let mut health = HealthMonitor::new(HealthConfig::default());
    // Deep inside the first (multi-million-cycle) call of spin.
    os.advance(100_000);
    let nt = nt_for(rt.module(), spin);
    let idx = rt.compile_variant(&mut os, spin, &nt).unwrap();

    if osr {
        let mut ctl = OsrController::new(OsrConfig {
            stuck_samples: 1,
            ..OsrConfig::default()
        });
        ctl.arm(&mut os, &mut rt, &mut health, spin, idx)
            .expect("arming must succeed");
        tick_until_applied(&mut os, &mut rt, &mut health, &mut ctl);
    } else {
        rt.dispatch(&mut os, idx).expect("call-edge dispatch");
    }
    // Same sampling cadence for both regimes; the lag histogram closes
    // at the first sample that lands inside the variant.
    for _ in 0..40_000 {
        os.advance(2_000);
        let pc = os.proc(pid).ctx().pc();
        rt.note_pc_sample(os.now(), pc);
        if let Some(h) = rt.metrics().histogram("dispatch.first_exec_lag_cycles") {
            if h.count() >= 1 {
                return h.max();
            }
        }
    }
    panic!("variant never observed executing (osr={osr})");
}

#[test]
fn osr_first_exec_lag_beats_call_edge_on_long_loop() {
    let osr_lag = first_exec_lag(true);
    let call_edge_lag = first_exec_lag(false);
    assert!(
        osr_lag < call_edge_lag,
        "OSR must take effect before the loop exits: osr {osr_lag} vs call-edge {call_edge_lag}"
    );
    // Not just faster — a different regime entirely: the call-edge path
    // has to wait out the remainder of a multi-million-cycle call.
    assert!(
        call_edge_lag > 10 * osr_lag.max(1),
        "call-edge lag ({call_edge_lag}) should dwarf OSR lag ({osr_lag}) on the long loop"
    );
}
