//! Tier-1 integration checks for the discrete-event datacenter
//! simulator: a small seeded cluster must be bit-identical whether the
//! per-server cycle boxes are advanced serially or fanned out across the
//! experiment thread pool, and the `datacenter.*` metrics must flow into
//! a `MonitorReport`.

use datacenter::{
    serial_exec, BatchMode, Cluster, ClusterConfig, ClusterResult, GroupSpec, Placement, QpsShape,
    MIXES,
};
use protean_bench::dc::pool_exec;

fn config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        groups: vec![
            GroupSpec {
                name: "web-search/WL1".into(),
                ls_app: "web-search",
                mix: MIXES[0],
                servers: 3,
                shape: QpsShape::diurnal(20.0, 40.0, 8.0, 1.0, 0.0, 1.0),
            },
            GroupSpec {
                name: "graph-analytics/WL2".into(),
                ls_app: "graph-analytics",
                mix: MIXES[1],
                servers: 3,
                shape: QpsShape::bursty(20.0, 6.0, 30.0, 0.3, 1.0, seed),
            },
        ],
        batch: BatchMode::Jobs {
            placement: Placement::LeastLoaded,
            mean_interarrival_secs: 3.0,
        },
        duration_secs: 20.0,
        consolidate: true,
        min_active: 1,
        seed,
        job_branches: 2_000,
        ..ClusterConfig::default()
    }
}

/// Everything observable about a run, floats by exact bits.
fn fingerprint(r: &ClusterResult) -> String {
    let mut s = format!(
        "events={} skipped={} queries={} jobs={} energy={:x}\n",
        r.events,
        r.skipped_cycles,
        r.queries,
        r.jobs_completed,
        r.energy_joules.to_bits()
    );
    for g in &r.groups {
        s.push_str(&format!(
            "{} q={} j={} b={} busy={} life={} e={:x} parks={} act={}\n",
            g.name,
            g.queries,
            g.jobs_completed,
            g.batch_branches,
            g.busy_cycles,
            g.lifetime_cycles,
            g.energy_joules.to_bits(),
            g.parks,
            g.activations
        ));
    }
    for (name, v) in &r.snapshot.counters {
        s.push_str(&format!("{name}={v}\n"));
    }
    s
}

#[test]
fn cluster_sim_is_bit_identical_serial_vs_pool() {
    let serial = Cluster::new(config(11)).run_with(&serial_exec());
    std::env::set_var("PROTEAN_JOBS", "4");
    let pooled = Cluster::new(config(11)).run_with(&pool_exec());
    std::env::remove_var("PROTEAN_JOBS");
    assert!(
        serial.queries > 100,
        "LS load was served: {}",
        serial.queries
    );
    assert!(serial.jobs_completed > 0, "batch jobs completed");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&pooled),
        "pool fan-out changed simulation results"
    );
}

#[test]
fn cluster_metrics_reach_monitor_report() {
    let r = Cluster::new(config(3)).run_with(&serial_exec());
    let report = r.report();
    for counter in ["datacenter.events", "datacenter.queries"] {
        assert!(
            report.metrics.counters.get(counter).copied().unwrap_or(0) > 0,
            "{counter} missing or zero in {:?}",
            report.metrics.counters
        );
    }
    assert!(
        report
            .metrics
            .histograms
            .contains_key("datacenter.active_servers"),
        "active-servers histogram missing"
    );
    assert!(
        report.metrics.gauges.contains_key("datacenter.sim_seconds"),
        "sim-seconds gauge missing"
    );
}
