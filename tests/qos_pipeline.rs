//! Integration tests for the full QoS-management pipeline: PC3D and
//! ReQoS managing real catalog workload pairs on the simulated server.

use pc3d::{Pc3d, Pc3dConfig};
use pcc::{Compiler, Options};
use protean::{ExtMonitor, Runtime, RuntimeConfig};
use reqos::{ReqosConfig, ReqosController};
use simos::{LoadSchedule, Os, OsConfig, Pid};

fn scaled_os() -> OsConfig {
    OsConfig {
        machine: machine::MachineConfig::scaled(),
        ..OsConfig::default()
    }
}

fn spawn_pair(batch: &str, ext: &str, qps: Option<f64>) -> (Os, Pid, Pid) {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let ext_img = Compiler::new(Options::plain())
        .compile(&workloads::catalog::build(ext, llc).unwrap())
        .unwrap()
        .image;
    let host_img = Compiler::new(Options::protean())
        .compile(&workloads::catalog::build(batch, llc).unwrap())
        .unwrap()
        .image;
    let mut os = Os::new(cfg);
    let e = os.spawn(&ext_img, 0);
    let h = os.spawn(&host_img, 1);
    if let Some(q) = qps {
        os.set_load(e, LoadSchedule::constant(q));
    }
    (os, e, h)
}

/// Ground-truth co-runner QoS over a window, against a solo replay.
fn true_qos(batch_managed_ips: f64, ext: &str, qps: Option<f64>, secs: f64) -> f64 {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let img = Compiler::new(Options::plain())
        .compile(&workloads::catalog::build(ext, llc).unwrap())
        .unwrap()
        .image;
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    if let Some(q) = qps {
        os.set_load(pid, LoadSchedule::constant(q));
    }
    os.advance_seconds(secs);
    let mut mon = ExtMonitor::new(&os, pid);
    os.advance_seconds(secs);
    batch_managed_ips / mon.end_window(&os).ips
}

#[test]
fn pc3d_protects_web_search_from_libquantum() {
    let qps = 80.0;
    let (mut os, ws, lq) = spawn_pair("libquantum", "web-search", Some(qps));
    let rt = Runtime::attach(&os, lq, RuntimeConfig::on_core(2)).unwrap();
    let mut ctl = Pc3d::new(
        &mut os,
        rt,
        ws,
        Pc3dConfig {
            qos_target: 0.95,
            ..Default::default()
        },
    );
    ctl.run_for(&mut os, 90.0);
    // Measure the converged tail.
    let mut ext_mon = ExtMonitor::new(&os, ws);
    let mut host_mon = ExtMonitor::new(&os, lq);
    ctl.run_for(&mut os, 30.0);
    let w = ext_mon.end_window(&os);
    let h = host_mon.end_window(&os);
    let qos = true_qos(w.ips, "web-search", Some(qps), 15.0);
    assert!(
        qos > 0.90,
        "web-search must be protected, true QoS {qos:.3}"
    );
    assert!(
        ctl.hints() > 0,
        "libquantum should carry NT hints at convergence"
    );
    assert!(h.bps > 0.0);
}

#[test]
fn pc3d_beats_reqos_on_streaming_host_at_tight_target() {
    let qps = 80.0;
    let measure_pc3d = || {
        let (mut os, ws, lq) = spawn_pair("libquantum", "web-search", Some(qps));
        let rt = Runtime::attach(&os, lq, RuntimeConfig::on_core(2)).unwrap();
        let mut ctl = Pc3d::new(
            &mut os,
            rt,
            ws,
            Pc3dConfig {
                qos_target: 0.95,
                ..Default::default()
            },
        );
        ctl.run_for(&mut os, 90.0);
        let mut host_mon = ExtMonitor::new(&os, lq);
        ctl.run_for(&mut os, 30.0);
        host_mon.end_window(&os).bps
    };
    let measure_reqos = || {
        let (mut os, ws, lq) = spawn_pair("libquantum", "web-search", Some(qps));
        let mut ctl = ReqosController::new(
            &mut os,
            lq,
            ws,
            ReqosConfig {
                qos_target: 0.95,
                ..Default::default()
            },
        );
        ctl.run_for(&mut os, 90.0);
        let mut host_mon = ExtMonitor::new(&os, lq);
        ctl.run_for(&mut os, 30.0);
        host_mon.end_window(&os).bps
    };
    let pc3d_bps = measure_pc3d();
    let reqos_bps = measure_reqos();
    assert!(
        pc3d_bps > reqos_bps * 1.2,
        "PC3D ({pc3d_bps:.0} bps) should clearly beat nap-only ReQoS ({reqos_bps:.0} bps)"
    );
}

#[test]
fn both_systems_meet_target_on_batch_external() {
    // Batch external (milc) instead of a server: QoS is plain IPS ratio.
    for use_pc3d in [true, false] {
        let (mut os, ext, host) = spawn_pair("sledge", "milc", None);
        let measured_ips = if use_pc3d {
            let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).unwrap();
            let mut ctl = Pc3d::new(
                &mut os,
                rt,
                ext,
                Pc3dConfig {
                    qos_target: 0.95,
                    ..Default::default()
                },
            );
            ctl.run_for(&mut os, 60.0);
            let mut mon = ExtMonitor::new(&os, ext);
            ctl.run_for(&mut os, 20.0);
            mon.end_window(&os).ips
        } else {
            let mut ctl = ReqosController::new(
                &mut os,
                host,
                ext,
                ReqosConfig {
                    qos_target: 0.95,
                    ..Default::default()
                },
            );
            ctl.run_for(&mut os, 60.0);
            let mut mon = ExtMonitor::new(&os, ext);
            ctl.run_for(&mut os, 20.0);
            mon.end_window(&os).ips
        };
        let qos = true_qos(measured_ips, "milc", None, 10.0);
        assert!(
            qos > 0.88,
            "{} must hold milc near its 95% target, got {qos:.3}",
            if use_pc3d { "PC3D" } else { "ReQoS" }
        );
    }
}

#[test]
fn runtime_overhead_stays_under_one_percent() {
    let (mut os, ext, host) = spawn_pair("soplex", "web-search", Some(60.0));
    let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).unwrap();
    let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
    ctl.run_for(&mut os, 60.0);
    let frac = os.runtime_consumed_total() as f64 / os.server_cycles() as f64;
    assert!(
        frac < 0.01,
        "PC3D runtime used {:.2}% of server cycles",
        frac * 100.0
    );
}
