//! Mutation-based robustness tests for the analysis layer.
//!
//! Two complementary properties over the real benchmark catalog:
//!
//! * **Soundness of rejection** — deliberately corrupting a workload
//!   module (dangling branch target, out-of-range register, bogus
//!   callee/arity/global) must always be caught by
//!   [`pir::verify::verify_module`]. The verifier is the gatekeeper for
//!   everything downstream (the pass manager's invariant checks, the
//!   runtime's dispatch gate), so a mutation slipping through here would
//!   undermine all of them.
//! * **Cleanliness of the shipped programs** — every pristine catalog
//!   program lints free of error-severity diagnostics, so the lint layer
//!   can run over real modules without false alarms.

use std::sync::OnceLock;

use proptest::prelude::*;

use pir::verify::verify_module;
use pir::{lint, BlockId, FuncId, GlobalId, Inst, Module, Reg, Term};
use workloads::catalog;

const LLC_LINES: u64 = 16_384;

/// A few structurally diverse catalog programs, built once (streaming,
/// LLC-resident, pointer-chasing, and a latency-sensitive server).
fn corpus() -> &'static [Module] {
    static CORPUS: OnceLock<Vec<Module>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        ["libquantum", "bst", "milc", "web-search"]
            .iter()
            .map(|n| catalog::build(n, LLC_LINES).expect("catalog workload"))
            .collect()
    })
}

/// Kinds of corruption, each guaranteed to be structurally invalid.
#[derive(Copy, Clone, Debug)]
enum Mutation {
    DanglingBranch,
    OutOfRangeReg,
    BogusCallee,
    ExtraCallArg,
    BogusGlobal,
}

const MUTATIONS: [Mutation; 5] = [
    Mutation::DanglingBranch,
    Mutation::OutOfRangeReg,
    Mutation::BogusCallee,
    Mutation::ExtraCallArg,
    Mutation::BogusGlobal,
];

/// Applies `mutation` somewhere in `module`, steering the choice of
/// function/block/instruction with `seed`. Returns false if no
/// applicable site exists (e.g. no call instruction for a call mutation).
fn mutate(module: &mut Module, mutation: Mutation, seed: usize) -> bool {
    let nfuncs = module.functions().len();
    let nglobals = module.globals().len() as u32;
    for probe in 0..nfuncs {
        let fi = (seed + probe) % nfuncs;
        let func = &mut module.functions_mut()[fi];
        let nblocks = func.block_count();
        let reg_count = func.reg_count();
        for bprobe in 0..nblocks {
            let bi = (seed + bprobe) % nblocks;
            let block = &mut func.blocks_mut()[bi];
            if apply_to_block(block, mutation, nblocks, reg_count, nfuncs, nglobals) {
                return true;
            }
        }
    }
    false
}

fn apply_to_block(
    block: &mut pir::Block,
    mutation: Mutation,
    nblocks: usize,
    reg_count: u32,
    nfuncs: usize,
    nglobals: u32,
) -> bool {
    match mutation {
        Mutation::DanglingBranch => {
            block.term = Term::Br(BlockId(nblocks as u32 + 7));
            true
        }
        Mutation::OutOfRangeReg => {
            if let Some(inst) = block.insts.iter_mut().find(|i| i.dst().is_some()) {
                match inst {
                    Inst::Const { dst, .. }
                    | Inst::Bin { dst, .. }
                    | Inst::BinImm { dst, .. }
                    | Inst::Load { dst, .. }
                    | Inst::GlobalAddr { dst, .. } => *dst = Reg(reg_count + 3),
                    _ => unreachable!("dst() was Some"),
                }
                true
            } else {
                false
            }
        }
        Mutation::BogusCallee => {
            if let Some(Inst::Call { callee, .. }) = block
                .insts
                .iter_mut()
                .find(|i| matches!(i, Inst::Call { .. }))
            {
                *callee = FuncId(nfuncs as u32 + 2);
                true
            } else {
                false
            }
        }
        Mutation::ExtraCallArg => {
            if let Some(Inst::Call { args, .. }) = block
                .insts
                .iter_mut()
                .find(|i| matches!(i, Inst::Call { .. }))
            {
                args.push(Reg(0));
                true
            } else {
                false
            }
        }
        Mutation::BogusGlobal => {
            if let Some(Inst::GlobalAddr { global, .. }) = block
                .insts
                .iter_mut()
                .find(|i| matches!(i, Inst::GlobalAddr { .. }))
            {
                *global = GlobalId(nglobals + 1);
                true
            } else {
                false
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every corrupted workload module is rejected by the verifier.
    #[test]
    fn corrupted_workload_modules_are_rejected(
        which in 0usize..4,
        mutation_idx in 0usize..MUTATIONS.len(),
        seed in 0usize..10_000,
    ) {
        let mut m = corpus()[which].clone();
        // Every corpus program contains all mutation sites (calls,
        // globals, register defs), so application never fails.
        prop_assert!(mutate(&mut m, MUTATIONS[mutation_idx], seed));
        prop_assert!(
            verify_module(&m).is_err(),
            "verifier accepted a module corrupted with {:?}",
            MUTATIONS[mutation_idx]
        );
    }
}

/// Every pristine catalog program verifies and lints with zero
/// error-severity diagnostics (warnings — dead stores, unvirtualizable
/// calls — are allowed).
#[test]
fn every_catalog_program_lints_error_free() {
    for w in catalog::CATALOG {
        let m = catalog::build(w.name, LLC_LINES).expect("catalog workload");
        assert!(verify_module(&m).is_ok(), "{} fails verification", w.name);
        let report = lint::lint_module(&m);
        assert!(
            report.is_error_free(),
            "{} has lint errors:\n{}",
            w.name,
            report
        );
    }
}
