//! The paper's headline quantitative claims, encoded as integration
//! tests on the scaled experiment machine. These are the regression
//! guards for the whole reproduction: if a change anywhere in the stack
//! breaks one of these, a figure has silently stopped reproducing.

use machine::BtConfig;
use pcc::{Compiler, NtAssignment, Options};
use protean::{ExtMonitor, Runtime, RuntimeConfig, StressEngine};
use simos::{Os, OsConfig};
use workloads::catalog;

fn scaled_os() -> OsConfig {
    OsConfig {
        machine: machine::MachineConfig::scaled(),
        ..OsConfig::default()
    }
}

fn solo_ips(image: &visa::Image, secs: f64) -> f64 {
    let mut os = Os::new(scaled_os());
    let pid = os.spawn(image, 0);
    os.advance_seconds(secs * 0.3);
    let mut mon = ExtMonitor::new(&os, pid);
    os.advance_seconds(secs);
    mon.end_window(&os).ips
}

/// Section I / Figure 4: "enacting arbitrary compiler transformations at
/// runtime ... with negligible (<1%) overhead" for the virtualization
/// mechanism itself.
#[test]
fn claim_edge_virtualization_costs_under_one_percent() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let names = ["bzip2", "sjeng", "libquantum", "gobmk", "sphinx3", "mcf"];
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    for name in names {
        let m = catalog::build(name, llc).unwrap();
        let plain = Compiler::new(Options::plain()).compile(&m).unwrap().image;
        let protean = Compiler::new(Options::protean()).compile(&m).unwrap().image;
        let slowdown = solo_ips(&plain, 3.0) / solo_ips(&protean, 3.0);
        worst = worst.max(slowdown);
        sum += slowdown;
    }
    let mean = sum / names.len() as f64;
    assert!(
        mean < 1.01,
        "edge virtualization must average <1%, got {mean:.4}x"
    );
    assert!(
        worst < 1.03,
        "no app should pay more than ~2-3%, worst {worst:.4}x"
    );
}

/// Figure 4: the binary-translation baseline pays real overhead where
/// protean code does not.
#[test]
fn claim_binary_translation_is_visibly_slower() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let mut total = 0.0;
    let names = ["sjeng", "gobmk", "namd", "povray", "hmmer", "gcc"];
    for name in names {
        let m = catalog::build(name, llc).unwrap();
        let plain = Compiler::new(Options::plain()).compile(&m).unwrap().image;
        let native = solo_ips(&plain, 3.0);
        let bt = {
            let mut os = Os::new(scaled_os());
            let pid = os.spawn_with_bt(&plain, 0, BtConfig::default());
            os.advance_seconds(1.0);
            let mut mon = ExtMonitor::new(&os, pid);
            os.advance_seconds(3.0);
            mon.end_window(&os).ips
        };
        total += native / bt;
    }
    let mean = total / names.len() as f64;
    assert!(
        mean > 1.08,
        "binary translation should average >8% overhead on compute-heavy apps, got {mean:.3}x"
    );
}

/// Figure 5: asynchronous recompilation on a separate core is free even
/// at a 5 ms trigger interval.
#[test]
fn claim_stress_recompilation_on_separate_core_is_free() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let m = catalog::build("milc", llc).unwrap();
    let plain = Compiler::new(Options::plain()).compile(&m).unwrap().image;
    let protean = Compiler::new(Options::protean()).compile(&m).unwrap().image;
    let native = solo_ips(&plain, 4.0);
    let stressed = {
        let cfg2 = scaled_os();
        let interval = (0.005 * cfg2.machine.cycles_per_second as f64) as u64;
        let mut os = Os::new(cfg2);
        let pid = os.spawn(&protean, 0);
        let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
        let mut engine = StressEngine::new(&rt, interval, 99);
        os.advance_seconds(1.0);
        let mut mon = ExtMonitor::new(&os, pid);
        let end = os.now_seconds() + 4.0;
        while os.now_seconds() < end {
            os.advance_seconds(0.005);
            engine.step(&mut os, &mut rt);
        }
        assert!(
            engine.recompiles() > 500,
            "the stress engine must be firing continuously"
        );
        mon.end_window(&os).ips
    };
    let slowdown = native / stressed;
    assert!(
        slowdown < 1.02,
        "5ms separate-core recompilation must be near-free, got {slowdown:.3}x"
    );
}

/// Section IV / Figure 3: the fully non-temporal variant of a streaming
/// host removes nearly all of its pressure on an LLC-sensitive co-runner,
/// at near-zero cost to the host itself.
#[test]
fn claim_nt_hints_remove_streaming_pressure() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let host_m = catalog::build("libquantum", llc).unwrap();
    let ext_m = catalog::build("er-naive", llc).unwrap();
    let host_img = Compiler::new(Options::protean())
        .compile(&host_m)
        .unwrap()
        .image;
    let ext_img = Compiler::new(Options::plain())
        .compile(&ext_m)
        .unwrap()
        .image;
    let ext_solo = solo_ips(&ext_img, 3.0);
    let host_solo = {
        let mut os = Os::new(scaled_os());
        let pid = os.spawn(&host_img, 0);
        os.advance_seconds(1.0);
        let mut mon = ExtMonitor::new(&os, pid);
        os.advance_seconds(3.0);
        mon.end_window(&os).bps
    };
    let run = |hints: bool| -> (f64, f64) {
        let mut os = Os::new(scaled_os());
        let ext = os.spawn(&ext_img, 0);
        let host = os.spawn(&host_img, 1);
        if hints {
            let mut rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).unwrap();
            let nt = NtAssignment::all(
                pir::load_sites(rt.module())
                    .iter()
                    .filter(|s| s.at_max_depth())
                    .map(|s| s.site),
            );
            for func in rt.virtualized_funcs() {
                let sub: NtAssignment = nt.sites_in(func).into_iter().collect();
                if !sub.is_empty() {
                    let _ = rt.transform(&mut os, func, &sub);
                }
            }
        }
        os.advance_seconds(1.0);
        let mut em = ExtMonitor::new(&os, ext);
        let mut hm = ExtMonitor::new(&os, host);
        os.advance_seconds(3.0);
        (
            em.end_window(&os).ips / ext_solo,
            hm.end_window(&os).bps / host_solo,
        )
    };
    let (qos_plain, _) = run(false);
    let (qos_nt, host_nt) = run(true);
    assert!(
        qos_plain < 0.97,
        "unhinted libquantum must hurt er-naive, qos {qos_plain:.3}"
    );
    assert!(qos_nt > 0.98, "hinted libquantum must not, qos {qos_nt:.3}");
    assert!(
        host_nt > 0.95,
        "hints must be near-free for a pure streamer, host at {host_nt:.3} of solo"
    );
}

/// Section III: a protean binary runs correctly *without* any runtime
/// attached, and any runtime can attach later — key deployability
/// properties.
#[test]
fn claim_protean_binaries_are_standalone() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let m = catalog::build("bzip2", llc).unwrap();
    let img = Compiler::new(Options::protean()).compile(&m).unwrap().image;
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    os.advance_seconds(2.0);
    assert!(
        os.counters(pid).instructions > 10_000,
        "runs fine with no runtime"
    );
    // A runtime can attach at any later moment and immediately transform.
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let func = rt.virtualized_funcs()[0];
    rt.transform(&mut os, func, &NtAssignment::none()).unwrap();
    os.advance_seconds(1.0);
    assert!(os.counters(pid).instructions > 10_000);
}

/// Figure 7: the full PC3D runtime consumes well under 1% of server
/// cycles (checked more cheaply in qos_pipeline.rs; here we pin the
/// monitoring-only floor).
#[test]
fn claim_monitoring_is_cheap() {
    let cfg = scaled_os();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let m = catalog::build("lbm", llc).unwrap();
    let img = Compiler::new(Options::protean()).compile(&m).unwrap().image;
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    let rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let mut mon = protean::HostMonitor::new(&os, pid, 0.5);
    let sample_cost = (20e-6 * os.config().machine.cycles_per_second as f64) as u64;
    for _ in 0..2000 {
        os.advance_seconds(0.005);
        mon.sample(&os, &rt);
        os.charge_runtime(1, sample_cost.max(1));
    }
    os.advance_seconds(0.5);
    let frac = os.runtime_consumed_total() as f64 / os.server_cycles() as f64;
    assert!(
        frac < 0.005,
        "PC sampling must cost <0.5% of server cycles, got {frac:.4}"
    );
}
