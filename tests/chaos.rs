//! Chaos tests: seeded fault schedules against the self-healing runtime.
//!
//! Three invariants from the paper's detach guarantee, checked under
//! injected faults ([`protean::FaultPlan`]):
//!
//! * **QoS floor**: a PC3D controller absorbing a full chaos schedule
//!   never protects the co-runner materially worse than a fault-free
//!   nap-only ReQoS controller — the degradation ladder's whole point.
//! * **Quarantine is final**: a variant the health layer quarantined is
//!   never installed in the EVT again, at any step of the run.
//! * **Detached is invisible**: after the ladder detaches, the process
//!   output is bit-identical to a run that never attached at all.
//!
//! Seeds come from `PROTEAN_CHAOS_SEEDS` (comma-separated); CI pins a
//! fixed three-seed matrix, local runs default to one seed. Each seed's
//! run is independent, so the matrices fan out across
//! `protean_bench::pool` workers; results merge in seed order, and any
//! per-seed failure still fails the test.

use pc3d::{Pc3d, Pc3dConfig};
use pcc::{Compiler, NtAssignment, Options};
use pir::{FunctionBuilder, Locality, Module};
use protean::runtime::DispatchError;
use protean::{
    FaultKind, FaultPlan, HealthConfig, HealthMonitor, HealthState, OsrConfig, OsrController,
    OsrError, Runtime, RuntimeConfig, StressEngine,
};
use reqos::{ReqosConfig, ReqosController};
use simos::{Os, OsConfig, Pid};

fn chaos_seeds() -> Vec<u64> {
    std::env::var("PROTEAN_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![23])
}

// ---------------------------------------------------------------------
// Invariant (a): chaos-stricken PC3D vs fault-free nap-only ReQoS
// ---------------------------------------------------------------------

fn spawn_pair(host: &str, ext: &str) -> (Os, Pid, Pid, Runtime) {
    let cfg = OsConfig::small();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let host_img = Compiler::new(Options::protean())
        .compile(&workloads::catalog::build(host, llc).unwrap())
        .unwrap()
        .image;
    let ext_img = Compiler::new(Options::plain())
        .compile(&workloads::catalog::build(ext, llc).unwrap())
        .unwrap()
        .image;
    let mut os = Os::new(cfg);
    let e = os.spawn(&ext_img, 0);
    let h = os.spawn(&host_img, 1);
    let rt = Runtime::attach(&os, h, RuntimeConfig::on_core(1)).unwrap();
    (os, h, e, rt)
}

/// Ground-truth co-runner IPS over the tail of a managed run, read from
/// the raw per-process counters — `Os::proc(..).counters()` bypasses the
/// (possibly garbled) ptrace/perf observation surface, so the metric
/// stays honest while the controller under test still sees faulty data.
fn true_tail_ips(os: &Os, ext: Pid, start: (u64, f64)) -> f64 {
    let (i0, t0) = start;
    (os.proc(ext).counters().instructions - i0) as f64 / (os.now_seconds() - t0)
}

fn tail_mark(os: &Os, ext: Pid) -> (u64, f64) {
    (os.proc(ext).counters().instructions, os.now_seconds())
}

#[test]
fn chaos_qos_is_never_worse_than_clean_nap_only() {
    // True solo capacity of the co-runner, for normalizing both runs.
    let cfg = OsConfig::small();
    let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
    let solo_img = Compiler::new(Options::plain())
        .compile(&workloads::catalog::build("mcf", llc).unwrap())
        .unwrap()
        .image;
    let mut os_solo = Os::new(cfg);
    let solo_pid = os_solo.spawn(&solo_img, 0);
    os_solo.advance_seconds(45.0);
    let mark = tail_mark(&os_solo, solo_pid);
    os_solo.advance_seconds(15.0);
    let solo_ips = true_tail_ips(&os_solo, solo_pid, mark);

    // Fault-free nap-only baseline on the pair.
    let (mut os2, h2, ext2, _rt2) = spawn_pair("libquantum", "mcf");
    let mut base = ReqosController::new(&mut os2, h2, ext2, ReqosConfig::default());
    base.run_for(&mut os2, 45.0);
    let mark = tail_mark(&os2, ext2);
    base.run_for(&mut os2, 15.0);
    let base_qos = true_tail_ips(&os2, ext2, mark) / solo_ips;

    let seeds = chaos_seeds();
    let chaos_qoses = protean_bench::pool::map(&seeds, |_, &seed| {
        // PC3D under the full chaos schedule: compile failures/stalls,
        // EVT drops, cache corruption, garbled observations.
        let (mut os, _h, ext, rt) = spawn_pair("libquantum", "mcf");
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.inject_faults(&mut os, FaultPlan::chaos(seed));
        ctl.run_for(&mut os, 45.0);
        let mark = tail_mark(&os, ext);
        ctl.run_for(&mut os, 15.0);
        // With `PROTEAN_TRACE` set (CI), export this seed's full event
        // stream; the workflow uploads it as an artifact on failure.
        ctl.export_trace(&os, &format!("chaos_qos_seed{seed}"))
            .expect("trace export must not fail");
        true_tail_ips(&os, ext, mark) / solo_ips
    });
    for (seed, chaos_qos) in seeds.iter().zip(chaos_qoses) {
        assert!(
            chaos_qos >= base_qos - 0.05,
            "seed {seed}: chaos PC3D true QoS {chaos_qos:.3} fell more than \
             0.05 below clean nap-only {base_qos:.3}"
        );
    }
}

// ---------------------------------------------------------------------
// Invariant (b): quarantined variants are never re-dispatched
// ---------------------------------------------------------------------

/// Non-terminating streaming host for the stress engine.
fn streaming_host() -> Module {
    let mut m = Module::new("stream");
    let buf = m.add_global("buf", 1 << 13);
    let mut w = FunctionBuilder::new("work", 0);
    let base = w.global_addr(buf);
    w.counted_loop(0, 64, 1, |b, i| {
        let off = b.shl_imm(i, 3);
        let a = b.add(base, off);
        let _ = b.load(a, 0, Locality::Normal);
    });
    w.ret(None);
    let wid = m.add_function(w.finish());
    let mut main_fn = FunctionBuilder::new("main", 0);
    let h = main_fn.new_block();
    main_fn.br(h);
    main_fn.switch_to(h);
    main_fn.call_void(wid, &[]);
    main_fn.br(h);
    let mid = m.add_function(main_fn.finish());
    m.set_entry(mid);
    m
}

#[test]
fn quarantined_variants_are_never_redispatched() {
    let seeds = chaos_seeds();
    protean_bench::pool::map(&seeds, |_, &seed| {
        let out = Compiler::new(Options::protean())
            .compile(&streaming_host())
            .unwrap();
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&out.image, 0);
        let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
        // Heavy EVT dropping with a one-strike quarantine policy; the
        // ladder is frozen so the engine keeps producing variants.
        let plan = FaultPlan::seeded(seed)
            .with_rate(FaultKind::EvtWriteFail, 0.6)
            .with_rate(FaultKind::CacheCorrupt, 0.2);
        let health = HealthConfig {
            quarantine_threshold: 1,
            degrade_threshold: 1_000,
            detach_threshold: 2_000,
            ..HealthConfig::default()
        };
        let mut eng = StressEngine::with_faults(&mut os, &mut rt, 5_000, seed, plan, health);
        for _ in 0..400 {
            os.advance(5_000);
            eng.step(&mut os, &mut rt);
            // Continuous invariant: no quarantined variant's code is ever
            // the EVT target, at any point of the run.
            for idx in rt.quarantined_variants() {
                let rec = &rt.variants()[idx];
                assert_ne!(
                    rt.current_target(&os, rec.func),
                    Some(rec.addr),
                    "seed {seed}: quarantined variant {idx} re-installed"
                );
            }
        }
        let quarantined = rt.quarantined_variants();
        assert!(
            !quarantined.is_empty(),
            "seed {seed}: one-strike policy under 60% EVT drops must quarantine"
        );
        // Explicit re-dispatch attempts are refused at the runtime layer,
        // before any fault roll.
        let idx = quarantined[0];
        assert!(matches!(
            rt.dispatch(&mut os, idx),
            Err(DispatchError::Quarantined { .. })
        ));
        assert!(
            matches!(os.status(pid), machine::ExecStatus::Running),
            "seed {seed}: host must survive"
        );
    });
}

// ---------------------------------------------------------------------
// Invariant (c): Detached output is bit-identical to never-attached
// ---------------------------------------------------------------------

/// Terminating program with observable output: 200 calls to a leaf
/// worker, each folding the data buffer and storing into an out-table.
fn observable_program() -> Module {
    let mut m = Module::new("observable");
    let data = m.add_global_full(pir::Global::with_words(
        "data",
        (0..256)
            .map(|i| (i * 2654435761u64 as i64) ^ 0x9e3779b9)
            .collect(),
    ));
    let out = m.add_global("out", 2048);
    // worker(k): out[k mod 256] = fold(data) + k
    let mut w = FunctionBuilder::new("worker", 1);
    let k = w.param(0);
    let base = w.global_addr(data);
    let ob = w.global_addr(out);
    let acc = w.const_(0x5bd1_e995);
    let acc = w.accumulate_loop(0, 256, 1, acc, |b, i, acc| {
        let off = b.shl_imm(i, 3);
        let a = b.add(base, off);
        let v = b.load(a, 0, Locality::Normal);
        let x = b.bin(pir::BinOp::Xor, acc, v);
        let y = b.mul_imm(x, 0x100_0000_01b3);
        b.add_into(acc, y, k);
    });
    let slot = w.and_imm(k, 0xff);
    let off = w.shl_imm(slot, 3);
    let addr = w.add(ob, off);
    w.store(addr, 0, acc);
    w.ret(None);
    let wid = m.add_function(w.finish());
    let mut main_fn = FunctionBuilder::new("main", 0);
    main_fn.counted_loop(0, 200, 1, |b, i| {
        b.call_void(wid, &[i]);
    });
    main_fn.ret(None);
    let mid = m.add_function(main_fn.finish());
    m.set_entry(mid);
    m
}

fn run_to_halt(os: &mut Os, pid: Pid) {
    for _ in 0..10_000 {
        os.advance(100_000);
        if matches!(os.status(pid), machine::ExecStatus::Halted) {
            return;
        }
    }
    panic!("program did not halt");
}

/// Every byte of the data segment the image declares (globals, EVT,
/// embedded metadata alike).
fn data_snapshot(os: &Os, pid: Pid) -> Vec<u8> {
    let mut bytes = Vec::new();
    for g in os.proc(pid).globals() {
        bytes.extend_from_slice(os.read_mem(pid, g.addr, g.size as usize));
    }
    bytes
}

#[test]
fn detached_run_output_is_bit_identical_to_never_attached() {
    let image = Compiler::new(Options::protean())
        .compile(&observable_program())
        .unwrap()
        .image;

    // Baseline: never attached.
    let mut os_a = Os::new(OsConfig::small());
    let pid_a = os_a.spawn(&image, 0);
    run_to_halt(&mut os_a, pid_a);
    let baseline = data_snapshot(&os_a, pid_a);

    // Chaos run: attach, dispatch an NT variant, let it execute, corrupt
    // its code cache mid-run; a one-fault detach threshold drops the
    // ladder straight to Detached.
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&image, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let mut health = HealthMonitor::new(HealthConfig {
        detach_threshold: 1,
        ..HealthConfig::default()
    });
    let worker = rt.module().function_by_name("worker").unwrap();
    let nt: NtAssignment = pir::load_sites(rt.module())
        .iter()
        .map(|s| s.site)
        .filter(|s| s.func == worker)
        .collect();
    let idx = health
        .transform(&mut os, &mut rt, worker, &nt)
        .expect("variant dispatches");
    let (addr, len) = {
        let rec = &rt.variants()[idx];
        (rec.addr, rec.len)
    };
    // Let the variant actually run before sabotaging it.
    os.advance(50_000);
    assert!(
        os.counters(pid).nt_prefetches > 0,
        "the NT variant must have executed"
    );
    // Corrupt only while no frame is live in the variant (the worker is a
    // leaf, so PC outside its span means no live frame), and scrub in the
    // same tick so the corrupt bytes never execute.
    let mut safe = false;
    for _ in 0..100_000 {
        let pc = os.proc(pid).ctx().pc();
        if pc < addr || pc >= addr + len {
            safe = true;
            break;
        }
        os.advance(200);
    }
    assert!(safe, "never found a corruption window outside the variant");
    assert!(os.corrupt_text(pid, addr + 2, 0xdead_beef));
    health.scrub(&mut os, &mut rt);
    assert_eq!(
        health.state(),
        HealthState::Detached,
        "one checksum failure at detach_threshold=1 must detach"
    );
    let original = rt.link().func_addrs[worker.index()];
    assert_eq!(
        rt.current_target(&os, worker),
        Some(original),
        "detaching restores the original code"
    );

    run_to_halt(&mut os, pid);
    assert_eq!(
        data_snapshot(&os, pid),
        baseline,
        "detached run must be bit-identical to a never-attached run"
    );
}

// ---------------------------------------------------------------------
// Degradation latency: nap-only within one monitoring window
// ---------------------------------------------------------------------

#[test]
fn faults_degrade_the_controller_within_one_window() {
    let (mut os, _h, ext, rt) = spawn_pair("libquantum", "mcf");
    let mut ctl = Pc3d::with_health(
        &mut os,
        rt,
        ext,
        Pc3dConfig {
            qos_target: 0.98,
            ..Pc3dConfig::default()
        },
        HealthConfig {
            degrade_threshold: 1,
            detach_threshold: 1_000,
            recovery_windows: u32::MAX,
            ..HealthConfig::default()
        },
    );
    ctl.inject_faults(
        &mut os,
        FaultPlan::seeded(1).with_rate(FaultKind::EvtWriteFail, 1.0),
    );
    let mut faulted = false;
    for _ in 0..240 {
        ctl.run_window(&mut os);
        if ctl.health().stats().evt_write_failures > 0 {
            faulted = true;
            // The fault landed during this very window; the ladder must
            // already be below Healthy (nap-only) by the window's end.
            assert!(
                !ctl.health().allows_variants(),
                "ladder must drop within the faulting window"
            );
            break;
        }
    }
    assert!(faulted, "the search must have attempted a dispatch");
    assert_eq!(ctl.hints(), 0, "no variant survives dropped EVT writes");
    ctl.export_trace(&os, "chaos_degrade_window")
        .expect("trace export must not fail");
}

// ---------------------------------------------------------------------
// Live-OSR fault kinds: abandon, quarantine, rollback
// ---------------------------------------------------------------------

/// A protean host with a certified loop, its NT variant compiled, and an
/// OSR controller + health monitor whose ladder thresholds are pushed far
/// out so per-header OSR quarantine (threshold 3) is the first policy to
/// trip.
fn osr_rig(
    module: &Module,
) -> (
    Os,
    Pid,
    Runtime,
    HealthMonitor,
    OsrController,
    pir::FuncId,
    usize,
) {
    let out = Compiler::new(Options::protean()).compile(module).unwrap();
    let mut os = Os::new(OsConfig::small());
    let pid = os.spawn(&out.image, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
    let health = HealthMonitor::new(HealthConfig {
        degrade_threshold: 1_000,
        detach_threshold: 2_000,
        ..HealthConfig::default()
    });
    let ctl = OsrController::new(OsrConfig {
        arm_window_cycles: 20_000,
        stuck_samples: 1,
        ..OsrConfig::default()
    });
    let func = rt
        .module()
        .function_by_name("work")
        .or_else(|| rt.module().function_by_name("spin"))
        .unwrap();
    let nt: NtAssignment = pir::load_sites(rt.module())
        .iter()
        .map(|s| s.site)
        .filter(|s| s.func == func)
        .collect();
    let idx = rt.compile_variant(&mut os, func, &nt).unwrap();
    (os, pid, rt, health, ctl, func, idx)
}

/// Drives ticks until the controller reports a failure or `applied`
/// becomes nonzero; returns the failure if one occurred.
fn drive_osr(
    os: &mut Os,
    rt: &mut Runtime,
    health: &mut HealthMonitor,
    ctl: &mut OsrController,
) -> Option<OsrError> {
    for _ in 0..200 {
        os.advance(500);
        if let Some(e) = ctl.tick(os, rt, health) {
            return Some(e);
        }
        if rt.metrics().counter("osr.applied") > 0 {
            return None;
        }
    }
    panic!("OSR neither applied nor failed within the drive budget");
}

#[test]
fn osr_arm_stall_abandons_cleanly_and_clean_retry_applies() {
    let seeds = chaos_seeds();
    protean_bench::pool::map(&seeds, |_, &seed| {
        let (mut os, pid, mut rt, mut health, mut ctl, func, idx) = osr_rig(&streaming_host());
        // Every arm request is dropped at the machine level: the bounded
        // window must expire and the request abandon without touching the
        // frame, the header, or the health ladder.
        rt.set_fault_plan(FaultPlan::seeded(seed).with_rate(FaultKind::OsrArmStall, 1.0));
        ctl.arm(&mut os, &mut rt, &mut health, func, idx)
            .expect("arming must succeed");
        let err = drive_osr(&mut os, &mut rt, &mut health, &mut ctl);
        assert!(
            matches!(err, Some(OsrError::WindowExpired { .. })),
            "seed {seed}: stalled arm must expire its window, got {err:?}"
        );
        assert_eq!(ctl.phase_name(), "idle");
        assert_eq!(rt.metrics().counter("osr.armed"), 1);
        assert_eq!(rt.metrics().counter("osr.abandoned"), 1);
        assert_eq!(rt.metrics().counter("osr.applied"), 0);
        assert!(
            !os.is_osr_parked(pid) && os.osr_armed(pid).is_none(),
            "seed {seed}: abandon must leave no park request behind"
        );
        // An abandoned window is not a transfer failure: nothing counts
        // toward quarantine, and a clean retry goes through.
        rt.set_fault_plan(FaultPlan::seeded(seed));
        ctl.arm(&mut os, &mut rt, &mut health, func, idx)
            .expect("clean re-arm must succeed");
        let err = drive_osr(&mut os, &mut rt, &mut health, &mut ctl);
        assert_eq!(err, None, "seed {seed}: clean retry must apply");
        assert_eq!(rt.metrics().counter("osr.applied"), 1);
    });
}

#[test]
fn osr_recipe_corruption_quarantines_the_header_finally() {
    let seeds = chaos_seeds();
    protean_bench::pool::map(&seeds, |_, &seed| {
        let (mut os, pid, mut rt, mut health, mut ctl, func, idx) = osr_rig(&streaming_host());
        rt.set_fault_plan(FaultPlan::seeded(seed).with_rate(FaultKind::RecipeCorrupt, 1.0));
        let threshold = health.config().osr_quarantine_threshold;
        let mut header = None;
        for attempt in 1..=threshold {
            ctl.arm(&mut os, &mut rt, &mut health, func, idx)
                .expect("header not yet quarantined");
            let err = drive_osr(&mut os, &mut rt, &mut health, &mut ctl);
            let Some(OsrError::RecipeCorrupt { .. }) = err else {
                panic!("seed {seed}: expected a checksum refusal, got {err:?}");
            };
            let h = *header.get_or_insert_with(|| {
                rt.meta()
                    .osr
                    .iter()
                    .find(|c| c.func == func)
                    .map(|c| c.header)
                    .unwrap()
            });
            assert_eq!(health.osr_fault_count(func, h), attempt);
        }
        let header = header.unwrap();
        // Quarantine is final: the header is refused at arm time, never
        // re-armed, and the counter records the trip exactly once.
        assert!(health.osr_quarantined(func, header));
        assert_eq!(rt.metrics().counter("osr.quarantined"), 1);
        assert_eq!(rt.metrics().counter("osr.applied"), 0);
        assert!(matches!(
            ctl.arm(&mut os, &mut rt, &mut health, func, idx),
            Err(OsrError::AllHeadersQuarantined { .. })
        ));
        assert!(
            os.osr_armed(pid).is_none(),
            "seed {seed}: a quarantined header must never be re-armed"
        );
        // Function-level (call-edge) dispatch is an independent mechanism
        // and must keep working.
        rt.set_fault_plan(FaultPlan::seeded(seed));
        rt.dispatch(&mut os, idx)
            .expect("call-edge dispatch survives OSR quarantine");
        assert_eq!(
            rt.current_target(&os, func),
            Some(rt.variants()[idx].addr),
            "seed {seed}: EVT must point at the variant"
        );
    });
}

/// Terminating single-loop program with observable output, for
/// bit-identity checks across an OSR rollback: `spin` folds a streaming
/// checksum over 2000 iterations and stores cursor + checksum.
fn terminating_loop_program() -> Module {
    let mut m = Module::new("osr-rollback");
    let buf = m.add_global("buf", 1 << 12);
    let cur_g = m.add_global("cursor", 64);
    let mut b = FunctionBuilder::new("spin", 0);
    let base = b.global_addr(buf);
    let curg = b.global_addr(cur_g);
    let cur = b.load(curg, 0, Locality::Normal);
    let x = b.add_imm(cur, 777);
    let t0 = b.fresh();
    let a0 = b.fresh();
    let v0 = b.fresh();
    b.counted_loop(0, 2_000, 1, |b, i| {
        b.bin_imm_into(pir::BinOp::Rem, t0, cur, 1 << 12);
        b.bin_into(pir::BinOp::Add, a0, base, t0);
        b.load_into(v0, a0, 0, Locality::Normal);
        b.bin_into(pir::BinOp::Xor, x, x, v0);
        b.bin_into(pir::BinOp::Xor, x, x, i);
        b.bin_imm_into(pir::BinOp::Add, cur, cur, 64);
    });
    b.store(curg, 0, cur);
    b.store(curg, 8, x);
    b.ret(None);
    let spin = m.add_function(b.finish());
    let mut mb = FunctionBuilder::new("main", 0);
    mb.call_void(spin, &[]);
    mb.ret(None);
    let mid = m.add_function(mb.finish());
    m.set_entry(mid);
    m
}

#[test]
fn osr_transfer_misapply_rolls_back_bit_identically() {
    // Ground truth: the program run to completion, never attached.
    let module = terminating_loop_program();
    let image = Compiler::new(Options::protean())
        .compile(&module)
        .unwrap()
        .image;
    let mut os_a = Os::new(OsConfig::small());
    let pid_a = os_a.spawn(&image, 0);
    run_to_halt(&mut os_a, pid_a);
    let baseline = data_snapshot(&os_a, pid_a);

    let seeds = chaos_seeds();
    protean_bench::pool::map(&seeds, |_, &seed| {
        let (mut os, pid, mut rt, mut health, mut ctl, func, idx) =
            osr_rig(&terminating_loop_program());
        rt.set_fault_plan(FaultPlan::seeded(seed).with_rate(FaultKind::TransferMisapply, 1.0));
        ctl.arm(&mut os, &mut rt, &mut health, func, idx)
            .expect("arming must succeed");
        let err = drive_osr(&mut os, &mut rt, &mut health, &mut ctl);
        assert!(
            matches!(err, Some(OsrError::TransferMisapply { .. })),
            "seed {seed}: the perturbed frame must fail read-back, got {err:?}"
        );
        // The rollback restored the snapshot, resumed in baseline code,
        // and flipped the EVT back — the variant never executed.
        assert_eq!(rt.metrics().counter("osr.deopt"), 1);
        assert_eq!(rt.metrics().counter("osr.applied"), 0);
        let original = rt.link().func_addrs[func.index()];
        assert_eq!(
            rt.current_target(&os, func),
            Some(original),
            "seed {seed}: rollback must restore the original EVT target"
        );
        run_to_halt(&mut os, pid);
        assert_eq!(
            data_snapshot(&os, pid),
            baseline,
            "seed {seed}: a rolled-back transfer must be observably absent"
        );
    });
}

// ---------------------------------------------------------------------
// Fault-kind coverage: every kind is enumerable and drawable
// ---------------------------------------------------------------------

#[test]
fn chaos_preset_covers_every_fault_kind() {
    // Iterating `FaultKind::ALL` (instead of hardcoding the kind count)
    // keeps this green as injection sites are added: a kind missing from
    // the chaos preset would silently drop coverage.
    for kind in FaultKind::ALL {
        assert!(
            FaultPlan::chaos(0).rate(kind) > 0.0,
            "chaos preset must exercise {kind:?}"
        );
        let mut certain = FaultPlan::seeded(5).with_rate(kind, 1.0);
        assert!(certain.draw(kind), "rate-1.0 {kind:?} must always draw");
        let mut never = FaultPlan::seeded(5);
        assert!(!never.draw(kind), "rate-0 {kind:?} must never draw");
    }
}

// ---------------------------------------------------------------------
// Error plumbing: every failure composes with `?`
// ---------------------------------------------------------------------

#[test]
fn runtime_errors_compose_as_std_errors() {
    fn assert_std_error<E: std::error::Error>() {}
    assert_std_error::<protean::AttachError>();
    assert_std_error::<DispatchError>();
    assert_std_error::<OsrError>();
    assert_std_error::<pcc::CompileError>();
    assert_std_error::<pcc::annex::MetaError>();

    // Attaching to a non-protean binary fails through `?` into the
    // catch-all error type applications actually use.
    fn attach_plain() -> Result<(), Box<dyn std::error::Error>> {
        let out = Compiler::new(Options::plain()).compile(&streaming_host())?;
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&out.image, 0);
        let _rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1))?;
        Ok(())
    }
    let err = attach_plain().expect_err("plain binaries are not attachable");
    assert!(
        err.to_string().contains("protean"),
        "attach error must explain itself: {err}"
    );

    // An injected dispatch failure propagates the same way.
    fn dispatch_under_faults() -> Result<(), Box<dyn std::error::Error>> {
        let out = Compiler::new(Options::protean()).compile(&streaming_host())?;
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&out.image, 0);
        let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1))?;
        let work = rt.module().function_by_name("work").unwrap();
        rt.set_fault_plan(FaultPlan::seeded(2).with_rate(FaultKind::CompileFail, 1.0));
        rt.transform(&mut os, work, &NtAssignment::none())?;
        Ok(())
    }
    let err = dispatch_under_faults().expect_err("guaranteed compile failure");
    assert!(
        err.to_string().contains("compilation"),
        "dispatch error must explain itself: {err}"
    );

    // An OSR refusal propagates the same way.
    fn arm_while_disabled() -> Result<(), Box<dyn std::error::Error>> {
        let out = Compiler::new(Options::protean()).compile(&streaming_host())?;
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&out.image, 0);
        let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1))?;
        let work = rt.module().function_by_name("work").unwrap();
        let mut health = HealthMonitor::new(HealthConfig::default());
        let mut ctl = OsrController::new(OsrConfig {
            enabled: false,
            ..OsrConfig::default()
        });
        ctl.arm(&mut os, &mut rt, &mut health, work, 0)?;
        Ok(())
    }
    let err = arm_while_disabled().expect_err("disabled controllers refuse to arm");
    assert!(
        err.to_string().contains("disabled"),
        "OSR error must explain itself: {err}"
    );
}
