/root/repo/target/debug/deps/visa-14222c9bb750f198.d: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/debug/deps/libvisa-14222c9bb750f198.rlib: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/debug/deps/libvisa-14222c9bb750f198.rmeta: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

crates/visa/src/lib.rs:
crates/visa/src/asm.rs:
crates/visa/src/disasm.rs:
crates/visa/src/encode.rs:
crates/visa/src/image.rs:
crates/visa/src/op.rs:
