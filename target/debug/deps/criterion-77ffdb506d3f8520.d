/root/repo/target/debug/deps/criterion-77ffdb506d3f8520.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-77ffdb506d3f8520.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-77ffdb506d3f8520.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
