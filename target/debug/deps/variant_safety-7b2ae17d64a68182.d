/root/repo/target/debug/deps/variant_safety-7b2ae17d64a68182.d: crates/protean/tests/variant_safety.rs

/root/repo/target/debug/deps/variant_safety-7b2ae17d64a68182: crates/protean/tests/variant_safety.rs

crates/protean/tests/variant_safety.rs:
