/root/repo/target/debug/deps/proptests-1561a759850c1c12.d: crates/pir/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1561a759850c1c12: crates/pir/tests/proptests.rs

crates/pir/tests/proptests.rs:
