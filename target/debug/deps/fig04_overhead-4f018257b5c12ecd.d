/root/repo/target/debug/deps/fig04_overhead-4f018257b5c12ecd.d: crates/bench/benches/fig04_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_overhead-4f018257b5c12ecd.rmeta: crates/bench/benches/fig04_overhead.rs Cargo.toml

crates/bench/benches/fig04_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
