/root/repo/target/debug/deps/protean_bench-dfe4be71f696261f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprotean_bench-dfe4be71f696261f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
