/root/repo/target/debug/deps/protean_repro-e3e04adce8f78cae.d: src/lib.rs

/root/repo/target/debug/deps/libprotean_repro-e3e04adce8f78cae.rlib: src/lib.rs

/root/repo/target/debug/deps/libprotean_repro-e3e04adce8f78cae.rmeta: src/lib.rs

src/lib.rs:
