/root/repo/target/debug/deps/fig16_dynamic-82a25b84f3c47263.d: crates/bench/benches/fig16_dynamic.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_dynamic-82a25b84f3c47263.rmeta: crates/bench/benches/fig16_dynamic.rs Cargo.toml

crates/bench/benches/fig16_dynamic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
