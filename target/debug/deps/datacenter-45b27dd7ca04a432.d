/root/repo/target/debug/deps/datacenter-45b27dd7ca04a432.d: crates/datacenter/src/lib.rs

/root/repo/target/debug/deps/datacenter-45b27dd7ca04a432: crates/datacenter/src/lib.rs

crates/datacenter/src/lib.rs:
