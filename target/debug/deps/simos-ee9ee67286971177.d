/root/repo/target/debug/deps/simos-ee9ee67286971177.d: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs Cargo.toml

/root/repo/target/debug/deps/libsimos-ee9ee67286971177.rmeta: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs Cargo.toml

crates/simos/src/lib.rs:
crates/simos/src/loadgen.rs:
crates/simos/src/os.rs:
crates/simos/src/process.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
