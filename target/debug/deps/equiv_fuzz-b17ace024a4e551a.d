/root/repo/target/debug/deps/equiv_fuzz-b17ace024a4e551a.d: tests/equiv_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libequiv_fuzz-b17ace024a4e551a.rmeta: tests/equiv_fuzz.rs Cargo.toml

tests/equiv_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
