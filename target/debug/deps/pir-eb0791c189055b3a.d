/root/repo/target/debug/deps/pir-eb0791c189055b3a.d: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/encode.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs

/root/repo/target/debug/deps/libpir-eb0791c189055b3a.rlib: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/encode.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs

/root/repo/target/debug/deps/libpir-eb0791c189055b3a.rmeta: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/encode.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs

crates/pir/src/lib.rs:
crates/pir/src/analysis.rs:
crates/pir/src/builder.rs:
crates/pir/src/compress.rs:
crates/pir/src/dataflow.rs:
crates/pir/src/encode.rs:
crates/pir/src/ids.rs:
crates/pir/src/inst.rs:
crates/pir/src/interp.rs:
crates/pir/src/lint.rs:
crates/pir/src/loops.rs:
crates/pir/src/module.rs:
crates/pir/src/print.rs:
crates/pir/src/verify.rs:
