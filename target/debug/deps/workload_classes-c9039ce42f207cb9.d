/root/repo/target/debug/deps/workload_classes-c9039ce42f207cb9.d: tests/workload_classes.rs

/root/repo/target/debug/deps/workload_classes-c9039ce42f207cb9: tests/workload_classes.rs

tests/workload_classes.rs:
