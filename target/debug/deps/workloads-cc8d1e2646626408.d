/root/repo/target/debug/deps/workloads-cc8d1e2646626408.d: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

/root/repo/target/debug/deps/libworkloads-cc8d1e2646626408.rlib: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

/root/repo/target/debug/deps/libworkloads-cc8d1e2646626408.rmeta: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

crates/workloads/src/lib.rs:
crates/workloads/src/batch.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/server.rs:
