/root/repo/target/debug/deps/datacenter-0423ebe1008b72a9.d: crates/datacenter/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdatacenter-0423ebe1008b72a9.rmeta: crates/datacenter/src/lib.rs Cargo.toml

crates/datacenter/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
