/root/repo/target/debug/deps/fig07_runtime_cycles-8712d355d01d2038.d: crates/bench/benches/fig07_runtime_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_runtime_cycles-8712d355d01d2038.rmeta: crates/bench/benches/fig07_runtime_cycles.rs Cargo.toml

crates/bench/benches/fig07_runtime_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
