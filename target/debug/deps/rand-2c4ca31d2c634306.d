/root/repo/target/debug/deps/rand-2c4ca31d2c634306.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2c4ca31d2c634306.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2c4ca31d2c634306.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
