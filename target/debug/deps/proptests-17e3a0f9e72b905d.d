/root/repo/target/debug/deps/proptests-17e3a0f9e72b905d.d: crates/simos/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-17e3a0f9e72b905d.rmeta: crates/simos/tests/proptests.rs Cargo.toml

crates/simos/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
