/root/repo/target/debug/deps/proptests-73398ee3f4fb3e4e.d: crates/machine/tests/proptests.rs

/root/repo/target/debug/deps/proptests-73398ee3f4fb3e4e: crates/machine/tests/proptests.rs

crates/machine/tests/proptests.rs:
