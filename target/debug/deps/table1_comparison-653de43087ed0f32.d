/root/repo/target/debug/deps/table1_comparison-653de43087ed0f32.d: crates/bench/benches/table1_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_comparison-653de43087ed0f32.rmeta: crates/bench/benches/table1_comparison.rs Cargo.toml

crates/bench/benches/table1_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
