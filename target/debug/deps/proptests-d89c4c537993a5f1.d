/root/repo/target/debug/deps/proptests-d89c4c537993a5f1.d: crates/visa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d89c4c537993a5f1: crates/visa/tests/proptests.rs

crates/visa/tests/proptests.rs:
