/root/repo/target/debug/deps/visa-570880848de359fc.d: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/debug/deps/libvisa-570880848de359fc.rlib: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/debug/deps/libvisa-570880848de359fc.rmeta: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

crates/visa/src/lib.rs:
crates/visa/src/asm.rs:
crates/visa/src/disasm.rs:
crates/visa/src/encode.rs:
crates/visa/src/image.rs:
crates/visa/src/op.rs:
