/root/repo/target/debug/deps/criterion-788bdf1076959d88.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-788bdf1076959d88: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
