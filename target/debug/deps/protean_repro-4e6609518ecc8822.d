/root/repo/target/debug/deps/protean_repro-4e6609518ecc8822.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprotean_repro-4e6609518ecc8822.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
