/root/repo/target/debug/deps/pcc-4b390665a295e12b.d: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

/root/repo/target/debug/deps/libpcc-4b390665a295e12b.rlib: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

/root/repo/target/debug/deps/libpcc-4b390665a295e12b.rmeta: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

crates/pcc/src/lib.rs:
crates/pcc/src/annex.rs:
crates/pcc/src/compile.rs:
crates/pcc/src/inline.rs:
crates/pcc/src/invariants.rs:
crates/pcc/src/layout.rs:
crates/pcc/src/lower.rs:
crates/pcc/src/nt.rs:
crates/pcc/src/opt.rs:
crates/pcc/src/virtualize.rs:
