/root/repo/target/debug/deps/fig02_variants-cea0b6181bf19f79.d: crates/bench/benches/fig02_variants.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_variants-cea0b6181bf19f79.rmeta: crates/bench/benches/fig02_variants.rs Cargo.toml

crates/bench/benches/fig02_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
