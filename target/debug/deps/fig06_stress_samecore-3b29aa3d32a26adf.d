/root/repo/target/debug/deps/fig06_stress_samecore-3b29aa3d32a26adf.d: crates/bench/benches/fig06_stress_samecore.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_stress_samecore-3b29aa3d32a26adf.rmeta: crates/bench/benches/fig06_stress_samecore.rs Cargo.toml

crates/bench/benches/fig06_stress_samecore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
