/root/repo/target/debug/deps/proptest-20c2505c93965778.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-20c2505c93965778: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
