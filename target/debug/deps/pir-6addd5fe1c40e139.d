/root/repo/target/debug/deps/pir-6addd5fe1c40e139.d: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/effects.rs crates/pir/src/encode.rs crates/pir/src/equiv.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libpir-6addd5fe1c40e139.rmeta: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/effects.rs crates/pir/src/encode.rs crates/pir/src/equiv.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs Cargo.toml

crates/pir/src/lib.rs:
crates/pir/src/analysis.rs:
crates/pir/src/builder.rs:
crates/pir/src/compress.rs:
crates/pir/src/dataflow.rs:
crates/pir/src/effects.rs:
crates/pir/src/encode.rs:
crates/pir/src/equiv.rs:
crates/pir/src/ids.rs:
crates/pir/src/inst.rs:
crates/pir/src/interp.rs:
crates/pir/src/lint.rs:
crates/pir/src/loops.rs:
crates/pir/src/module.rs:
crates/pir/src/print.rs:
crates/pir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
