/root/repo/target/debug/deps/qos_pipeline-d07429ccddb2f4bc.d: tests/qos_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libqos_pipeline-d07429ccddb2f4bc.rmeta: tests/qos_pipeline.rs Cargo.toml

tests/qos_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
