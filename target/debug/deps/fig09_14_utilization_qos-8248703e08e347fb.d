/root/repo/target/debug/deps/fig09_14_utilization_qos-8248703e08e347fb.d: crates/bench/benches/fig09_14_utilization_qos.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_14_utilization_qos-8248703e08e347fb.rmeta: crates/bench/benches/fig09_14_utilization_qos.rs Cargo.toml

crates/bench/benches/fig09_14_utilization_qos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
