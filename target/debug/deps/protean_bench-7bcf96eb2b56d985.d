/root/repo/target/debug/deps/protean_bench-7bcf96eb2b56d985.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/protean_bench-7bcf96eb2b56d985: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
