/root/repo/target/debug/deps/machine-a1cef51b44490ae3.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

/root/repo/target/debug/deps/libmachine-a1cef51b44490ae3.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

/root/repo/target/debug/deps/libmachine-a1cef51b44490ae3.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/config.rs:
crates/machine/src/counters.rs:
crates/machine/src/exec.rs:
crates/machine/src/hierarchy.rs:
