/root/repo/target/debug/deps/datacenter-4bbc467f4adb7ab4.d: crates/datacenter/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdatacenter-4bbc467f4adb7ab4.rmeta: crates/datacenter/src/lib.rs Cargo.toml

crates/datacenter/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
