/root/repo/target/debug/deps/proptests-af93e64aa5843239.d: crates/pir/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-af93e64aa5843239.rmeta: crates/pir/tests/proptests.rs Cargo.toml

crates/pir/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
