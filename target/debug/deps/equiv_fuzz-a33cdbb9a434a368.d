/root/repo/target/debug/deps/equiv_fuzz-a33cdbb9a434a368.d: tests/equiv_fuzz.rs

/root/repo/target/debug/deps/equiv_fuzz-a33cdbb9a434a368: tests/equiv_fuzz.rs

tests/equiv_fuzz.rs:
