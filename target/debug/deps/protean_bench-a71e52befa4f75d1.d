/root/repo/target/debug/deps/protean_bench-a71e52befa4f75d1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprotean_bench-a71e52befa4f75d1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprotean_bench-a71e52befa4f75d1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
