/root/repo/target/debug/deps/machine-5dd639e7f96377fa.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-5dd639e7f96377fa.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/config.rs:
crates/machine/src/counters.rs:
crates/machine/src/exec.rs:
crates/machine/src/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
