/root/repo/target/debug/deps/proptests-f1f74e848ea99032.d: crates/simos/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f1f74e848ea99032: crates/simos/tests/proptests.rs

crates/simos/tests/proptests.rs:
