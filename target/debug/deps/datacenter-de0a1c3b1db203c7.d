/root/repo/target/debug/deps/datacenter-de0a1c3b1db203c7.d: crates/datacenter/src/lib.rs

/root/repo/target/debug/deps/libdatacenter-de0a1c3b1db203c7.rlib: crates/datacenter/src/lib.rs

/root/repo/target/debug/deps/libdatacenter-de0a1c3b1db203c7.rmeta: crates/datacenter/src/lib.rs

crates/datacenter/src/lib.rs:
