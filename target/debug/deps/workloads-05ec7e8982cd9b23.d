/root/repo/target/debug/deps/workloads-05ec7e8982cd9b23.d: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-05ec7e8982cd9b23.rmeta: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/batch.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
