/root/repo/target/debug/deps/differential-bf1e2614f86924a5.d: crates/pcc/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-bf1e2614f86924a5.rmeta: crates/pcc/tests/differential.rs Cargo.toml

crates/pcc/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
