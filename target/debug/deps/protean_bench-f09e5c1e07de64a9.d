/root/repo/target/debug/deps/protean_bench-f09e5c1e07de64a9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprotean_bench-f09e5c1e07de64a9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
