/root/repo/target/debug/deps/fig08_heuristics-0637fa2ea579db6a.d: crates/bench/benches/fig08_heuristics.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_heuristics-0637fa2ea579db6a.rmeta: crates/bench/benches/fig08_heuristics.rs Cargo.toml

crates/bench/benches/fig08_heuristics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
