/root/repo/target/debug/deps/machine-9859495b170f11db.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

/root/repo/target/debug/deps/machine-9859495b170f11db: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/config.rs:
crates/machine/src/counters.rs:
crates/machine/src/exec.rs:
crates/machine/src/hierarchy.rs:
