/root/repo/target/debug/deps/variant_safety-8ab9ba8d1adb13ea.d: crates/protean/tests/variant_safety.rs Cargo.toml

/root/repo/target/debug/deps/libvariant_safety-8ab9ba8d1adb13ea.rmeta: crates/protean/tests/variant_safety.rs Cargo.toml

crates/protean/tests/variant_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
