/root/repo/target/debug/deps/pcc-0fbfd11ad94e59d8.d: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs Cargo.toml

/root/repo/target/debug/deps/libpcc-0fbfd11ad94e59d8.rmeta: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs Cargo.toml

crates/pcc/src/lib.rs:
crates/pcc/src/annex.rs:
crates/pcc/src/compile.rs:
crates/pcc/src/inline.rs:
crates/pcc/src/invariants.rs:
crates/pcc/src/layout.rs:
crates/pcc/src/lower.rs:
crates/pcc/src/nt.rs:
crates/pcc/src/opt.rs:
crates/pcc/src/virtualize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
