/root/repo/target/debug/deps/workloads-02dcb05b3e7a7e41.d: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

/root/repo/target/debug/deps/workloads-02dcb05b3e7a7e41: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

crates/workloads/src/lib.rs:
crates/workloads/src/batch.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/server.rs:
