/root/repo/target/debug/deps/fig17_18_scaleout-094f78dfa05446e3.d: crates/bench/benches/fig17_18_scaleout.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_18_scaleout-094f78dfa05446e3.rmeta: crates/bench/benches/fig17_18_scaleout.rs Cargo.toml

crates/bench/benches/fig17_18_scaleout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
