/root/repo/target/debug/deps/reqos-551561a5aa0d9817.d: crates/reqos/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreqos-551561a5aa0d9817.rmeta: crates/reqos/src/lib.rs Cargo.toml

crates/reqos/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
