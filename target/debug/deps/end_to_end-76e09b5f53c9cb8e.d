/root/repo/target/debug/deps/end_to_end-76e09b5f53c9cb8e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-76e09b5f53c9cb8e: tests/end_to_end.rs

tests/end_to_end.rs:
