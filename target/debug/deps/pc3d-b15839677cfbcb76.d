/root/repo/target/debug/deps/pc3d-b15839677cfbcb76.d: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

/root/repo/target/debug/deps/libpc3d-b15839677cfbcb76.rlib: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

/root/repo/target/debug/deps/libpc3d-b15839677cfbcb76.rmeta: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

crates/pc3d/src/lib.rs:
crates/pc3d/src/bisect.rs:
crates/pc3d/src/controller.rs:
crates/pc3d/src/heuristics.rs:
