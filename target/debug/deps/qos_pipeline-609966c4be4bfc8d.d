/root/repo/target/debug/deps/qos_pipeline-609966c4be4bfc8d.d: tests/qos_pipeline.rs

/root/repo/target/debug/deps/qos_pipeline-609966c4be4bfc8d: tests/qos_pipeline.rs

tests/qos_pipeline.rs:
