/root/repo/target/debug/deps/protean_repro-8db4b039c5c8469d.d: src/lib.rs

/root/repo/target/debug/deps/protean_repro-8db4b039c5c8469d: src/lib.rs

src/lib.rs:
