/root/repo/target/debug/deps/fig15_vs_reqos-a0fc7ee8c827a7c0.d: crates/bench/benches/fig15_vs_reqos.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_vs_reqos-a0fc7ee8c827a7c0.rmeta: crates/bench/benches/fig15_vs_reqos.rs Cargo.toml

crates/bench/benches/fig15_vs_reqos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
