/root/repo/target/debug/deps/simos-ed3dd5b80a29d8ce.d: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

/root/repo/target/debug/deps/simos-ed3dd5b80a29d8ce: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

crates/simos/src/lib.rs:
crates/simos/src/loadgen.rs:
crates/simos/src/os.rs:
crates/simos/src/process.rs:
