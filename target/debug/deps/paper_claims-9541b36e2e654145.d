/root/repo/target/debug/deps/paper_claims-9541b36e2e654145.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9541b36e2e654145: tests/paper_claims.rs

tests/paper_claims.rs:
