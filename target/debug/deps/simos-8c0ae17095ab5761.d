/root/repo/target/debug/deps/simos-8c0ae17095ab5761.d: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs Cargo.toml

/root/repo/target/debug/deps/libsimos-8c0ae17095ab5761.rmeta: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs Cargo.toml

crates/simos/src/lib.rs:
crates/simos/src/loadgen.rs:
crates/simos/src/os.rs:
crates/simos/src/process.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
