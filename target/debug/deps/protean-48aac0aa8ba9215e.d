/root/repo/target/debug/deps/protean-48aac0aa8ba9215e.d: crates/protean/src/lib.rs crates/protean/src/cost.rs crates/protean/src/engine.rs crates/protean/src/monitor.rs crates/protean/src/phase.rs crates/protean/src/runtime.rs crates/protean/src/safety.rs crates/protean/src/stress.rs crates/protean/src/systems.rs Cargo.toml

/root/repo/target/debug/deps/libprotean-48aac0aa8ba9215e.rmeta: crates/protean/src/lib.rs crates/protean/src/cost.rs crates/protean/src/engine.rs crates/protean/src/monitor.rs crates/protean/src/phase.rs crates/protean/src/runtime.rs crates/protean/src/safety.rs crates/protean/src/stress.rs crates/protean/src/systems.rs Cargo.toml

crates/protean/src/lib.rs:
crates/protean/src/cost.rs:
crates/protean/src/engine.rs:
crates/protean/src/monitor.rs:
crates/protean/src/phase.rs:
crates/protean/src/runtime.rs:
crates/protean/src/safety.rs:
crates/protean/src/stress.rs:
crates/protean/src/systems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
