/root/repo/target/debug/deps/fig03_nap_sweep-f447d746ab3d26ef.d: crates/bench/benches/fig03_nap_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_nap_sweep-f447d746ab3d26ef.rmeta: crates/bench/benches/fig03_nap_sweep.rs Cargo.toml

crates/bench/benches/fig03_nap_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
