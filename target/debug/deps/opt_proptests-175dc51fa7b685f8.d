/root/repo/target/debug/deps/opt_proptests-175dc51fa7b685f8.d: crates/pcc/tests/opt_proptests.rs

/root/repo/target/debug/deps/opt_proptests-175dc51fa7b685f8: crates/pcc/tests/opt_proptests.rs

crates/pcc/tests/opt_proptests.rs:
