/root/repo/target/debug/deps/pc3d-124a6fde56308487.d: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

/root/repo/target/debug/deps/pc3d-124a6fde56308487: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

crates/pc3d/src/lib.rs:
crates/pc3d/src/bisect.rs:
crates/pc3d/src/controller.rs:
crates/pc3d/src/heuristics.rs:
