/root/repo/target/debug/deps/workload_classes-15c338e27b840c6e.d: tests/workload_classes.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_classes-15c338e27b840c6e.rmeta: tests/workload_classes.rs Cargo.toml

tests/workload_classes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
