/root/repo/target/debug/deps/proptests-be68e960adb7fea3.d: crates/visa/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-be68e960adb7fea3.rmeta: crates/visa/tests/proptests.rs Cargo.toml

crates/visa/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
