/root/repo/target/debug/deps/workloads-640763546789267b.d: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-640763546789267b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/batch.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
