/root/repo/target/debug/deps/protean_repro-f44d3184b39cf298.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprotean_repro-f44d3184b39cf298.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
