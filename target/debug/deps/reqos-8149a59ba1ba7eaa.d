/root/repo/target/debug/deps/reqos-8149a59ba1ba7eaa.d: crates/reqos/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreqos-8149a59ba1ba7eaa.rmeta: crates/reqos/src/lib.rs Cargo.toml

crates/reqos/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
