/root/repo/target/debug/deps/reqos-9db219e22797d23f.d: crates/reqos/src/lib.rs

/root/repo/target/debug/deps/reqos-9db219e22797d23f: crates/reqos/src/lib.rs

crates/reqos/src/lib.rs:
