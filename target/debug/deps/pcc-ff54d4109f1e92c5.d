/root/repo/target/debug/deps/pcc-ff54d4109f1e92c5.d: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

/root/repo/target/debug/deps/libpcc-ff54d4109f1e92c5.rlib: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

/root/repo/target/debug/deps/libpcc-ff54d4109f1e92c5.rmeta: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

crates/pcc/src/lib.rs:
crates/pcc/src/annex.rs:
crates/pcc/src/compile.rs:
crates/pcc/src/inline.rs:
crates/pcc/src/invariants.rs:
crates/pcc/src/layout.rs:
crates/pcc/src/lower.rs:
crates/pcc/src/nt.rs:
crates/pcc/src/opt.rs:
crates/pcc/src/virtualize.rs:
