/root/repo/target/debug/deps/protean-8f49730b0eea1f26.d: crates/protean/src/lib.rs crates/protean/src/cost.rs crates/protean/src/engine.rs crates/protean/src/monitor.rs crates/protean/src/phase.rs crates/protean/src/runtime.rs crates/protean/src/safety.rs crates/protean/src/stress.rs crates/protean/src/systems.rs

/root/repo/target/debug/deps/protean-8f49730b0eea1f26: crates/protean/src/lib.rs crates/protean/src/cost.rs crates/protean/src/engine.rs crates/protean/src/monitor.rs crates/protean/src/phase.rs crates/protean/src/runtime.rs crates/protean/src/safety.rs crates/protean/src/stress.rs crates/protean/src/systems.rs

crates/protean/src/lib.rs:
crates/protean/src/cost.rs:
crates/protean/src/engine.rs:
crates/protean/src/monitor.rs:
crates/protean/src/phase.rs:
crates/protean/src/runtime.rs:
crates/protean/src/safety.rs:
crates/protean/src/stress.rs:
crates/protean/src/systems.rs:
