/root/repo/target/debug/deps/analysis_mutation-a2e792474c0d9c59.d: tests/analysis_mutation.rs

/root/repo/target/debug/deps/analysis_mutation-a2e792474c0d9c59: tests/analysis_mutation.rs

tests/analysis_mutation.rs:
