/root/repo/target/debug/deps/reqos-bb783c6696d498df.d: crates/reqos/src/lib.rs

/root/repo/target/debug/deps/libreqos-bb783c6696d498df.rlib: crates/reqos/src/lib.rs

/root/repo/target/debug/deps/libreqos-bb783c6696d498df.rmeta: crates/reqos/src/lib.rs

crates/reqos/src/lib.rs:
