/root/repo/target/debug/deps/differential-a00e14c84c18fc0a.d: crates/pcc/tests/differential.rs

/root/repo/target/debug/deps/differential-a00e14c84c18fc0a: crates/pcc/tests/differential.rs

crates/pcc/tests/differential.rs:
