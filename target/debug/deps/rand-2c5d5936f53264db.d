/root/repo/target/debug/deps/rand-2c5d5936f53264db.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-2c5d5936f53264db: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
