/root/repo/target/debug/deps/proptest-7ae1690625e9ab89.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7ae1690625e9ab89.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7ae1690625e9ab89.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
