/root/repo/target/debug/deps/visa-9c7c17495e03649a.d: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs Cargo.toml

/root/repo/target/debug/deps/libvisa-9c7c17495e03649a.rmeta: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs Cargo.toml

crates/visa/src/lib.rs:
crates/visa/src/asm.rs:
crates/visa/src/disasm.rs:
crates/visa/src/encode.rs:
crates/visa/src/image.rs:
crates/visa/src/op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
