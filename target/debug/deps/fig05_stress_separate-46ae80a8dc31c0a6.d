/root/repo/target/debug/deps/fig05_stress_separate-46ae80a8dc31c0a6.d: crates/bench/benches/fig05_stress_separate.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_stress_separate-46ae80a8dc31c0a6.rmeta: crates/bench/benches/fig05_stress_separate.rs Cargo.toml

crates/bench/benches/fig05_stress_separate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
