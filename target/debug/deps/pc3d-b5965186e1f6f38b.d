/root/repo/target/debug/deps/pc3d-b5965186e1f6f38b.d: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs Cargo.toml

/root/repo/target/debug/deps/libpc3d-b5965186e1f6f38b.rmeta: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs Cargo.toml

crates/pc3d/src/lib.rs:
crates/pc3d/src/bisect.rs:
crates/pc3d/src/controller.rs:
crates/pc3d/src/heuristics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
