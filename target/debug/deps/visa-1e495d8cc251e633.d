/root/repo/target/debug/deps/visa-1e495d8cc251e633.d: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/debug/deps/visa-1e495d8cc251e633: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

crates/visa/src/lib.rs:
crates/visa/src/asm.rs:
crates/visa/src/disasm.rs:
crates/visa/src/encode.rs:
crates/visa/src/image.rs:
crates/visa/src/op.rs:
