/root/repo/target/debug/deps/simos-4914e7ffec1e3ebe.d: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

/root/repo/target/debug/deps/libsimos-4914e7ffec1e3ebe.rlib: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

/root/repo/target/debug/deps/libsimos-4914e7ffec1e3ebe.rmeta: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

crates/simos/src/lib.rs:
crates/simos/src/loadgen.rs:
crates/simos/src/os.rs:
crates/simos/src/process.rs:
