/root/repo/target/debug/deps/analysis_mutation-3a1b15db5b86c2ac.d: tests/analysis_mutation.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_mutation-3a1b15db5b86c2ac.rmeta: tests/analysis_mutation.rs Cargo.toml

tests/analysis_mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
