/root/repo/target/debug/deps/opt_proptests-5cf285348e5fbca2.d: crates/pcc/tests/opt_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libopt_proptests-5cf285348e5fbca2.rmeta: crates/pcc/tests/opt_proptests.rs Cargo.toml

crates/pcc/tests/opt_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
