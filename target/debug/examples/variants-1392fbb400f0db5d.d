/root/repo/target/debug/examples/variants-1392fbb400f0db5d.d: examples/variants.rs Cargo.toml

/root/repo/target/debug/examples/libvariants-1392fbb400f0db5d.rmeta: examples/variants.rs Cargo.toml

examples/variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
