/root/repo/target/debug/examples/colocation-8611131f221d503b.d: examples/colocation.rs Cargo.toml

/root/repo/target/debug/examples/libcolocation-8611131f221d503b.rmeta: examples/colocation.rs Cargo.toml

examples/colocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
