/root/repo/target/debug/examples/quickstart-f5cef537bd2a886d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f5cef537bd2a886d: examples/quickstart.rs

examples/quickstart.rs:
