/root/repo/target/debug/examples/variants-70eed0245e6ad34f.d: examples/variants.rs

/root/repo/target/debug/examples/variants-70eed0245e6ad34f: examples/variants.rs

examples/variants.rs:
