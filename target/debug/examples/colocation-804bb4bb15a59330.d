/root/repo/target/debug/examples/colocation-804bb4bb15a59330.d: examples/colocation.rs

/root/repo/target/debug/examples/colocation-804bb4bb15a59330: examples/colocation.rs

examples/colocation.rs:
