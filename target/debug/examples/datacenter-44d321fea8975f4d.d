/root/repo/target/debug/examples/datacenter-44d321fea8975f4d.d: examples/datacenter.rs

/root/repo/target/debug/examples/datacenter-44d321fea8975f4d: examples/datacenter.rs

examples/datacenter.rs:
