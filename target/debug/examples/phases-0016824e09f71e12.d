/root/repo/target/debug/examples/phases-0016824e09f71e12.d: examples/phases.rs

/root/repo/target/debug/examples/phases-0016824e09f71e12: examples/phases.rs

examples/phases.rs:
