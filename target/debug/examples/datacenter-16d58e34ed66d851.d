/root/repo/target/debug/examples/datacenter-16d58e34ed66d851.d: examples/datacenter.rs Cargo.toml

/root/repo/target/debug/examples/libdatacenter-16d58e34ed66d851.rmeta: examples/datacenter.rs Cargo.toml

examples/datacenter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
