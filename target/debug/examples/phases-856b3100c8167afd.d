/root/repo/target/debug/examples/phases-856b3100c8167afd.d: examples/phases.rs Cargo.toml

/root/repo/target/debug/examples/libphases-856b3100c8167afd.rmeta: examples/phases.rs Cargo.toml

examples/phases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
