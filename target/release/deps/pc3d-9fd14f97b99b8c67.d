/root/repo/target/release/deps/pc3d-9fd14f97b99b8c67.d: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

/root/repo/target/release/deps/libpc3d-9fd14f97b99b8c67.rlib: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

/root/repo/target/release/deps/libpc3d-9fd14f97b99b8c67.rmeta: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

crates/pc3d/src/lib.rs:
crates/pc3d/src/bisect.rs:
crates/pc3d/src/controller.rs:
crates/pc3d/src/heuristics.rs:
