/root/repo/target/release/deps/fig04_overhead-b4e0101d133815c1.d: crates/bench/benches/fig04_overhead.rs

/root/repo/target/release/deps/fig04_overhead-b4e0101d133815c1: crates/bench/benches/fig04_overhead.rs

crates/bench/benches/fig04_overhead.rs:
