/root/repo/target/release/deps/visa-c79dc2d03e05af0e.d: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/release/deps/libvisa-c79dc2d03e05af0e.rlib: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/release/deps/libvisa-c79dc2d03e05af0e.rmeta: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

crates/visa/src/lib.rs:
crates/visa/src/asm.rs:
crates/visa/src/disasm.rs:
crates/visa/src/encode.rs:
crates/visa/src/image.rs:
crates/visa/src/op.rs:
