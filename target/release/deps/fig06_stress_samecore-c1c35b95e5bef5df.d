/root/repo/target/release/deps/fig06_stress_samecore-c1c35b95e5bef5df.d: crates/bench/benches/fig06_stress_samecore.rs

/root/repo/target/release/deps/fig06_stress_samecore-c1c35b95e5bef5df: crates/bench/benches/fig06_stress_samecore.rs

crates/bench/benches/fig06_stress_samecore.rs:
