/root/repo/target/release/deps/protean_bench-126d4f4ec70c95c7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/protean_bench-126d4f4ec70c95c7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
