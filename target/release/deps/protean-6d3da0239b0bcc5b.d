/root/repo/target/release/deps/protean-6d3da0239b0bcc5b.d: crates/protean/src/lib.rs crates/protean/src/cost.rs crates/protean/src/engine.rs crates/protean/src/monitor.rs crates/protean/src/phase.rs crates/protean/src/runtime.rs crates/protean/src/safety.rs crates/protean/src/stress.rs crates/protean/src/systems.rs

/root/repo/target/release/deps/protean-6d3da0239b0bcc5b: crates/protean/src/lib.rs crates/protean/src/cost.rs crates/protean/src/engine.rs crates/protean/src/monitor.rs crates/protean/src/phase.rs crates/protean/src/runtime.rs crates/protean/src/safety.rs crates/protean/src/stress.rs crates/protean/src/systems.rs

crates/protean/src/lib.rs:
crates/protean/src/cost.rs:
crates/protean/src/engine.rs:
crates/protean/src/monitor.rs:
crates/protean/src/phase.rs:
crates/protean/src/runtime.rs:
crates/protean/src/safety.rs:
crates/protean/src/stress.rs:
crates/protean/src/systems.rs:
