/root/repo/target/release/deps/pir-9585cde4cde309f0.d: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/effects.rs crates/pir/src/encode.rs crates/pir/src/equiv.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs

/root/repo/target/release/deps/libpir-9585cde4cde309f0.rlib: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/effects.rs crates/pir/src/encode.rs crates/pir/src/equiv.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs

/root/repo/target/release/deps/libpir-9585cde4cde309f0.rmeta: crates/pir/src/lib.rs crates/pir/src/analysis.rs crates/pir/src/builder.rs crates/pir/src/compress.rs crates/pir/src/dataflow.rs crates/pir/src/effects.rs crates/pir/src/encode.rs crates/pir/src/equiv.rs crates/pir/src/ids.rs crates/pir/src/inst.rs crates/pir/src/interp.rs crates/pir/src/lint.rs crates/pir/src/loops.rs crates/pir/src/module.rs crates/pir/src/print.rs crates/pir/src/verify.rs

crates/pir/src/lib.rs:
crates/pir/src/analysis.rs:
crates/pir/src/builder.rs:
crates/pir/src/compress.rs:
crates/pir/src/dataflow.rs:
crates/pir/src/effects.rs:
crates/pir/src/encode.rs:
crates/pir/src/equiv.rs:
crates/pir/src/ids.rs:
crates/pir/src/inst.rs:
crates/pir/src/interp.rs:
crates/pir/src/lint.rs:
crates/pir/src/loops.rs:
crates/pir/src/module.rs:
crates/pir/src/print.rs:
crates/pir/src/verify.rs:
