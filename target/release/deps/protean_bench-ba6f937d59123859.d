/root/repo/target/release/deps/protean_bench-ba6f937d59123859.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprotean_bench-ba6f937d59123859.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprotean_bench-ba6f937d59123859.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
