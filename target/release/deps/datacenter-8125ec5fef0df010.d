/root/repo/target/release/deps/datacenter-8125ec5fef0df010.d: crates/datacenter/src/lib.rs

/root/repo/target/release/deps/datacenter-8125ec5fef0df010: crates/datacenter/src/lib.rs

crates/datacenter/src/lib.rs:
