/root/repo/target/release/deps/simos-2b5d23e973150387.d: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

/root/repo/target/release/deps/libsimos-2b5d23e973150387.rlib: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

/root/repo/target/release/deps/libsimos-2b5d23e973150387.rmeta: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

crates/simos/src/lib.rs:
crates/simos/src/loadgen.rs:
crates/simos/src/os.rs:
crates/simos/src/process.rs:
