/root/repo/target/release/deps/reqos-50bcd3315a2757ee.d: crates/reqos/src/lib.rs

/root/repo/target/release/deps/libreqos-50bcd3315a2757ee.rlib: crates/reqos/src/lib.rs

/root/repo/target/release/deps/libreqos-50bcd3315a2757ee.rmeta: crates/reqos/src/lib.rs

crates/reqos/src/lib.rs:
