/root/repo/target/release/deps/fig05_stress_separate-a1e8bffe3a08b5c4.d: crates/bench/benches/fig05_stress_separate.rs

/root/repo/target/release/deps/fig05_stress_separate-a1e8bffe3a08b5c4: crates/bench/benches/fig05_stress_separate.rs

crates/bench/benches/fig05_stress_separate.rs:
