/root/repo/target/release/deps/fig15_vs_reqos-117e4778a63a5c6a.d: crates/bench/benches/fig15_vs_reqos.rs

/root/repo/target/release/deps/fig15_vs_reqos-117e4778a63a5c6a: crates/bench/benches/fig15_vs_reqos.rs

crates/bench/benches/fig15_vs_reqos.rs:
