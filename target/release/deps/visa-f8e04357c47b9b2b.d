/root/repo/target/release/deps/visa-f8e04357c47b9b2b.d: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

/root/repo/target/release/deps/visa-f8e04357c47b9b2b: crates/visa/src/lib.rs crates/visa/src/asm.rs crates/visa/src/disasm.rs crates/visa/src/encode.rs crates/visa/src/image.rs crates/visa/src/op.rs

crates/visa/src/lib.rs:
crates/visa/src/asm.rs:
crates/visa/src/disasm.rs:
crates/visa/src/encode.rs:
crates/visa/src/image.rs:
crates/visa/src/op.rs:
