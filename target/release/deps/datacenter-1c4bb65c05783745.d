/root/repo/target/release/deps/datacenter-1c4bb65c05783745.d: crates/datacenter/src/lib.rs

/root/repo/target/release/deps/libdatacenter-1c4bb65c05783745.rlib: crates/datacenter/src/lib.rs

/root/repo/target/release/deps/libdatacenter-1c4bb65c05783745.rmeta: crates/datacenter/src/lib.rs

crates/datacenter/src/lib.rs:
