/root/repo/target/release/deps/workloads-5759aff2500e32fa.d: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

/root/repo/target/release/deps/libworkloads-5759aff2500e32fa.rlib: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

/root/repo/target/release/deps/libworkloads-5759aff2500e32fa.rmeta: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

crates/workloads/src/lib.rs:
crates/workloads/src/batch.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/server.rs:
