/root/repo/target/release/deps/workloads-f47ff93c2fb924c5.d: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

/root/repo/target/release/deps/workloads-f47ff93c2fb924c5: crates/workloads/src/lib.rs crates/workloads/src/batch.rs crates/workloads/src/catalog.rs crates/workloads/src/server.rs

crates/workloads/src/lib.rs:
crates/workloads/src/batch.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/server.rs:
