/root/repo/target/release/deps/machine-f8d531dfed5394c2.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

/root/repo/target/release/deps/libmachine-f8d531dfed5394c2.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

/root/repo/target/release/deps/libmachine-f8d531dfed5394c2.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/config.rs:
crates/machine/src/counters.rs:
crates/machine/src/exec.rs:
crates/machine/src/hierarchy.rs:
