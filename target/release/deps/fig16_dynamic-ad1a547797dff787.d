/root/repo/target/release/deps/fig16_dynamic-ad1a547797dff787.d: crates/bench/benches/fig16_dynamic.rs

/root/repo/target/release/deps/fig16_dynamic-ad1a547797dff787: crates/bench/benches/fig16_dynamic.rs

crates/bench/benches/fig16_dynamic.rs:
