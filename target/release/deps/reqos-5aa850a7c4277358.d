/root/repo/target/release/deps/reqos-5aa850a7c4277358.d: crates/reqos/src/lib.rs

/root/repo/target/release/deps/reqos-5aa850a7c4277358: crates/reqos/src/lib.rs

crates/reqos/src/lib.rs:
