/root/repo/target/release/deps/proptest-cf25a83f7c9b17b1.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-cf25a83f7c9b17b1: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
