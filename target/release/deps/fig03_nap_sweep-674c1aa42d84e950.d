/root/repo/target/release/deps/fig03_nap_sweep-674c1aa42d84e950.d: crates/bench/benches/fig03_nap_sweep.rs

/root/repo/target/release/deps/fig03_nap_sweep-674c1aa42d84e950: crates/bench/benches/fig03_nap_sweep.rs

crates/bench/benches/fig03_nap_sweep.rs:
