/root/repo/target/release/deps/pc3d-9d9f0584244e3b0f.d: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

/root/repo/target/release/deps/pc3d-9d9f0584244e3b0f: crates/pc3d/src/lib.rs crates/pc3d/src/bisect.rs crates/pc3d/src/controller.rs crates/pc3d/src/heuristics.rs

crates/pc3d/src/lib.rs:
crates/pc3d/src/bisect.rs:
crates/pc3d/src/controller.rs:
crates/pc3d/src/heuristics.rs:
