/root/repo/target/release/deps/protean_repro-c12b8e92f9b1b00e.d: src/lib.rs

/root/repo/target/release/deps/protean_repro-c12b8e92f9b1b00e: src/lib.rs

src/lib.rs:
