/root/repo/target/release/deps/pcc-01f7c602703d11c3.d: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

/root/repo/target/release/deps/libpcc-01f7c602703d11c3.rlib: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

/root/repo/target/release/deps/libpcc-01f7c602703d11c3.rmeta: crates/pcc/src/lib.rs crates/pcc/src/annex.rs crates/pcc/src/compile.rs crates/pcc/src/inline.rs crates/pcc/src/invariants.rs crates/pcc/src/layout.rs crates/pcc/src/lower.rs crates/pcc/src/nt.rs crates/pcc/src/opt.rs crates/pcc/src/virtualize.rs

crates/pcc/src/lib.rs:
crates/pcc/src/annex.rs:
crates/pcc/src/compile.rs:
crates/pcc/src/inline.rs:
crates/pcc/src/invariants.rs:
crates/pcc/src/layout.rs:
crates/pcc/src/lower.rs:
crates/pcc/src/nt.rs:
crates/pcc/src/opt.rs:
crates/pcc/src/virtualize.rs:
