/root/repo/target/release/deps/fig02_variants-af9c70784cf10b60.d: crates/bench/benches/fig02_variants.rs

/root/repo/target/release/deps/fig02_variants-af9c70784cf10b60: crates/bench/benches/fig02_variants.rs

crates/bench/benches/fig02_variants.rs:
