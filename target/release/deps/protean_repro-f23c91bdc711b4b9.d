/root/repo/target/release/deps/protean_repro-f23c91bdc711b4b9.d: src/lib.rs

/root/repo/target/release/deps/libprotean_repro-f23c91bdc711b4b9.rlib: src/lib.rs

/root/repo/target/release/deps/libprotean_repro-f23c91bdc711b4b9.rmeta: src/lib.rs

src/lib.rs:
