/root/repo/target/release/deps/fig08_heuristics-55d7f85a8ce10b34.d: crates/bench/benches/fig08_heuristics.rs

/root/repo/target/release/deps/fig08_heuristics-55d7f85a8ce10b34: crates/bench/benches/fig08_heuristics.rs

crates/bench/benches/fig08_heuristics.rs:
