/root/repo/target/release/deps/fig17_18_scaleout-a1d3ae4ac3ce6fa1.d: crates/bench/benches/fig17_18_scaleout.rs

/root/repo/target/release/deps/fig17_18_scaleout-a1d3ae4ac3ce6fa1: crates/bench/benches/fig17_18_scaleout.rs

crates/bench/benches/fig17_18_scaleout.rs:
