/root/repo/target/release/deps/ablations-a93e8422175653aa.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-a93e8422175653aa: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
