/root/repo/target/release/deps/fig07_runtime_cycles-153d57bc0cb9f11f.d: crates/bench/benches/fig07_runtime_cycles.rs

/root/repo/target/release/deps/fig07_runtime_cycles-153d57bc0cb9f11f: crates/bench/benches/fig07_runtime_cycles.rs

crates/bench/benches/fig07_runtime_cycles.rs:
