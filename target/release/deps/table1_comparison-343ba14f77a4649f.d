/root/repo/target/release/deps/table1_comparison-343ba14f77a4649f.d: crates/bench/benches/table1_comparison.rs

/root/repo/target/release/deps/table1_comparison-343ba14f77a4649f: crates/bench/benches/table1_comparison.rs

crates/bench/benches/table1_comparison.rs:
