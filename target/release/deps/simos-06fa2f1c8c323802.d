/root/repo/target/release/deps/simos-06fa2f1c8c323802.d: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

/root/repo/target/release/deps/simos-06fa2f1c8c323802: crates/simos/src/lib.rs crates/simos/src/loadgen.rs crates/simos/src/os.rs crates/simos/src/process.rs

crates/simos/src/lib.rs:
crates/simos/src/loadgen.rs:
crates/simos/src/os.rs:
crates/simos/src/process.rs:
