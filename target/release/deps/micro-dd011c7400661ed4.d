/root/repo/target/release/deps/micro-dd011c7400661ed4.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-dd011c7400661ed4: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
