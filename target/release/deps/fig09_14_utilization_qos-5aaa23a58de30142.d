/root/repo/target/release/deps/fig09_14_utilization_qos-5aaa23a58de30142.d: crates/bench/benches/fig09_14_utilization_qos.rs

/root/repo/target/release/deps/fig09_14_utilization_qos-5aaa23a58de30142: crates/bench/benches/fig09_14_utilization_qos.rs

crates/bench/benches/fig09_14_utilization_qos.rs:
