/root/repo/target/release/deps/machine-db7b8b78ba968385.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

/root/repo/target/release/deps/machine-db7b8b78ba968385: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/config.rs crates/machine/src/counters.rs crates/machine/src/exec.rs crates/machine/src/hierarchy.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/config.rs:
crates/machine/src/counters.rs:
crates/machine/src/exec.rs:
crates/machine/src/hierarchy.rs:
