//! Figures 17–18 derived from simulated event streams.
//!
//! The analytic model in [`crate::analytic`] answers the scale-out
//! question from three measured scalars per pair. This module answers it
//! from first principles instead: it simulates the co-located warehouse
//! (every server hosting its LS service plus a pinned batch stream under
//! PC3D, diurnal offered load) and the segregated one (the same LS
//! fleet alone, with the consolidating balancer parking idle servers),
//! then sizes the batch-only fleet the segregated datacenter would need
//! to match the co-located one's batch throughput — using solo batch
//! rates calibrated on the same cycle-accurate server model. Figure 17
//! is the extra-server count; Figure 18 is the energy-efficiency ratio,
//! with both datacenters' energies integrated from the simulated
//! per-server busy fractions rather than assumed.

use std::collections::BTreeMap;

use crate::analytic::{PowerModel, ScaleOutResult, LS_APPS, MIXES};
use crate::cluster::{BatchMode, Cluster, ClusterConfig, ClusterResult, GroupSpec, SliceExec};
use crate::qps::QpsShape;
use crate::server::{compile_app, server_machine, server_os_config};
use simos::Os;

/// Sizing knobs for the scale-out experiment.
#[derive(Clone, Debug)]
pub struct ScaleOutScenario {
    /// Servers per (LS, mix) group; 9 groups total.
    pub servers_per_group: usize,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Master seed.
    pub seed: u64,
    /// Peak group load as a fraction of the group's aggregate solo LS
    /// capacity.
    pub peak_load: f64,
    /// Trough load as a fraction of aggregate capacity.
    pub trough_load: f64,
}

impl Default for ScaleOutScenario {
    fn default() -> Self {
        ScaleOutScenario {
            servers_per_group: 120,
            duration_secs: 120.0,
            seed: 42,
            peak_load: 0.6,
            trough_load: 0.15,
        }
    }
}

impl ScaleOutScenario {
    /// A small configuration for tests and quick checks.
    pub fn quick() -> Self {
        ScaleOutScenario {
            servers_per_group: 4,
            duration_secs: 30.0,
            ..ScaleOutScenario::default()
        }
    }
}

/// Solo calibration of one batch application on the server machine.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SoloBatchRate {
    /// Branches per simulated second, running alone without a
    /// controller.
    pub branches_per_sec: f64,
    /// Whole-server busy fraction while doing so (one core flat out).
    pub busy_frac: f64,
}

/// Measures the solo throughput of a batch app: the rate a dedicated
/// batch-only server (no co-location, no PC3D) retires branches at.
pub fn solo_batch_rate(app: &str) -> SoloBatchRate {
    let image = compile_app(app, true);
    let mut os = Os::new(server_os_config());
    let pid = os.spawn(&image, 0);
    let secs = 4.0;
    os.advance_seconds(secs);
    let c = os.proc(pid).counters();
    let mc = server_machine();
    SoloBatchRate {
        branches_per_sec: c.branches as f64 / secs,
        busy_frac: c.cycles as f64 / (os.now() as f64 * mc.cores as f64),
    }
}

/// One (LS service, mix) row of Figures 17–18.
#[derive(Clone, Debug)]
pub struct GroupRow {
    /// Group display name.
    pub name: String,
    /// LS service.
    pub ls_app: &'static str,
    /// Batch mix.
    pub mix_name: &'static str,
    /// Simulated servers in the group.
    pub servers: usize,
    /// Queries the co-located group served.
    pub queries: i64,
    /// Batch branches the co-located group retired under PC3D.
    pub batch_branches: u64,
    /// PC3D windows that missed the QoS target in the co-located run.
    pub qos_violations: u64,
    /// The scale-out verdict, same type the analytic model emits.
    pub result: ScaleOutResult,
    /// Figure 17's y-axis: extra servers scaled to a 10k-machine
    /// deployment of this group.
    pub extra_servers_10k: f64,
}

/// The full simulated Fig. 17–18 derivation.
#[derive(Clone, Debug)]
pub struct Fig1718 {
    /// Per-(LS, mix) rows, in `LS_APPS` × `MIXES` order.
    pub rows: Vec<GroupRow>,
    /// Whole-fleet totals (summed servers and powers).
    pub totals: ScaleOutResult,
    /// The co-located cluster's simulation outcome.
    pub colo: ClusterResult,
    /// The LS-only cluster's simulation outcome.
    pub ls_only: ClusterResult,
}

/// Builds the nine-group cluster config shared by both datacenters.
/// `capacity` maps LS app → measured solo queries/sec.
fn fleet_config(
    s: &ScaleOutScenario,
    capacity: &BTreeMap<&'static str, f64>,
    batch: BatchMode,
    consolidate: bool,
) -> ClusterConfig {
    let mut groups = Vec::new();
    let n_groups = (LS_APPS.len() * MIXES.len()) as f64;
    for (li, &ls_app) in LS_APPS.iter().enumerate() {
        for (mi, &mix) in MIXES.iter().enumerate() {
            let gi = li * MIXES.len() + mi;
            let aggregate = capacity[ls_app] * s.servers_per_group as f64;
            groups.push(GroupSpec {
                name: format!("{ls_app}/{}", mix.name),
                ls_app,
                mix,
                servers: s.servers_per_group,
                shape: QpsShape::diurnal(
                    s.duration_secs,
                    aggregate * s.peak_load,
                    aggregate * s.trough_load,
                    1.0,
                    gi as f64 / n_groups,
                    1.0,
                ),
            });
        }
    }
    ClusterConfig {
        groups,
        batch,
        duration_secs: s.duration_secs,
        consolidate,
        seed: s.seed,
        ..ClusterConfig::default()
    }
}

/// Runs the full experiment: the co-located fleet, the LS-only fleet,
/// and the solo batch calibrations, then derives Figures 17 and 18.
pub fn fig17_18(s: &ScaleOutScenario, exec: &SliceExec) -> Fig1718 {
    // Calibrate LS capacity once (shared by both fleets' shapes).
    let mut capacity = BTreeMap::new();
    for &app in &LS_APPS {
        let probe = Cluster::new(ClusterConfig {
            groups: vec![GroupSpec {
                name: app.to_string(),
                ls_app: app,
                mix: MIXES[0],
                servers: 1,
                shape: QpsShape::constant(0.0),
            }],
            duration_secs: 1.0,
            ..ClusterConfig::default()
        });
        capacity.insert(app, probe.capacity(app).expect("calibrated"));
    }
    // Calibrate each batch app's dedicated-server rate.
    let mut solo: BTreeMap<&'static str, SoloBatchRate> = BTreeMap::new();
    for mix in &MIXES {
        for &app in &mix.batch_apps {
            solo.entry(app).or_insert_with(|| solo_batch_rate(app));
        }
    }

    let colo = Cluster::new(fleet_config(s, &capacity, BatchMode::Pinned, false)).run_with(exec);
    let ls_only = Cluster::new(fleet_config(s, &capacity, BatchMode::None, true)).run_with(exec);

    let power = PowerModel::default();
    let mut rows = Vec::new();
    let mut totals = ScaleOutResult {
        servers_pc3d: 0.0,
        servers_no_colo: 0.0,
        power_pc3d: 0.0,
        power_no_colo: 0.0,
        efficiency_ratio: 0.0,
    };
    for (cg, lg) in colo.groups.iter().zip(&ls_only.groups) {
        let mix = crate::analytic::mix_by_name(cg.mix_name).expect("known mix");
        let mean_rate = mix
            .batch_apps
            .iter()
            .map(|a| solo[a].branches_per_sec)
            .sum::<f64>()
            / mix.batch_apps.len() as f64;
        let mean_solo_busy = mix
            .batch_apps
            .iter()
            .map(|a| solo[a].busy_frac)
            .sum::<f64>()
            / mix.batch_apps.len() as f64;
        // Batch-only servers the segregated fleet needs to match the
        // co-located fleet's batch throughput (branches/sec, normalized
        // by the span the servers actually simulated).
        let extra = cg.batch_branches_per_sec() / mean_rate;
        let servers = cg.servers as f64;
        let power_pc3d = cg.mean_power_watts();
        let power_no_colo = lg.mean_power_watts() + extra * power.power(mean_solo_busy);
        let result = ScaleOutResult {
            servers_pc3d: servers,
            servers_no_colo: servers + extra,
            power_pc3d,
            power_no_colo,
            efficiency_ratio: power_no_colo / power_pc3d,
        };
        totals.servers_pc3d += result.servers_pc3d;
        totals.servers_no_colo += result.servers_no_colo;
        totals.power_pc3d += result.power_pc3d;
        totals.power_no_colo += result.power_no_colo;
        rows.push(GroupRow {
            name: cg.name.clone(),
            ls_app: cg.ls_app,
            mix_name: cg.mix_name,
            servers: cg.servers,
            queries: cg.queries,
            batch_branches: cg.batch_branches,
            qos_violations: cg.qos_violations,
            extra_servers_10k: 10_000.0 * extra / servers,
            result,
        });
    }
    totals.efficiency_ratio = totals.power_no_colo / totals.power_pc3d;
    Fig1718 {
        rows,
        totals,
        colo,
        ls_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{analyze, PairMeasurement};
    use crate::cluster::serial_exec;
    use crate::server::server_machine;

    /// Satellite check: at steady uniform load, the simulation converges
    /// to the analytic model's prediction. We run a small co-located
    /// cluster at constant load, extract the three scalars the analytic
    /// model wants from the simulated event streams, and require the two
    /// pipelines to agree on server count exactly and on the efficiency
    /// ratio within tolerance.
    #[test]
    fn steady_load_converges_to_analytic() {
        let servers = 2;
        let secs = 30.0;
        let mix = MIXES[0];
        let ls = LS_APPS[0];
        let mk = |batch, consolidate| ClusterConfig {
            groups: vec![GroupSpec {
                name: format!("{ls}/{}", mix.name),
                ls_app: ls,
                mix,
                servers,
                shape: QpsShape::constant(30.0),
            }],
            batch,
            duration_secs: secs,
            consolidate,
            seed: 7,
            ..ClusterConfig::default()
        };
        let colo = Cluster::new(mk(BatchMode::Pinned, false)).run_with(&serial_exec());
        let ls_only = Cluster::new(mk(BatchMode::None, false)).run_with(&serial_exec());
        let cg = &colo.groups[0];
        let lg = &ls_only.groups[0];
        assert!(cg.queries > 500, "colo served load: {}", cg.queries);
        assert!(cg.batch_branches > 0, "batch made progress under PC3D");

        // Scalars for the analytic model, measured from the simulation.
        let rates: Vec<f64> = mix
            .batch_apps
            .iter()
            .map(|a| solo_batch_rate(a).branches_per_sec)
            .collect();
        let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        let batch_util = cg.batch_branches_per_sec() / (mean_rate * servers as f64);
        assert!(
            batch_util > 0.1 && batch_util < 1.2,
            "plausible relative batch throughput: {batch_util}"
        );
        let cores = server_machine().cores;
        let ls_core_util = lg.mean_busy_frac() * cores as f64;
        let batch_core_util = (cg.mean_busy_frac() - lg.mean_busy_frac()).max(0.0) * cores as f64;
        let pair = PairMeasurement {
            batch_utilization: batch_util,
            ls_core_util,
            batch_core_util,
        };
        let predicted = analyze(servers as f64, cores, &[pair], PowerModel::default());

        // Simulated pipeline, same derivation as fig17_18.
        let extra = cg.batch_branches_per_sec() / mean_rate;
        let sim_servers_no_colo = servers as f64 + extra;
        assert!(
            (sim_servers_no_colo - predicted.servers_no_colo).abs() < 1e-9,
            "server sizing must agree exactly: sim {sim_servers_no_colo} vs analytic {}",
            predicted.servers_no_colo
        );
        let power = PowerModel::default();
        let mean_solo_busy = mix
            .batch_apps
            .iter()
            .map(|a| solo_batch_rate(a).busy_frac)
            .sum::<f64>()
            / mix.batch_apps.len() as f64;
        let sim_ratio =
            (lg.mean_power_watts() + extra * power.power(mean_solo_busy)) / cg.mean_power_watts();
        assert!(
            (sim_ratio / predicted.efficiency_ratio - 1.0).abs() < 0.15,
            "efficiency ratios converge: sim {sim_ratio} vs analytic {}",
            predicted.efficiency_ratio
        );
        // And the co-located fleet should win, as in Fig. 18.
        assert!(sim_ratio > 1.0, "consolidation wins: {sim_ratio}");
    }
}
