//! One simulated server: a lazily instantiated cycle-accurate box.
//!
//! A [`Server`] starts as a bare record — no machine, no caches, no
//! processes. The first time the cluster activates it, it instantiates a
//! [`simos::Os`] cycle-box (the expensive part), spawns its
//! latency-sensitive service and, when co-located, a batch host under a
//! per-server PC3D controller. While parked, the box is retained but
//! never stepped; on reactivation (or at end of run) the gap is
//! reconciled with [`Os::skip_idle`], whose accounting is bit-identical
//! to stepping through the idle span — so a lazily parked server is
//! indistinguishable from an always-active one.
//!
//! Energy accounting integrates the linear power model over the
//! server's own measured busy fraction; because the model is linear the
//! integral collapses to a pure function of the exact cycle totals, so
//! per-server results are independent both of how the cluster fans
//! servers out across host threads and of how idle time was partitioned
//! into spans.

use machine::{CacheConfig, ExecStatus, MachineConfig};
use pc3d::{Pc3d, Pc3dConfig};
use protean::{Runtime, RuntimeConfig};
use simos::{LoadSchedule, Os, OsConfig, Pid};
use visa::Image;

use crate::analytic::PowerModel;
use crate::event::Cycles;

/// The scaled-down server machine used for cluster members: the paper's
/// quad-core shape with caches shrunk a further 2x and a 4x slower time
/// base, so a thousand-server cluster fits in one address space while
/// each query still exercises real cache contention.
pub fn server_machine() -> MachineConfig {
    let mut mc = MachineConfig::scaled();
    mc.cycles_per_second = 250_000;
    mc.l1 = CacheConfig {
        sets: 8,
        ways: 2,
        hit_latency: 0,
    };
    mc.l2 = CacheConfig {
        sets: 16,
        ways: 4,
        hit_latency: 0,
    };
    mc.l3 = CacheConfig {
        sets: 32,
        ways: 8,
        hit_latency: 0,
    };
    mc
}

/// The OS configuration wrapping [`server_machine`].
pub fn server_os_config() -> OsConfig {
    OsConfig {
        machine: server_machine(),
        quantum: 1_000,
        nap_period: 50_000,
    }
}

/// Compiles a catalog workload for the server machine. `protean`
/// selects the transformable compile (required for batch hosts that
/// attach a runtime); plain images are for LS services and solo
/// calibration boxes.
///
/// # Panics
///
/// Panics on an unknown workload name or a compile failure.
pub fn compile_app(name: &str, protean: bool) -> Image {
    let mc = server_machine();
    let llc_lines = mc.llc_bytes() / mc.line_bytes;
    let opts = if protean {
        pcc::Options::protean()
    } else {
        pcc::Options::plain()
    };
    let module = workloads::catalog::build(name, llc_lines)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    pcc::Compiler::new(opts)
        .compile(&module)
        .expect("compile workload")
        .image
}

/// Per-server static configuration, shared by every server in a group.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// The latency-sensitive service this server runs.
    pub ls_app: &'static str,
    /// PC3D controller configuration for co-located batch work.
    pub pc3d: Pc3dConfig,
    /// Linear power model integrated into energy.
    pub power: PowerModel,
    /// Branches per accounting "job unit" for pinned batch streams.
    pub job_branches: u64,
}

/// A harvested batch slot's contribution after the host was killed.
#[derive(Copy, Clone, Debug, Default)]
struct Harvest {
    branches: u64,
}

/// The live batch co-runner on a server.
struct BatchSlot {
    app: String,
    pid: Pid,
    ctl: Pc3d,
    /// Branch count at job start (Jobs mode) for quota tracking.
    start_branches: u64,
    /// Branch quota that completes the current job; `None` for a pinned
    /// stream (completions are counted in `job_branches` units).
    quota: Option<u64>,
}

/// The lazily created cycle-accurate part of a server.
struct CycleBox {
    os: Os,
    ls: Pid,
    batch: Option<BatchSlot>,
    harvested: Harvest,
}

impl CycleBox {
    /// Total busy cycles across all processes plus runtime work.
    fn busy_cycles(&self) -> u64 {
        let procs: u64 = self.os.procs().iter().map(|p| p.counters().cycles).sum();
        procs + self.os.runtime_consumed_total()
    }

    /// Cumulative batch branches, including killed hosts.
    fn batch_branches(&self) -> u64 {
        let live = self
            .batch
            .as_ref()
            .map_or(0, |b| self.os.proc(b.pid).counters().branches);
        live + self.harvested.branches
    }
}

/// Cumulative per-server accounting, all in simulated units.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Queries served by the LS service.
    pub queries: i64,
    /// Cumulative busy cycles (all cores, including runtime work).
    pub busy_cycles: u64,
    /// Cycles the server existed for (box time plus reconciled gaps).
    pub lifetime_cycles: u64,
    /// Energy under the linear power model, joules (set by
    /// [`Server::finalize`]).
    pub energy_joules: f64,
    /// Batch branches executed (all hosts ever resident).
    pub batch_branches: u64,
    /// Batch job completions (quota crossings).
    pub jobs_completed: u64,
    /// Times the server went from parked to active.
    pub activations: u64,
    /// Times the server was parked.
    pub parks: u64,
    /// Idle cycles reconciled via `skip_idle` instead of stepping.
    pub idle_skipped_cycles: u64,
    /// PC3D steady-state windows that missed the QoS target.
    pub qos_violations: u64,
}

/// What one epoch's advance produced, read serially by the cluster.
#[derive(Copy, Clone, Debug, Default)]
pub struct EpochReport {
    /// Queries served this epoch.
    pub queries: i64,
    /// Batch job-units completed this epoch.
    pub jobs_completed: u64,
    /// Busy fraction over the epoch (0..1, all cores).
    pub busy_frac: f64,
    /// LS queue depth at the epoch boundary.
    pub queue_depth: usize,
    /// Whether the LS service is fully drained (idle, empty queue).
    pub drained: bool,
}

/// One simulated server.
pub struct Server {
    id: usize,
    group: usize,
    spec: ServerSpec,
    box_: Option<Box<CycleBox>>,
    /// Cluster time at which the box was created (box-local cycle 0).
    base: Cycles,
    active: bool,
    ls_qps: f64,
    stats: ServerStats,
    last: EpochReport,
    /// Job-units already credited (pinned streams).
    credited_units: u64,
    /// LS queries already folded into `stats.queries` (absolute counter
    /// value at the last harvest).
    counted_queries: i64,
    /// Jobs-mode completions pending pickup: (app, wait ticket unused).
    completed_job: Option<String>,
}

impl Server {
    /// A bare, unprovisioned server record.
    pub fn new(id: usize, group: usize, spec: ServerSpec) -> Self {
        Server {
            id,
            group,
            spec,
            box_: None,
            base: 0,
            active: false,
            ls_qps: 0.0,
            stats: ServerStats::default(),
            last: EpochReport::default(),
            credited_units: 0,
            counted_queries: 0,
            completed_job: None,
        }
    }

    /// Server id (stable, assigned by the cluster).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Group index this server belongs to.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Whether the server is currently active (being stepped).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the cycle-box has ever been instantiated.
    pub fn provisioned(&self) -> bool {
        self.box_.is_some()
    }

    /// Whether a batch host is currently resident.
    pub fn has_batch(&self) -> bool {
        self.box_.as_ref().is_some_and(|b| b.batch.is_some())
    }

    /// The LS qps currently assigned by the balancer.
    pub fn ls_qps(&self) -> f64 {
        self.ls_qps
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The last epoch's report.
    pub fn last_epoch(&self) -> EpochReport {
        self.last
    }

    /// Takes the Jobs-mode completion recorded at the last epoch, if any.
    pub fn take_completed_job(&mut self) -> Option<String> {
        self.completed_job.take()
    }

    /// Runs `f` over the box while accounting busy and lifetime cycles
    /// for whatever span it advances. Energy is *not* integrated here:
    /// under a linear power model the span-by-span integral
    /// `Σ P(uᵢ)·dtᵢ` telescopes to a pure function of the exact integer
    /// totals (see [`finalize`](Server::finalize)), which keeps a
    /// parked-and-skipped server bit-identical to an always-active one
    /// no matter how its idle time was partitioned into spans.
    fn timed<F: FnOnce(&mut CycleBox)>(&mut self, f: F) {
        let b = self.box_.as_mut().expect("timed() without a box");
        let busy0 = b.busy_cycles();
        let t0 = b.os.now();
        f(b);
        let dt = b.os.now() - t0;
        if dt == 0 {
            return;
        }
        self.stats.busy_cycles += b.busy_cycles() - busy0;
        self.stats.lifetime_cycles += dt;
    }

    /// Folds LS queries served since the last harvest into the
    /// cumulative stats, returning the delta. Queries are read from the
    /// service's absolute counter rather than accumulated span by span,
    /// so serving that happens outside an epoch advance (e.g. during
    /// activation reconciles at load-step boundaries) is counted too.
    fn harvest_queries(&mut self) -> i64 {
        let Some(b) = self.box_.as_ref() else {
            return 0;
        };
        let served = b.os.app_metric(b.ls, 0);
        let delta = served - self.counted_queries;
        self.counted_queries = served;
        self.stats.queries += delta;
        delta
    }

    /// Creates the cycle-box if it does not exist yet. `ls_image` is the
    /// compiled LS service binary (cached at the cluster level).
    fn ensure_box(&mut self, cluster_now: Cycles, ls_image: &Image) {
        if self.box_.is_some() {
            return;
        }
        let mut os = Os::new(server_os_config());
        let ls = os.spawn(ls_image, 0);
        os.set_load(ls, LoadSchedule::constant(0.0));
        self.box_ = Some(Box::new(CycleBox {
            os,
            ls,
            batch: None,
            harvested: Harvest::default(),
        }));
        self.base = cluster_now;
    }

    /// Brings a parked box's local clock up to `cluster_now`, skipping
    /// the idle span when provably nothing could run.
    fn reconcile(&mut self, cluster_now: Cycles) {
        let Some(b) = self.box_.as_ref() else {
            return;
        };
        let target = cluster_now - self.base;
        if b.os.now() >= target {
            return;
        }
        let span = target - b.os.now();
        let mut skipped = 0;
        self.timed(|b| {
            let gap = target - b.os.now();
            if b.os.skip_idle(gap) {
                skipped = gap;
            } else {
                // Something could still run (e.g. a not-quite-drained
                // queue): fall back to stepping, bit-identical anyway.
                b.os.advance(gap);
            }
        });
        self.stats.idle_skipped_cycles += skipped;
        debug_assert!(span > 0);
    }

    /// Activates the server at `cluster_now`, creating the box on first
    /// use and reconciling any parked gap.
    pub fn activate(&mut self, cluster_now: Cycles, ls_image: &Image) {
        self.ensure_box(cluster_now, ls_image);
        self.reconcile(cluster_now);
        if !self.active {
            self.active = true;
            self.stats.activations += 1;
        }
    }

    /// Parks the server: its box is retained but no longer stepped.
    /// Callers should only park drained servers (the balancer checks
    /// [`EpochReport::drained`]); a non-drained park is still correct,
    /// just reconciled by stepping instead of skipping.
    pub fn park(&mut self) {
        if self.active {
            self.active = false;
            self.stats.parks += 1;
        }
    }

    /// Sets the balancer-assigned LS load, effective immediately.
    pub fn set_ls_qps(&mut self, qps: f64) {
        self.ls_qps = qps;
        if let Some(b) = self.box_.as_mut() {
            let ls = b.ls;
            b.os.set_load(ls, LoadSchedule::constant(qps));
        }
    }

    /// Installs a batch host running `app` under a fresh PC3D
    /// controller. `quota` bounds the current job in branches (Jobs
    /// mode); `None` means a pinned stream accounted in
    /// [`ServerSpec::job_branches`] units.
    ///
    /// # Panics
    ///
    /// Panics if a batch host is already resident.
    pub fn start_batch(
        &mut self,
        cluster_now: Cycles,
        ls_image: &Image,
        batch_image: &Image,
        app: &str,
        quota: Option<u64>,
    ) {
        self.activate(cluster_now, ls_image);
        let spec_pc3d = self.spec.pc3d;
        let app = app.to_string();
        self.timed(|b| {
            assert!(b.batch.is_none(), "batch slot already occupied");
            let pid = b.os.spawn(batch_image, 1);
            let rt = Runtime::attach(&b.os, pid, RuntimeConfig::on_core(2))
                .expect("attach runtime to batch host");
            let ext = b.ls;
            // The controller's constructor performs its initial flux
            // measurement, advancing the box; `timed` charges it.
            let ctl = Pc3d::new(&mut b.os, rt, ext, spec_pc3d);
            let start_branches = b.os.proc(pid).counters().branches;
            b.batch = Some(BatchSlot {
                app,
                pid,
                ctl,
                start_branches,
                quota,
            });
        });
    }

    /// Tears down the current batch host (Jobs mode completion),
    /// harvesting its branch count and QoS record.
    fn finish_batch(&mut self) -> Option<String> {
        let spec = &self.spec;
        let qos_floor = spec.pc3d.qos_target - spec.pc3d.qos_epsilon;
        let b = self.box_.as_mut()?;
        let slot = b.batch.take()?;
        let branches = b.os.proc(slot.pid).counters().branches;
        b.harvested.branches += branches;
        self.stats.qos_violations += slot
            .ctl
            .history()
            .iter()
            .filter(|w| !w.searching && w.qos < qos_floor)
            .count() as u64;
        let mut ctl = slot.ctl;
        ctl.force_detach(&mut b.os);
        b.os.kill(slot.pid);
        Some(slot.app)
    }

    /// Advances the box to cluster time `target`. For servers with a
    /// batch host the PC3D controller drives the advance (and may
    /// overshoot by up to one control window — later epochs absorb it);
    /// LS-only servers step the exact cycle count.
    pub fn advance_to(&mut self, target: Cycles) {
        if !self.active {
            return;
        }
        let Some(b) = self.box_.as_ref() else {
            return;
        };
        let local_target = target - self.base;
        let t0 = b.os.now();
        let jobs0 = self.stats.jobs_completed;
        let busy0 = self.stats.busy_cycles;
        if b.os.now() < local_target {
            let has_ctl = b.batch.is_some();
            self.timed(|b| {
                if has_ctl {
                    let secs = (local_target - b.os.now()) as f64
                        / b.os.config().machine.cycles_per_second as f64;
                    let slot = b.batch.as_mut().expect("has_ctl");
                    slot.ctl.run_for(&mut b.os, secs);
                } else {
                    let gap = local_target - b.os.now();
                    // An idle span with zero assigned load skips whole.
                    if !b.os.skip_idle(gap) {
                        b.os.advance(gap);
                    }
                }
            });
        }
        // Credit pinned-stream job units and detect Jobs-mode quota.
        let (quota_done, pinned_units) = {
            let b = self.box_.as_ref().expect("box survived advance");
            match &b.batch {
                Some(slot) => match slot.quota {
                    Some(q) => {
                        let live = b.os.proc(slot.pid).counters().branches;
                        (live.saturating_sub(slot.start_branches) >= q, None)
                    }
                    None => (false, Some(b.batch_branches() / self.spec.job_branches)),
                },
                None => (false, None),
            }
        };
        if quota_done {
            self.stats.jobs_completed += 1;
            self.completed_job = self.finish_batch();
        }
        if let Some(units) = pinned_units {
            if units > self.credited_units {
                self.stats.jobs_completed += units - self.credited_units;
                self.credited_units = units;
            }
        }
        let b = self.box_.as_ref().expect("box survived completion");
        self.stats.batch_branches = b.batch_branches();
        let dt = b.os.now() - t0;
        let cores = b.os.config().machine.cores as f64;
        let queue_depth = b.os.queue_depth(b.ls);
        let drained = queue_depth == 0 && b.os.status(b.ls) == ExecStatus::Waiting;
        let queries = self.harvest_queries();
        self.last = EpochReport {
            queries,
            jobs_completed: self.stats.jobs_completed - jobs0,
            busy_frac: if dt == 0 {
                0.0
            } else {
                (self.stats.busy_cycles - busy0) as f64 / (dt as f64 * cores)
            },
            queue_depth,
            drained,
        };
    }

    /// Final reconciliation at end of run: parks are caught up, live
    /// PC3D QoS history is folded into the violation count, and the
    /// p99 latency of the LS service is returned (cycles) if measured.
    pub fn finalize(&mut self, cluster_end: Cycles, total_duration_secs: f64) -> Option<u64> {
        // Energy under the linear model: the span-by-span integral
        // `Σ [idle + slope·busyᵢ/(dtᵢ·cores)]·dtᵢ/cps` telescopes to
        // idle·T + slope·busy_total/(cores·cps) exactly, so computing it
        // once from the integer totals is both partition-invariant (a
        // parked server matches an always-active one bit for bit) and
        // covers pre-provisioning and parked spans uniformly as idle
        // time.
        let power = self.spec.power;
        let mc = server_machine();
        let cps = mc.cycles_per_second as f64;
        let slope = power.peak_watts - power.idle_watts;
        if self.box_.is_none() {
            // Never provisioned: the server existed, idle, for the whole
            // run.
            self.stats.lifetime_cycles = (total_duration_secs * cps).round() as u64;
            self.stats.energy_joules = power.idle_watts * total_duration_secs;
            return None;
        }
        self.reconcile(cluster_end);
        self.harvest_queries();
        let qos_floor = self.spec.pc3d.qos_target - self.spec.pc3d.qos_epsilon;
        let b = self.box_.as_mut().expect("box exists");
        if let Some(slot) = &b.batch {
            self.stats.qos_violations += slot
                .ctl
                .history()
                .iter()
                .filter(|w| !w.searching && w.qos < qos_floor)
                .count() as u64;
        }
        // Lifetime is the span the server actually existed for: idle
        // provisioned time before the box was created, plus however far
        // the box really ran — a PC3D search burst can overshoot the
        // cluster end by a few windows, and normalizing rates by this
        // actual span (not the nominal duration) is what keeps the
        // co-located and segregated fleets comparable.
        self.stats.lifetime_cycles = self.base + b.os.now();
        self.stats.energy_joules = power.idle_watts * (self.stats.lifetime_cycles as f64 / cps)
            + slope * self.stats.busy_cycles as f64 / (mc.cores as f64 * cps);
        b.os.latency_stats(b.ls).map(|l| l.p99)
    }

    /// Merged PC3D metric snapshot for this server, if a controller ran.
    pub fn metrics_snapshot(&self) -> Option<protean::Snapshot> {
        self.box_
            .as_ref()
            .and_then(|b| b.batch.as_ref())
            .map(|s| s.ctl.metrics_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    const EPOCH: Cycles = 250_000; // one simulated second

    fn spec() -> ServerSpec {
        ServerSpec {
            ls_app: "web-search",
            pc3d: Pc3dConfig::datacenter(),
            power: PowerModel::default(),
            job_branches: 100_000,
        }
    }

    /// Drives `a` (cluster-style: parks whenever a zero-load segment
    /// drains) and `b` (always active, stepped every epoch) through the
    /// same load segments and asserts the satellite property: the lazily
    /// parked server is bit-identical to the always-active one.
    fn run_pair(segments: &[(bool, u8)]) -> (Server, Server) {
        let image = compile_app("web-search", false);
        let mut a = Server::new(0, 0, spec());
        let mut b = Server::new(1, 0, spec());
        a.activate(0, &image);
        b.activate(0, &image);
        let mut now: Cycles = 0;
        for &(on, epochs) in segments {
            let qps = if on { 10.0 } else { 0.0 };
            if on && !a.is_active() {
                a.activate(now, &image);
            }
            a.set_ls_qps(qps);
            b.set_ls_qps(qps);
            for _ in 0..epochs {
                now += EPOCH;
                if a.is_active() {
                    a.advance_to(now);
                    if !on && a.last_epoch().drained {
                        a.park();
                    }
                }
                b.advance_to(now);
            }
        }
        let secs = now as f64 / server_machine().cycles_per_second as f64;
        a.finalize(now, secs);
        b.finalize(now, secs);
        (a, b)
    }

    #[test]
    fn parked_server_is_bit_identical_to_always_active() {
        let (a, b) = run_pair(&[(true, 2), (false, 3), (true, 2), (false, 2), (true, 1)]);
        assert!(
            a.stats().parks >= 1,
            "server actually parked: {:?}",
            a.stats()
        );
        assert!(
            a.stats().idle_skipped_cycles > 0,
            "gap was skipped, not stepped"
        );
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.queries, sb.queries);
        assert_eq!(sa.busy_cycles, sb.busy_cycles);
        assert_eq!(sa.lifetime_cycles, sb.lifetime_cycles);
        assert_eq!(
            sa.energy_joules.to_bits(),
            sb.energy_joules.to_bits(),
            "energy is a pure function of the exact totals"
        );
        assert!(sa.queries > 0, "load was actually served");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any interleaving of load and idle segments leaves the parked
        /// server's accounting bit-identical to the always-active one's.
        #[test]
        fn park_reactivate_bit_identity(segments in vec((any::<bool>(), 1u8..3), 1..5)) {
            let (a, b) = run_pair(&segments);
            let (sa, sb) = (a.stats(), b.stats());
            prop_assert_eq!(sa.queries, sb.queries);
            prop_assert_eq!(sa.busy_cycles, sb.busy_cycles);
            prop_assert_eq!(sa.lifetime_cycles, sb.lifetime_cycles);
            prop_assert_eq!(sa.energy_joules.to_bits(), sb.energy_joules.to_bits());
        }
    }
}
