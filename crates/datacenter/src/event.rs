//! The discrete-event scheduler core: a priority queue keyed by
//! `(time, seq)` with deterministic tie-breaking.
//!
//! The queue is a min-heap over event timestamps; the monotonically
//! assigned `seq` breaks same-timestamp ties in insertion order, so a
//! run's event ordering is a pure function of the pushes — never of
//! heap internals, hash state, or thread timing. Popping an event
//! advances the queue clock directly to the event's timestamp: spans
//! where nothing is scheduled are skipped entirely rather than stepped
//! through, which is what makes simulating thousands of mostly-idle
//! servers cheap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated cluster time, in cycles of the per-server machine clock.
pub type Cycles = u64;

/// A scheduled event: a payload plus its `(time, seq)` ordering key.
#[derive(Clone, Debug)]
pub struct Event<T> {
    /// Absolute cluster time at which the event fires.
    pub time: Cycles,
    /// Insertion-order tie-breaker: of two events at the same time, the
    /// one pushed first fires first.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

// Ordering is by (time, seq) only — payloads never influence it. The
// comparisons are inverted because `BinaryHeap` is a max-heap and we
// want the earliest event on top.
impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event queue with an idle-skipping clock.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    now: Cycles,
    processed: u64,
    skipped: Cycles,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            processed: 0,
            skipped: 0,
        }
    }

    /// The queue clock: the timestamp of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Total cycles the clock jumped over without stepping (the sum of
    /// all gaps between consecutive event timestamps).
    pub fn skipped(&self) -> Cycles {
        self.skipped
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute `time`, returning its `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — events may only be scheduled
    /// at or after the clock, so the popped order is globally sorted.
    pub fn push(&mut self, time: Cycles, payload: T) -> u64 {
        assert!(
            time >= self.now,
            "event scheduled in the past: {} < {}",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, payload });
        seq
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event and advances the clock to its timestamp,
    /// skipping the idle gap in between.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.skipped += e.time - self.now;
        self.now = e.time;
        self.processed += 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order_and_skips_gaps() {
        let mut q = EventQueue::new();
        q.push(50, "c");
        q.push(10, "a");
        q.push(30, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert_eq!(q.now(), 50);
        // Gaps 0→10, 10→30, 30→50 were all skipped, never stepped.
        assert_eq!(q.skipped(), 50);
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_events_behind_the_clock() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    proptest! {
        /// Idle-time skipping never reorders events: however pushes and
        /// pops interleave, popped timestamps are non-decreasing and the
        /// clock never runs ahead of an undelivered event.
        #[test]
        fn skipping_never_reorders(deltas in vec((0u64..100, 1usize..4), 1..60)) {
            let mut q = EventQueue::new();
            let mut popped: Vec<(Cycles, u64)> = Vec::new();
            for (jitter, pops) in deltas {
                // Schedule relative to the moving clock, including
                // same-timestamp events (jitter 0).
                q.push(q.now() + jitter, ());
                q.push(q.now() + jitter / 2, ());
                for _ in 0..pops {
                    if let Some(e) = q.pop() {
                        popped.push((e.time, e.seq));
                    }
                }
            }
            while let Some(e) = q.pop() {
                popped.push((e.time, e.seq));
            }
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "reordered: {:?}", w);
            }
            prop_assert_eq!(popped.len(), q.processed() as usize);
        }

        /// Same-timestamp events fire in `seq` (insertion) order, and the
        /// full popped sequence is exactly the pushes sorted by
        /// `(time, seq)` — deterministic regardless of heap shape.
        #[test]
        fn ties_fire_in_seq_order(times in vec(0u64..8, 2..80)) {
            let mut q = EventQueue::new();
            let mut expect: Vec<(Cycles, u64)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                let seq = q.push(t, i);
                expect.push((t, seq));
            }
            expect.sort();
            let mut got = Vec::new();
            while let Some(e) = q.pop() {
                // The payload recorded at push time must ride along.
                prop_assert_eq!(e.seq as usize, e.payload);
                got.push((e.time, e.seq));
            }
            prop_assert_eq!(got, expect);
        }
    }
}
