//! The cluster simulator: a discrete-event loop over thousands of
//! lazily instantiated servers.
//!
//! The design is two-level. The **cluster level** is a classic
//! discrete-event simulation: one [`EventQueue`] ordered by
//! `(time, seq)` carries load-shape boundaries, job arrivals, epoch
//! barriers, and the end-of-run marker, and all cluster-state decisions
//! (placement, balancing, activation, parking) happen while processing
//! events, strictly in event order. The **server level** is
//! cycle-accurate: each active server owns a [`simos::Os`] box advanced
//! to each epoch boundary.
//!
//! Parallelism never touches determinism: between two events the active
//! servers' boxes are independent (they share no state), so the epoch
//! advance fans them out through a pluggable [`SliceExec`] and puts the
//! results back in server-id order. The serial executor and a
//! work-stealing pool produce bit-identical clusters. Everything
//! nondeterministic-looking (placement randomness, bursty load) draws
//! from seeded generators inside the serial event loop.

use std::collections::{BTreeMap, VecDeque};

use pc3d::Pc3dConfig;
use protean::{MonitorReport, Registry, Snapshot};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simos::{LoadSchedule, Os};
use visa::Image;

use crate::analytic::{Mix, PowerModel};
use crate::event::{Cycles, EventQueue};
use crate::qps::QpsShape;
use crate::server::{compile_app, server_machine, server_os_config, Server, ServerSpec};

/// How batch work enters the cluster.
#[derive(Clone, Debug)]
pub enum BatchMode {
    /// No batch work: a latency-sensitive-only datacenter.
    None,
    /// Every server permanently hosts one batch stream from its group's
    /// mix (the paper's co-located datacenter, Figs. 17–18); completions
    /// are counted in `job_branches` units.
    Pinned,
    /// Jobs arrive as a Poisson stream per group and are placed by
    /// `placement`; each job retires after `job_branches` branches and
    /// frees its server.
    Jobs {
        /// Placement policy for arriving jobs.
        placement: Placement,
        /// Mean interarrival time per group, seconds.
        mean_interarrival_secs: f64,
    },
}

/// Job placement policies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Uniformly random over free servers (seeded, deterministic).
    Random,
    /// The free server with the lowest last-epoch busy fraction.
    LeastLoaded,
    /// Prefer co-locating on an already-active LS server with headroom;
    /// only wake a parked server when no active one is free.
    ColocationAware,
}

/// One homogeneous server group: an LS service, a batch mix, and an
/// offered-load shape.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// Display name, e.g. `"web-search/WL1"`.
    pub name: String,
    /// The latency-sensitive service every server in the group runs.
    pub ls_app: &'static str,
    /// The batch mix feeding this group.
    pub mix: Mix,
    /// Number of provisioned servers.
    pub servers: usize,
    /// Group-level offered load.
    pub shape: QpsShape,
}

/// Cluster-wide configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Server groups.
    pub groups: Vec<GroupSpec>,
    /// Batch workload mode.
    pub batch: BatchMode,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Epoch (barrier) length, seconds: how often active boxes sync.
    pub epoch_secs: f64,
    /// When true, the balancer concentrates LS load on as few servers
    /// as the target utilization allows and parks the rest; when false
    /// every provisioned server stays active with an even share.
    pub consolidate: bool,
    /// Balancer target busy fraction per active LS server.
    pub target_util: f64,
    /// Minimum active servers per group (0 allows full park).
    pub min_active: usize,
    /// Master seed for placement and arrival randomness.
    pub seed: u64,
    /// Linear power model for energy integration.
    pub power: PowerModel,
    /// Per-server PC3D controller configuration.
    pub pc3d: Pc3dConfig,
    /// Branches per batch job (quota in Jobs mode, accounting unit for
    /// pinned streams).
    pub job_branches: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            groups: Vec::new(),
            batch: BatchMode::None,
            duration_secs: 60.0,
            epoch_secs: 1.0,
            consolidate: true,
            target_util: 0.7,
            min_active: 0,
            seed: 0,
            power: PowerModel::default(),
            pc3d: Pc3dConfig::datacenter(),
            job_branches: 10_000,
        }
    }
}

/// A parcel of work for the epoch fan-out: advance one server's box to
/// the epoch boundary. Self-contained and independent of every other
/// job in the batch, so executors may run them in any order.
pub struct SliceJob {
    server: Server,
    target: Cycles,
}

impl SliceJob {
    /// Runs the slice to completion, returning the advanced server.
    pub fn run(mut self) -> Server {
        self.server.advance_to(self.target);
        self.server
    }

    /// The server id, for labeling.
    pub fn server_id(&self) -> usize {
        self.server.id()
    }
}

/// An executor for a batch of independent slice jobs. Must return the
/// results **in input order** — that contract is what keeps parallel
/// runs bit-identical to serial ones.
pub type SliceExec = Box<dyn Fn(Vec<SliceJob>) -> Vec<Server> + Send + Sync>;

/// The default executor: runs slices one after another on this thread.
pub fn serial_exec() -> SliceExec {
    Box::new(|jobs| jobs.into_iter().map(SliceJob::run).collect())
}

/// Per-group simulation outcome.
#[derive(Clone, Debug)]
pub struct GroupResult {
    /// Group display name.
    pub name: String,
    /// LS service.
    pub ls_app: &'static str,
    /// Mix name.
    pub mix_name: &'static str,
    /// Provisioned servers.
    pub servers: usize,
    /// Queries served.
    pub queries: i64,
    /// Batch jobs completed (quota units).
    pub jobs_completed: u64,
    /// Batch branches executed.
    pub batch_branches: u64,
    /// Energy, joules.
    pub energy_joules: f64,
    /// Busy cycles (all servers, all cores).
    pub busy_cycles: u64,
    /// Cycles the group's servers existed for, summed. Boxes driven by a
    /// PC3D controller can overshoot the nominal end by a search burst,
    /// so rates are normalized by this actual span.
    pub lifetime_cycles: u64,
    /// PC3D windows that missed the QoS target.
    pub qos_violations: u64,
    /// Server activations (park → active transitions).
    pub activations: u64,
    /// Servers parked (active → parked transitions).
    pub parks: u64,
    /// Idle cycles reconciled by skipping rather than stepping.
    pub idle_skipped_cycles: u64,
    /// Peak simultaneously active servers.
    pub peak_active: usize,
}

impl GroupResult {
    /// Mean simulated seconds each server actually existed for.
    pub fn mean_server_secs(&self) -> f64 {
        self.lifetime_cycles as f64
            / (server_machine().cycles_per_second as f64 * self.servers as f64)
    }

    /// Mean busy fraction across the group's provisioned capacity.
    pub fn mean_busy_frac(&self) -> f64 {
        let mc = server_machine();
        self.busy_cycles as f64 / (self.lifetime_cycles as f64 * mc.cores as f64)
    }

    /// Mean power draw of the whole group, watts.
    pub fn mean_power_watts(&self) -> f64 {
        self.energy_joules / self.mean_server_secs()
    }

    /// Batch branches retired per simulated second, fleet-wide.
    pub fn batch_branches_per_sec(&self) -> f64 {
        self.batch_branches as f64 / self.mean_server_secs()
    }
}

/// Whole-cluster simulation outcome.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Per-group results, in configuration order.
    pub groups: Vec<GroupResult>,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Cluster events processed.
    pub events: u64,
    /// Cycles the event clock jumped over (idle skipping).
    pub skipped_cycles: Cycles,
    /// Total queries served.
    pub queries: i64,
    /// Total batch job completions.
    pub jobs_completed: u64,
    /// Total energy, joules.
    pub energy_joules: f64,
    /// Merged metric snapshot: the cluster's own `datacenter.*` registry
    /// plus every per-server PC3D controller registry.
    pub snapshot: Snapshot,
}

impl ClusterResult {
    /// The cluster's operator-facing report: its `datacenter.*` metrics
    /// (and merged per-server controller metrics) in the same
    /// [`MonitorReport`] type per-server controllers surface.
    pub fn report(&self) -> MonitorReport {
        MonitorReport::from_metrics(self.snapshot.clone())
    }

    /// Mean cluster power, watts.
    pub fn mean_power_watts(&self) -> f64 {
        self.energy_joules / self.duration_secs
    }
}

/// Cluster events. Variants are processed strictly in `(time, seq)`
/// order; see module docs.
#[derive(Clone, Debug)]
enum Ev {
    /// A group's load shape crossed a step boundary: re-balance.
    LoadStep { group: usize },
    /// Barrier: advance all active server boxes to this time.
    Epoch,
    /// A batch job arrives for a group (Jobs mode).
    JobArrival { group: usize },
    /// End of simulation.
    End,
}

/// The cluster simulator. Build with [`Cluster::new`], then call
/// [`run`](Cluster::run) (serial) or [`run_with`](Cluster::run_with)
/// (custom executor).
pub struct Cluster {
    cfg: ClusterConfig,
    /// Server slots; `None` while a server is out being advanced.
    servers: Vec<Option<Server>>,
    /// Balancer intent per server.
    desired_active: Vec<bool>,
    /// `servers` index ranges per group.
    group_ranges: Vec<(usize, usize)>,
    /// Measured queries/sec one server sustains, per LS app.
    capacity: BTreeMap<&'static str, f64>,
    /// Compiled images by app name.
    images: BTreeMap<String, Image>,
    /// Round-robin batch app cursor per group.
    batch_cursor: Vec<usize>,
    /// Queued jobs that found no free server: (group, app).
    job_queue: VecDeque<(usize, String)>,
    rng: StdRng,
    metrics: Registry,
    peak_active: Vec<usize>,
    epoch_cycles: Cycles,
    end_cycles: Cycles,
    next_epoch: Option<Cycles>,
}

impl Cluster {
    /// Builds the cluster: compiles each referenced binary once and
    /// calibrates per-LS-app server capacity with a short saturated
    /// solo simulation.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name or empty configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(!cfg.groups.is_empty(), "cluster needs at least one group");
        assert!(cfg.epoch_secs > 0.0 && cfg.duration_secs > 0.0);
        let mc = server_machine();
        let mut images: BTreeMap<String, Image> = BTreeMap::new();
        let mut compile = |name: &str, protean: bool| {
            if !images.contains_key(name) {
                images.insert(name.to_string(), compile_app(name, protean));
            }
        };
        for g in &cfg.groups {
            compile(g.ls_app, false);
            if !matches!(cfg.batch, BatchMode::None) {
                for app in g.mix.batch_apps {
                    compile(app, true);
                }
            }
        }

        // Calibrate: how many queries/sec does one server sustain?
        let mut capacity = BTreeMap::new();
        for g in &cfg.groups {
            if capacity.contains_key(g.ls_app) {
                continue;
            }
            let mut os = Os::new(server_os_config());
            let pid = os.spawn(&images[g.ls_app], 0);
            os.set_load(pid, LoadSchedule::constant(10_000.0));
            os.advance_seconds(4.0);
            let served = os.app_metric(pid, 0).max(1);
            capacity.insert(g.ls_app, served as f64 / 4.0);
        }

        let mut servers = Vec::new();
        let mut group_ranges = Vec::new();
        for (gi, g) in cfg.groups.iter().enumerate() {
            assert!(g.servers > 0, "group {} has no servers", g.name);
            let start = servers.len();
            for i in 0..g.servers {
                let spec = ServerSpec {
                    ls_app: g.ls_app,
                    pc3d: cfg.pc3d,
                    power: cfg.power,
                    job_branches: cfg.job_branches,
                };
                servers.push(Some(Server::new(start + i, gi, spec)));
            }
            group_ranges.push((start, servers.len()));
        }

        let epoch_cycles = (cfg.epoch_secs * mc.cycles_per_second as f64).round() as Cycles;
        let end_cycles = (cfg.duration_secs * mc.cycles_per_second as f64).round() as Cycles;
        let n = servers.len();
        let groups = cfg.groups.len();
        let seed = cfg.seed;
        Cluster {
            cfg,
            servers,
            desired_active: vec![false; n],
            group_ranges,
            capacity,
            images,
            batch_cursor: vec![0; groups],
            job_queue: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Registry::new(),
            peak_active: vec![0; groups],
            epoch_cycles,
            end_cycles,
            next_epoch: None,
        }
    }

    /// Measured solo capacity (queries/sec) for an LS app.
    pub fn capacity(&self, ls_app: &str) -> Option<f64> {
        self.capacity.get(ls_app).copied()
    }

    /// Runs the simulation with the serial executor.
    pub fn run(self) -> ClusterResult {
        self.run_with(&serial_exec())
    }

    /// Runs the simulation, fanning epoch advances out through `exec`.
    pub fn run_with(mut self, exec: &SliceExec) -> ClusterResult {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let cps = server_machine().cycles_per_second as f64;
        // Setup events: per-group load steps, arrivals, then the end
        // marker. Same-timestamp ties resolve in this push order.
        for (gi, g) in self.cfg.groups.iter().enumerate() {
            for t in g.shape.boundaries() {
                let cycles = (t * cps).round() as Cycles;
                if cycles < self.end_cycles {
                    queue.push(cycles, Ev::LoadStep { group: gi });
                }
            }
        }
        if let BatchMode::Jobs {
            mean_interarrival_secs,
            ..
        } = self.cfg.batch
        {
            for gi in 0..self.cfg.groups.len() {
                let dt = exp_sample(&mut self.rng, mean_interarrival_secs);
                let cycles = (dt * cps).round() as Cycles;
                if cycles < self.end_cycles {
                    queue.push(cycles, Ev::JobArrival { group: gi });
                }
            }
        }
        queue.push(self.end_cycles, Ev::End);

        // Pinned mode: every server starts active with its batch stream.
        if matches!(self.cfg.batch, BatchMode::Pinned) {
            for gi in 0..self.cfg.groups.len() {
                let (start, end) = self.group_ranges[gi];
                for si in start..end {
                    self.desired_active[si] = true;
                    let app = self.next_batch_app(gi);
                    self.start_batch_on(si, 0, &app, None);
                }
            }
        }

        while let Some(ev) = queue.pop() {
            let now = ev.time;
            self.metrics.inc("datacenter.events");
            match ev.payload {
                Ev::LoadStep { group } => {
                    self.rebalance(group, now);
                    self.ensure_epoch(&mut queue, now);
                }
                Ev::JobArrival { group } => {
                    self.metrics.inc("datacenter.job_arrivals");
                    let app = self.next_batch_app(group);
                    if let Some(si) = self.place(group, &app) {
                        self.start_batch_on(si, now, &app, Some(self.cfg.job_branches));
                    } else {
                        self.metrics.inc("datacenter.jobs_queued");
                        self.job_queue.push_back((group, app));
                    }
                    self.metrics
                        .record("datacenter.job_backlog", self.job_queue.len() as u64);
                    if let BatchMode::Jobs {
                        mean_interarrival_secs,
                        ..
                    } = self.cfg.batch
                    {
                        let dt = exp_sample(&mut self.rng, mean_interarrival_secs);
                        let t = now + ((dt * cps).round() as Cycles).max(1);
                        if t < self.end_cycles {
                            queue.push(t, Ev::JobArrival { group });
                        }
                    }
                    self.ensure_epoch(&mut queue, now);
                }
                Ev::Epoch => {
                    self.next_epoch = None;
                    self.advance_active(now, exec);
                    self.after_epoch(now);
                    self.ensure_epoch(&mut queue, now);
                }
                Ev::End => {
                    self.advance_active(now, exec);
                    break;
                }
            }
        }
        self.finalize(queue)
    }

    /// The next batch app of a group's mix, round-robin.
    fn next_batch_app(&mut self, group: usize) -> String {
        let mix = self.cfg.groups[group].mix;
        let app = mix.batch_apps[self.batch_cursor[group] % mix.batch_apps.len()];
        self.batch_cursor[group] += 1;
        app.to_string()
    }

    fn server(&self, si: usize) -> &Server {
        self.servers[si].as_ref().expect("server checked in")
    }

    fn server_mut(&mut self, si: usize) -> &mut Server {
        self.servers[si].as_mut().expect("server checked in")
    }

    /// Starts a batch stream/job on server `si`.
    fn start_batch_on(&mut self, si: usize, now: Cycles, app: &str, quota: Option<u64>) {
        let ls_image = self.images[self.cfg.groups[self.server(si).group()].ls_app].clone();
        let batch_image = self.images[app].clone();
        self.server_mut(si)
            .start_batch(now, &ls_image, &batch_image, app, quota);
    }

    /// Re-plans one group at a shape boundary: picks the active-set size
    /// from measured capacity and divides load evenly.
    fn rebalance(&mut self, group: usize, now: Cycles) {
        let cps = server_machine().cycles_per_second as f64;
        let t_secs = now as f64 / cps;
        let g = &self.cfg.groups[group];
        let qps = g.shape.qps_at(t_secs);
        let (start, end) = self.group_ranges[group];
        let total = end - start;
        let n = if self.cfg.consolidate {
            let per_server = (self.capacity[g.ls_app] * self.cfg.target_util).max(1e-9);
            let need = (qps / per_server).ceil() as usize;
            need.clamp(self.cfg.min_active.min(total), total)
        } else {
            total
        };
        let share = if n > 0 { qps / n as f64 } else { 0.0 };
        let ls_image = self.images[g.ls_app].clone();
        for si in start..end {
            let want = si - start < n;
            self.desired_active[si] = want;
            if want {
                self.server_mut(si).activate(now, &ls_image);
                self.server_mut(si).set_ls_qps(share);
            } else {
                // Stop feeding it; it parks once drained (and batch-free).
                self.server_mut(si).set_ls_qps(0.0);
            }
        }
        self.metrics.add("datacenter.rebalances", 1);
    }

    /// Picks a free server for a job by the configured policy.
    fn place(&mut self, group: usize, _app: &str) -> Option<usize> {
        let BatchMode::Jobs { placement, .. } = self.cfg.batch else {
            return None;
        };
        let (start, end) = self.group_ranges[group];
        let free: Vec<usize> = (start..end)
            .filter(|&si| !self.server(si).has_batch())
            .collect();
        if free.is_empty() {
            return None;
        }
        let pick = match placement {
            Placement::Random => free[self.rng.gen_range(0..free.len())],
            Placement::LeastLoaded => free
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let (fa, fb) = (
                        self.server(a).last_epoch().busy_frac,
                        self.server(b).last_epoch().busy_frac,
                    );
                    fa.total_cmp(&fb).then(a.cmp(&b))
                })
                .expect("free non-empty"),
            Placement::ColocationAware => {
                let active: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&si| self.server(si).is_active())
                    .collect();
                let pool = if active.is_empty() { &free } else { &active };
                pool.iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let (fa, fb) = (
                            self.server(a).last_epoch().busy_frac,
                            self.server(b).last_epoch().busy_frac,
                        );
                        fa.total_cmp(&fb).then(a.cmp(&b))
                    })
                    .expect("pool non-empty")
            }
        };
        Some(pick)
    }

    /// Fans all active servers out to `target` through the executor and
    /// reinstalls them in id order.
    fn advance_active(&mut self, target: Cycles, exec: &SliceExec) {
        let mut ids = Vec::new();
        let mut jobs = Vec::new();
        for si in 0..self.servers.len() {
            if self.servers[si].as_ref().is_some_and(Server::is_active) {
                let server = self.servers[si].take().expect("active server present");
                ids.push(si);
                jobs.push(SliceJob { server, target });
            }
        }
        let n_active = jobs.len();
        let advanced = exec(jobs);
        assert_eq!(advanced.len(), n_active, "executor must return every slice");
        for (si, server) in ids.into_iter().zip(advanced) {
            assert_eq!(server.id(), si, "executor must preserve input order");
            self.servers[si] = Some(server);
        }
        self.metrics
            .record("datacenter.active_servers", n_active as u64);
    }

    /// Serial post-epoch bookkeeping: metrics, completions, queued-job
    /// placement, parking.
    fn after_epoch(&mut self, now: Cycles) {
        // Harvest completions and sample queue depths, in id order.
        for si in 0..self.servers.len() {
            if self.servers[si].is_none() {
                continue;
            }
            let (active, report) = {
                let s = self.server(si);
                (s.is_active(), s.last_epoch())
            };
            if !active {
                continue;
            }
            self.metrics
                .record("datacenter.queue_depth", report.queue_depth as u64);
            self.metrics
                .add("datacenter.queries", report.queries.max(0) as u64);
            if report.jobs_completed > 0 {
                self.metrics
                    .add("datacenter.jobs_completed", report.jobs_completed);
            }
            let _ = self.server_mut(si).take_completed_job();
        }
        // Place queued jobs onto servers freed this epoch (FIFO).
        let mut still_queued = VecDeque::new();
        while let Some((group, app)) = self.job_queue.pop_front() {
            if let Some(si) = self.place(group, &app) {
                self.start_batch_on(si, now, &app, Some(self.cfg.job_branches));
            } else {
                still_queued.push_back((group, app));
            }
        }
        self.job_queue = still_queued;
        // Park drained, batch-free servers the balancer gave up on.
        for si in 0..self.servers.len() {
            if self.servers[si].is_none() || self.desired_active[si] {
                continue;
            }
            let s = self.server(si);
            if s.is_active() && !s.has_batch() && s.last_epoch().drained {
                self.server_mut(si).park();
            }
        }
        // Track peaks.
        for gi in 0..self.group_ranges.len() {
            let (start, end) = self.group_ranges[gi];
            let active = (start..end)
                .filter(|&si| self.servers[si].as_ref().is_some_and(Server::is_active))
                .count();
            self.peak_active[gi] = self.peak_active[gi].max(active);
        }
    }

    /// Schedules the next epoch barrier if any server is active.
    fn ensure_epoch(&mut self, queue: &mut EventQueue<Ev>, now: Cycles) {
        if self.next_epoch.is_some() {
            return;
        }
        let any_active = self
            .servers
            .iter()
            .any(|s| s.as_ref().is_some_and(Server::is_active));
        if !any_active {
            return;
        }
        // Align epochs to the global grid so shape boundaries (also
        // grid-aligned) coincide with barriers.
        let t = (now / self.epoch_cycles + 1) * self.epoch_cycles;
        if t < self.end_cycles {
            queue.push(t, Ev::Epoch);
            self.next_epoch = Some(t);
        }
    }

    /// Drains accounting into the final [`ClusterResult`].
    fn finalize(mut self, queue: EventQueue<Ev>) -> ClusterResult {
        let cps = server_machine().cycles_per_second as f64;
        let duration = self.cfg.duration_secs;
        let mut groups = Vec::new();
        let mut snapshot = Snapshot::default();
        for (gi, g) in self.cfg.groups.iter().enumerate() {
            let (start, end) = self.group_ranges[gi];
            let mut r = GroupResult {
                name: g.name.clone(),
                ls_app: g.ls_app,
                mix_name: g.mix.name,
                servers: end - start,
                queries: 0,
                jobs_completed: 0,
                batch_branches: 0,
                energy_joules: 0.0,
                busy_cycles: 0,
                lifetime_cycles: 0,
                qos_violations: 0,
                activations: 0,
                parks: 0,
                idle_skipped_cycles: 0,
                peak_active: self.peak_active[gi],
            };
            for si in start..end {
                let server = self.servers[si].as_mut().expect("server checked in");
                if let Some(p99) = server.finalize(self.end_cycles, duration) {
                    self.metrics.record("datacenter.ls_p99_cycles", p99);
                }
                if let Some(snap) = server.metrics_snapshot() {
                    snapshot = snapshot.merge(snap);
                }
                let st = server.stats();
                r.queries += st.queries;
                r.jobs_completed += st.jobs_completed;
                r.batch_branches += st.batch_branches;
                r.energy_joules += st.energy_joules;
                r.busy_cycles += st.busy_cycles;
                r.lifetime_cycles += st.lifetime_cycles;
                r.qos_violations += st.qos_violations;
                r.activations += st.activations;
                r.parks += st.parks;
                r.idle_skipped_cycles += st.idle_skipped_cycles;
            }
            self.metrics
                .add("datacenter.qos_window_violations", r.qos_violations);
            self.metrics
                .add("datacenter.server_activations", r.activations);
            self.metrics.add("datacenter.server_parks", r.parks);
            self.metrics
                .add("datacenter.idle_skipped_cycles", r.idle_skipped_cycles);
            groups.push(r);
        }
        self.metrics
            .set_gauge("datacenter.sim_seconds", queue.now() as f64 / cps);
        self.metrics
            .set_gauge("datacenter.provisioned_servers", self.servers.len() as f64);
        self.metrics
            .record("datacenter.idle_skip_cycles", queue.skipped());
        let queries: i64 = groups.iter().map(|g| g.queries).sum();
        let jobs_completed: u64 = groups.iter().map(|g| g.jobs_completed).sum();
        let energy_joules: f64 = groups.iter().map(|g| g.energy_joules).sum();
        let snapshot = self.metrics.snapshot().merge(snapshot);
        ClusterResult {
            groups,
            duration_secs: duration,
            events: queue.processed(),
            skipped_cycles: queue.skipped(),
            queries,
            jobs_completed,
            energy_joules,
            snapshot,
        }
    }
}

/// Inverse-transform exponential sample with mean `mean`.
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * f64::ln(f64::max(1.0 - u, 1e-12))
}

// Compile-time proof that servers can cross threads (the executor
// contract) — `Os`, `Pc3d`, and `Runtime` hold no shared-state handles.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SliceJob>();
    assert_send::<Server>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A genuinely parallel executor: worker threads claim slices from a
    /// shared cursor in whatever order the scheduler produces, results
    /// land in per-index slots, and the output is input-ordered — the
    /// same shape the bench harness builds over `protean_bench::pool`.
    fn threaded_exec(threads: usize) -> SliceExec {
        Box::new(move |jobs| {
            let n = jobs.len();
            let jobs: Vec<Mutex<Option<SliceJob>>> =
                jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let slots: Vec<Mutex<Option<Server>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.max(1) {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = jobs[i].lock().unwrap().take().expect("unclaimed");
                        *slots[i].lock().unwrap() = Some(job.run());
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("slice ran"))
                .collect()
        })
    }

    fn jobs_config(placement: Placement) -> ClusterConfig {
        ClusterConfig {
            groups: vec![
                GroupSpec {
                    name: "web-search/WL1".into(),
                    ls_app: "web-search",
                    mix: crate::analytic::MIXES[0],
                    servers: 3,
                    shape: QpsShape::diurnal(20.0, 40.0, 5.0, 1.0, 0.0, 1.0),
                },
                GroupSpec {
                    name: "graph-analytics/WL2".into(),
                    ls_app: "graph-analytics",
                    mix: crate::analytic::MIXES[1],
                    servers: 3,
                    shape: QpsShape::bursty(20.0, 5.0, 30.0, 0.3, 1.0, 11),
                },
            ],
            batch: BatchMode::Jobs {
                placement,
                mean_interarrival_secs: 3.0,
            },
            duration_secs: 20.0,
            consolidate: true,
            min_active: 1,
            seed: 9,
            job_branches: 2_000,
            ..ClusterConfig::default()
        }
    }

    /// Canonical fingerprint of everything a ClusterResult reports,
    /// floats by bit pattern, including the merged metric report.
    fn fingerprint(r: &ClusterResult) -> String {
        let mut s = format!(
            "events={} skipped={} queries={} jobs={} energy={:016x}\n",
            r.events,
            r.skipped_cycles,
            r.queries,
            r.jobs_completed,
            r.energy_joules.to_bits()
        );
        for g in &r.groups {
            s.push_str(&format!(
                "{}: q={} jobs={} branches={} busy={} energy={:016x} act={} parks={} skip={} peak={} qos={}\n",
                g.name,
                g.queries,
                g.jobs_completed,
                g.batch_branches,
                g.busy_cycles,
                g.energy_joules.to_bits(),
                g.activations,
                g.parks,
                g.idle_skipped_cycles,
                g.peak_active,
                g.qos_violations,
            ));
        }
        s.push_str(&format!(
            "{}",
            MonitorReport::from_metrics(r.snapshot.clone())
        ));
        s
    }

    #[test]
    fn parallel_executor_is_bit_identical_to_serial() {
        let serial = Cluster::new(jobs_config(Placement::LeastLoaded)).run();
        let parallel =
            Cluster::new(jobs_config(Placement::LeastLoaded)).run_with(&threaded_exec(4));
        assert!(serial.queries > 0, "cluster served load");
        assert!(serial.jobs_completed > 0, "jobs ran to completion");
        assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    }

    #[test]
    fn placement_policies_run_and_stay_deterministic() {
        for placement in [
            Placement::Random,
            Placement::LeastLoaded,
            Placement::ColocationAware,
        ] {
            let a = Cluster::new(jobs_config(placement)).run();
            let b = Cluster::new(jobs_config(placement)).run();
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "same seed, same outcome ({placement:?})"
            );
            assert!(a.jobs_completed > 0, "{placement:?} placed jobs");
        }
    }

    #[test]
    fn consolidation_parks_servers_and_saves_energy() {
        let mk = |consolidate| ClusterConfig {
            groups: vec![GroupSpec {
                name: "media-streaming/WL3".into(),
                ls_app: "media-streaming",
                mix: crate::analytic::MIXES[2],
                servers: 6,
                shape: QpsShape::constant(12.0),
            }],
            batch: BatchMode::None,
            duration_secs: 20.0,
            consolidate,
            min_active: 1,
            seed: 3,
            ..ClusterConfig::default()
        };
        let packed = Cluster::new(mk(true)).run();
        let spread = Cluster::new(mk(false)).run();
        let pg = &packed.groups[0];
        let sg = &spread.groups[0];
        assert!(
            pg.peak_active < 6,
            "balancer consolidated: peak {} of 6",
            pg.peak_active
        );
        assert_eq!(sg.peak_active, 6, "non-consolidating fleet all active");
        // Same offered load gets served either way...
        let (pq, sq) = (pg.queries as f64, sg.queries as f64);
        assert!(
            (pq - sq).abs() / sq < 0.05,
            "similar service: packed {pq} vs spread {sq}"
        );
        // ...but parked servers skip their idle time rather than step it.
        assert!(pg.idle_skipped_cycles > 0 || pg.parks == 0);
        assert!(packed.skipped_cycles > 0, "event clock skipped idle time");
    }
}
