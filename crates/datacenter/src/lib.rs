#![warn(missing_docs)]

//! # `datacenter` — warehouse-scale simulation (Section V-E)
//!
//! The paper's final experiments ask what PC3D co-location is worth at
//! warehouse scale: how many servers a 10k-machine cluster saves
//! (Figure 17) and what that does to energy efficiency under a linear
//! CPU-utilization power model (Figure 18).
//!
//! This crate answers that two ways:
//!
//! * [`analytic`] — the original closed-form model: pure arithmetic over
//!   three measured scalars per (batch, LS) pair. Cheap, and kept as an
//!   independent cross-check.
//! * [`cluster`] + [`scaleout`] — a discrete-event simulation of the
//!   warehouse itself: an [`event::EventQueue`] drives thousands of
//!   simulated servers, each lazily instantiating a cycle-accurate
//!   [`simos::Os`] box only while active; diurnal and bursty [`qps`]
//!   shapes feed the load balancer; batch jobs arrive, get placed, and
//!   run under per-server PC3D controllers; and Figures 17–18 fall out
//!   of the simulated event streams instead of assumed utilizations.
//!
//! Determinism is load-bearing: all cluster decisions happen serially in
//! event `(time, seq)` order, and the epoch fan-out contract
//! ([`cluster::SliceExec`]) requires results back in input order, so a
//! pinned-seed run is bit-identical whether server boxes advance on one
//! thread or many. CI diffs a serial run against a parallel one on every
//! push.

pub mod analytic;
pub mod cluster;
pub mod event;
pub mod qps;
pub mod scaleout;
pub mod server;

pub use analytic::{
    analyze, mix_by_name, Mix, PairMeasurement, PowerModel, ScaleOutResult, LS_APPS, MIXES,
};
pub use cluster::{
    serial_exec, BatchMode, Cluster, ClusterConfig, ClusterResult, GroupResult, GroupSpec,
    Placement, SliceExec, SliceJob,
};
pub use event::{Cycles, Event, EventQueue};
pub use qps::QpsShape;
pub use scaleout::{fig17_18, solo_batch_rate, Fig1718, GroupRow, ScaleOutScenario, SoloBatchRate};
pub use server::{Server, ServerSpec, ServerStats};
