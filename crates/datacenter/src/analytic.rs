//! The original closed-form scale-out model (Section V-E).
//!
//! Given per-server utilization measurements, how many servers does a
//! 10k-machine cluster save by co-locating batch work under PC3D
//! (Figure 17), and what does that do to energy efficiency under a
//! linear CPU-utilization power model (Figure 18)?
//!
//! This module is pure arithmetic over measured inputs. It predates the
//! discrete-event simulator in [`crate::cluster`] and is kept both as a
//! cheap first-order answer and as an independent cross-check: at steady
//! uniform load the simulation must converge to these predictions (see
//! the `analytic_crosscheck` test), and the simulator reuses
//! [`PowerModel`] and [`ScaleOutResult`] so the two pipelines stay
//! directly comparable.

/// The paper's workload mixes (Table III).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Mix {
    /// Mix name (WL1..WL3).
    pub name: &'static str,
    /// The four batch applications, deployed in equal proportion.
    pub batch_apps: [&'static str; 4],
}

/// Table III: the workload mixes used for scale-out analysis.
pub const MIXES: [Mix; 3] = [
    Mix {
        name: "WL1",
        batch_apps: ["libquantum", "bzip2", "sphinx3", "milc"],
    },
    Mix {
        name: "WL2",
        batch_apps: ["soplex", "bst", "milc", "lbm"],
    },
    Mix {
        name: "WL3",
        batch_apps: ["sledge", "soplex", "sphinx3", "libquantum"],
    },
];

/// The latency-sensitive services paired with each mix.
pub const LS_APPS: [&str; 3] = ["web-search", "graph-analytics", "media-streaming"];

/// Linear CPU-utilization power model: `P(u) = idle + (peak - idle) * u`.
///
/// Idle power is a large fraction of peak on real servers, which is why
/// consolidation saves energy (Barroso & Hölzle).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PowerModel {
    /// Power at zero utilization, watts.
    pub idle_watts: f64,
    /// Power at full utilization, watts.
    pub peak_watts: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            idle_watts: 160.0,
            peak_watts: 320.0,
        }
    }
}

impl PowerModel {
    /// Power draw at CPU utilization `u` in [0, 1].
    pub fn power(&self, u: f64) -> f64 {
        self.idle_watts + (self.peak_watts - self.idle_watts) * u.clamp(0.0, 1.0)
    }
}

/// Per-(batch, LS) pair measurements from the co-location experiments.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PairMeasurement {
    /// Batch throughput under PC3D relative to running alone (0..1).
    pub batch_utilization: f64,
    /// LS core busy fraction at its operating load (0..1).
    pub ls_core_util: f64,
    /// Batch core busy fraction under PC3D (reduced by napping).
    pub batch_core_util: f64,
}

/// One datacenter configuration's requirements for a mix.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScaleOutResult {
    /// Servers for the PC3D (co-located) datacenter.
    pub servers_pc3d: f64,
    /// Servers for the no-co-location datacenter at equal throughput.
    pub servers_no_colo: f64,
    /// Total power of the PC3D datacenter, watts.
    pub power_pc3d: f64,
    /// Total power of the no-co-location datacenter, watts.
    pub power_no_colo: f64,
    /// Energy efficiency of PC3D normalized to no-co-location
    /// (performance is equal by construction, so this is the power
    /// ratio `no_colo / pc3d`).
    pub efficiency_ratio: f64,
}

/// Analyzes one (LS, mix) deployment.
///
/// `machines` servers each host one LS instance plus one batch instance
/// under PC3D; `pairs` holds the measured behaviour of each of the mix's
/// batch applications against this LS service (deployed in equal
/// proportion). The no-co-location datacenter keeps the LS instances on
/// the `machines` servers and adds enough batch-only servers (running at
/// full utilization) to match the PC3D datacenter's batch throughput.
///
/// `cores` is the per-server core count; one core runs the LS app, one
/// the batch app, the rest idle (as in the paper's per-core pinning).
pub fn analyze(
    machines: f64,
    cores: usize,
    pairs: &[PairMeasurement],
    power: PowerModel,
) -> ScaleOutResult {
    assert!(!pairs.is_empty(), "need at least one pair measurement");
    let n = pairs.len() as f64;
    let mean_util: f64 = pairs.iter().map(|p| p.batch_utilization).sum::<f64>() / n;
    let mean_ls_core: f64 = pairs.iter().map(|p| p.ls_core_util).sum::<f64>() / n;
    let mean_batch_core: f64 = pairs.iter().map(|p| p.batch_core_util).sum::<f64>() / n;

    // Server counts at equal batch throughput.
    let servers_pc3d = machines;
    let extra = machines * mean_util;
    let servers_no_colo = machines + extra;

    // Power. Per-server CPU utilization averages over all cores.
    let c = cores as f64;
    let pc3d_server_util = (mean_ls_core + mean_batch_core) / c;
    let ls_only_util = mean_ls_core / c;
    let batch_only_util = 1.0 / c; // batch runs flat out on one core
    let power_pc3d = servers_pc3d * power.power(pc3d_server_util);
    let power_no_colo = machines * power.power(ls_only_util) + extra * power.power(batch_only_util);
    ScaleOutResult {
        servers_pc3d,
        servers_no_colo,
        power_pc3d,
        power_no_colo,
        efficiency_ratio: power_no_colo / power_pc3d,
    }
}

/// Looks up a mix by name.
pub fn mix_by_name(name: &str) -> Option<Mix> {
    MIXES.iter().copied().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(util: f64) -> PairMeasurement {
        PairMeasurement {
            batch_utilization: util,
            ls_core_util: 0.6,
            batch_core_util: util,
        }
    }

    #[test]
    fn mixes_match_table_iii() {
        assert_eq!(MIXES.len(), 3);
        let wl1 = mix_by_name("WL1").unwrap();
        assert!(wl1.batch_apps.contains(&"libquantum"));
        assert!(wl1.batch_apps.contains(&"bzip2"));
        let wl3 = mix_by_name("WL3").unwrap();
        assert!(wl3.batch_apps.contains(&"sledge"));
        assert!(mix_by_name("WL9").is_none());
    }

    #[test]
    fn power_model_linear() {
        let p = PowerModel::default();
        assert_eq!(p.power(0.0), 160.0);
        assert_eq!(p.power(1.0), 320.0);
        assert_eq!(p.power(0.5), 240.0);
        assert_eq!(p.power(2.0), 320.0, "clamped");
    }

    #[test]
    fn server_counts_track_utilization() {
        // Paper: 3.5k-8k extra servers for 10k machines, i.e. mean
        // utilization 0.35-0.8.
        let r = analyze(10_000.0, 4, &[pair(0.5); 4], PowerModel::default());
        assert_eq!(r.servers_pc3d, 10_000.0);
        assert!((r.servers_no_colo - 15_000.0).abs() < 1e-9);
        let r2 = analyze(10_000.0, 4, &[pair(0.8); 4], PowerModel::default());
        assert!((r2.servers_no_colo - 18_000.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_datacenter_is_more_efficient() {
        // With substantial idle power, consolidation must win, in the
        // paper's 18-34% band for reasonable utilizations.
        for util in [0.4, 0.6, 0.8] {
            let r = analyze(10_000.0, 4, &[pair(util); 4], PowerModel::default());
            assert!(
                r.efficiency_ratio > 1.05,
                "PC3D should be more efficient at util {util}: {r:?}"
            );
            assert!(r.efficiency_ratio < 1.6, "gain should be moderate: {r:?}");
        }
    }

    #[test]
    fn mixed_utilizations_average() {
        let pairs = [pair(0.2), pair(0.4), pair(0.6), pair(0.8)];
        let r = analyze(10_000.0, 4, &pairs, PowerModel::default());
        assert!((r.servers_no_colo - 15_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn empty_pairs_rejected() {
        let _ = analyze(10_000.0, 4, &[], PowerModel::default());
    }

    #[test]
    fn zero_idle_power_removes_consolidation_win() {
        // Sanity: with no idle power, energy tracks work exactly and
        // consolidation gains little.
        let power = PowerModel {
            idle_watts: 0.0,
            peak_watts: 300.0,
        };
        let r = analyze(10_000.0, 4, &[pair(0.6); 4], power);
        assert!(
            (r.efficiency_ratio - 1.0).abs() < 0.25,
            "little to gain without idle power: {}",
            r.efficiency_ratio
        );
    }
}
