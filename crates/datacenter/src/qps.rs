//! Cluster-level offered-load shapes: diurnal and bursty QPS curves.
//!
//! A [`QpsShape`] describes the total queries per second offered to one
//! server group, as a step function whose boundaries are aligned to the
//! cluster's epoch grid. The load balancer divides the group total among
//! however many servers it keeps active and feeds each server's
//! [`simos::LoadSchedule`] a constant slice until the next boundary, so
//! the shape is the single source of truth for when load changes.

use rand::{rngs::StdRng, Rng, SeedableRng};
use simos::LoadSchedule;

/// A piecewise-constant cluster-level QPS shape.
#[derive(Clone, Debug, PartialEq)]
pub struct QpsShape {
    /// `(start_second, qps)` steps, sorted, first at 0.
    steps: Vec<(f64, f64)>,
}

impl QpsShape {
    /// A constant offered load.
    pub fn constant(qps: f64) -> Self {
        QpsShape {
            steps: vec![(0.0, qps)],
        }
    }

    /// A shape from explicit `(start_second, qps)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, unsorted, or does not start at 0.
    pub fn steps(steps: Vec<(f64, f64)>) -> Self {
        assert!(!steps.is_empty(), "shape needs at least one step");
        assert_eq!(steps[0].0, 0.0, "shape must start at second 0");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "shape steps must be strictly sorted by time"
        );
        QpsShape { steps }
    }

    /// A diurnal curve: a raised cosine between `trough` and `peak`
    /// over `duration_secs`, completing `periods` full day-cycles,
    /// sampled onto steps of `step_secs` (the cluster epoch). `phase`
    /// in [0, 1) shifts the curve so different groups peak at
    /// different times of "day".
    pub fn diurnal(
        duration_secs: f64,
        peak: f64,
        trough: f64,
        periods: f64,
        phase: f64,
        step_secs: f64,
    ) -> Self {
        assert!(step_secs > 0.0 && duration_secs > 0.0);
        let mid = 0.5 * (peak + trough);
        let amp = 0.5 * (peak - trough);
        let mut steps = Vec::new();
        let n = (duration_secs / step_secs).ceil() as usize;
        for i in 0..n {
            let t = i as f64 * step_secs;
            // Sample mid-step so the step value is the segment average
            // of the underlying cosine to first order.
            let x = (t + 0.5 * step_secs) / duration_secs * periods + phase;
            let qps = mid - amp * (x * std::f64::consts::TAU).cos();
            steps.push((t, qps.max(0.0)));
        }
        QpsShape { steps }
    }

    /// A bursty curve: a `base` load with square bursts to `burst` qps
    /// at pseudo-random (seeded, reproducible) epoch-aligned offsets.
    /// Roughly `duty` of the duration is spent bursting.
    pub fn bursty(
        duration_secs: f64,
        base: f64,
        burst: f64,
        duty: f64,
        step_secs: f64,
        seed: u64,
    ) -> Self {
        assert!(step_secs > 0.0 && duration_secs > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = Vec::new();
        let n = (duration_secs / step_secs).ceil() as usize;
        for i in 0..n {
            let t = i as f64 * step_secs;
            let qps = if rng.gen_bool(duty.clamp(0.0, 1.0)) {
                burst
            } else {
                base
            };
            steps.push((t, qps));
        }
        QpsShape { steps }
    }

    /// The underlying `(start_second, qps)` steps.
    pub fn step_points(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Step boundaries in seconds (where a balancer must re-plan).
    pub fn boundaries(&self) -> impl Iterator<Item = f64> + '_ {
        self.steps.iter().map(|&(t, _)| t)
    }

    /// Offered QPS at time `t` seconds.
    pub fn qps_at(&self, t: f64) -> f64 {
        let mut current = self.steps[0].1;
        for &(start, qps) in &self.steps {
            if t >= start {
                current = qps;
            } else {
                break;
            }
        }
        current
    }

    /// Mean QPS over `[0, duration_secs)`.
    pub fn mean_qps(&self, duration_secs: f64) -> f64 {
        let mut total = 0.0;
        for (i, &(start, qps)) in self.steps.iter().enumerate() {
            let end = self
                .steps
                .get(i + 1)
                .map_or(duration_secs, |n| n.0)
                .min(duration_secs);
            if end > start {
                total += qps * (end - start);
            }
        }
        total / duration_secs
    }

    /// The whole shape scaled by `share`, as a per-server
    /// [`LoadSchedule`] — used when one server carries a fixed fraction
    /// of the group (no balancer in the loop).
    pub fn to_load(&self, share: f64) -> LoadSchedule {
        LoadSchedule::steps(self.steps.iter().map(|&(t, q)| (t, q * share)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peaks_and_troughs() {
        let s = QpsShape::diurnal(240.0, 100.0, 20.0, 1.0, 0.0, 1.0);
        // Cosine dip at the start, peak mid-run.
        assert!(s.qps_at(0.0) < 30.0, "trough at t=0: {}", s.qps_at(0.0));
        assert!(s.qps_at(120.0) > 90.0, "peak mid-run: {}", s.qps_at(120.0));
        let mean = s.mean_qps(240.0);
        assert!((mean - 60.0).abs() < 2.0, "mean ~midpoint: {mean}");
        // Epoch-aligned boundaries.
        assert_eq!(s.step_points().len(), 240);
        assert_eq!(s.boundaries().next(), Some(0.0));
    }

    #[test]
    fn phase_shifts_the_peak() {
        let a = QpsShape::diurnal(100.0, 80.0, 10.0, 1.0, 0.0, 1.0);
        let b = QpsShape::diurnal(100.0, 80.0, 10.0, 1.0, 0.5, 1.0);
        assert!(b.qps_at(1.0) > 70.0, "half-phase group peaks at t=0");
        assert!(a.qps_at(1.0) < 20.0);
    }

    #[test]
    fn bursty_is_reproducible_and_two_level() {
        let a = QpsShape::bursty(120.0, 10.0, 90.0, 0.3, 1.0, 7);
        let b = QpsShape::bursty(120.0, 10.0, 90.0, 0.3, 1.0, 7);
        assert_eq!(a, b, "same seed, same shape");
        let c = QpsShape::bursty(120.0, 10.0, 90.0, 0.3, 1.0, 8);
        assert_ne!(a, c, "different seed, different bursts");
        assert!(a.step_points().iter().all(|&(_, q)| q == 10.0 || q == 90.0));
        let frac = a.step_points().iter().filter(|&&(_, q)| q == 90.0).count() as f64 / 120.0;
        assert!((0.1..0.6).contains(&frac), "burst duty {frac}");
    }

    #[test]
    fn to_load_scales_by_share() {
        let s = QpsShape::steps(vec![(0.0, 100.0), (10.0, 50.0)]);
        let l = s.to_load(0.1);
        assert!((l.qps_at(5.0) - 10.0).abs() < 1e-12);
        assert!((l.qps_at(15.0) - 5.0).abs() < 1e-12);
    }
}
