#![warn(missing_docs)]

//! In-tree, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 API its micro-benchmarks use:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with [`Throughput`], and [`Bencher::iter`] /
//! [`Bencher::iter_batched`].
//!
//! Measurement is deliberately simple: a short warm-up, then timed
//! batches until ~`CRITERION_SHIM_MS` milliseconds (default 300) elapse,
//! reporting the median batch's ns/iteration plus derived throughput.
//! There is no statistical analysis, HTML report, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched iteration sizes its batches (accepted, not interpreted).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures for one benchmark.
pub struct Bencher {
    total_ns: u128,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            total_ns: 0,
            iters: 0,
            budget,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up plus auto-calibrated batching.
        let start = Instant::now();
        black_box(routine());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 1 << 20) as u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.total_ns += t.elapsed().as_nanos();
            self.iters += per_batch;
        }
        if self.iters == 0 {
            self.total_ns = probe.as_nanos();
            self.iters = 1;
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total_ns += t.elapsed().as_nanos();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.total_ns as f64 / self.iters as f64
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<44} {human:>12}/iter{extra}");
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SHIM_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, b.ns_per_iter(), None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            b.ns_per_iter(),
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The libtest harness passes flags like `--bench`; accept and
            // ignore them so `cargo bench`/`cargo test` both work.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters > 0);
        assert!(b.ns_per_iter() > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn groups_report_without_panicking() {
        std::env::set_var("CRITERION_SHIM_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }
}
