#![warn(missing_docs)]

//! # `simos` — the simulated operating system
//!
//! Owns processes, cores, time, and the observation/control surface that
//! the protean runtime uses, standing in for Linux in the paper's stack:
//!
//! * **Loader** ([`process`]): turns a [`visa::Image`] into a pinned
//!   process with its own address space.
//! * **Scheduler** ([`Os::advance`]): quantum-interleaves the cores of the
//!   shared-LLC machine; supports **napping** (duty-cycle throttling, the
//!   ReQoS mechanism), **freezing** (the flux measurement of Section IV-F),
//!   and **runtime-work accounting** (compilation cycles charged to a
//!   core, so Figures 5-7's overhead experiments are meaningful).
//! * **ptrace-like PC sampling** ([`Os::sample_pc`]) and **perf-counter
//!   reads** ([`Os::counters`]) for introspection/extrospection.
//! * **Shared-memory pokes** ([`Os::write_mem`]) — how the EVT manager
//!   redirects edges with a single 8-byte write.
//! * **Code-cache mapping** ([`Os::append_text`]) — how new code variants
//!   become reachable.
//! * **Load generation** ([`loadgen`]): offered-QPS schedules for
//!   latency-sensitive servers that park in [`visa::Op::Wait`].
//!
//! # Example
//!
//! ```
//! use simos::{Os, OsConfig};
//! use visa::{Image, Op, PReg};
//!
//! // A two-instruction program: set a register, halt.
//! let image = Image {
//!     name: "demo".into(),
//!     entry: 0,
//!     text: vec![Op::Movi { dst: PReg(0), imm: 42 }, Op::Halt],
//!     data: vec![0u8; 64],
//!     funcs: vec![],
//!     globals: vec![],
//!     evt: vec![],
//!     meta: None,
//! };
//! let mut os = Os::new(OsConfig::small());
//! let pid = os.spawn(&image, 0);
//! os.advance(1_000);
//! assert!(matches!(os.status(pid), machine::ExecStatus::Halted));
//! assert_eq!(os.counters(pid).instructions, 2);
//! ```

pub mod loadgen;
pub mod os;
pub mod process;

pub use loadgen::LoadSchedule;
pub use os::{LatencyStats, ObsEvent, ObsEventKind, ObsFaults, Os, OsConfig};
pub use process::{Pid, Process};

/// Number of application-metric channels each process exposes.
pub const METRIC_CHANNELS: usize = 8;
