//! The OS kernel: scheduling, time, and the runtime's control surface.

use std::cell::RefCell;
use std::collections::VecDeque;

use machine::{
    exec, BtConfig, CostModel, ExecEnv, ExecStatus, MachineConfig, MemorySystem, PerfCounters,
};
use visa::{Image, Op, PReg};

use crate::loadgen::LoadSchedule;
use crate::process::{Pid, Process};

/// OS configuration.
#[derive(Clone, Debug)]
pub struct OsConfig {
    /// Machine the OS runs on.
    pub machine: MachineConfig,
    /// Scheduling quantum in cycles (granularity of core interleaving and
    /// of nap decisions).
    pub quantum: u64,
    /// Nap duty-cycle period in cycles. Nap intensity resolution is
    /// `quantum / nap_period`.
    pub nap_period: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        let machine = MachineConfig::default();
        OsConfig {
            machine,
            quantum: 1_000,
            nap_period: 100_000,
        }
    }
}

impl OsConfig {
    /// Small configuration for unit tests.
    pub fn small() -> Self {
        OsConfig {
            machine: MachineConfig::small(),
            quantum: 500,
            nap_period: 50_000,
        }
    }

    /// The standard experiment configuration: the paper's topology with
    /// capacities scaled to the simulated time base (see
    /// [`MachineConfig::scaled`]).
    pub fn scaled() -> Self {
        OsConfig {
            machine: MachineConfig::scaled(),
            ..OsConfig::default()
        }
    }
}

/// Deterministic observation-fault injection: degrades the ptrace/perf
/// surface the way a loaded production kernel does — samples that fail,
/// samples that land on garbage addresses, and counter reads that come
/// back perturbed. Process *execution* is never affected; only what the
/// runtime observes. All faults are derived by hashing `(seed, now, pid)`,
/// so a given seed reproduces the exact same fault schedule.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ObsFaults {
    /// Seed for the per-read fault draws.
    pub seed: u64,
    /// Probability a PC sample is dropped (reads as an unmappable,
    /// out-of-range address, like a failed `ptrace` peek).
    pub pc_drop: f64,
    /// Probability a PC sample is garbled to a random text address.
    pub pc_garble: f64,
    /// Probability a counter snapshot is perturbed (up to ±25% on the
    /// instruction, branch, and LLC-miss counters).
    pub counter_garble: f64,
}

impl ObsFaults {
    /// No observation faults (all rates zero).
    pub fn none(seed: u64) -> Self {
        ObsFaults {
            seed,
            pc_drop: 0.0,
            pc_garble: 0.0,
            counter_garble: 0.0,
        }
    }
}

/// Outcome of one kernel-side observation delivery (a ptrace-style PC
/// sample or an HPM counter read), as recorded by the kernel trace ring.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A PC sample delivered truthfully.
    PcSample,
    /// A PC sample dropped (failed ptrace peek; reads as `u32::MAX`).
    PcSampleDropped,
    /// A PC sample garbled to an arbitrary text address.
    PcSampleGarbled,
    /// A counter snapshot delivered truthfully.
    CounterRead,
    /// A counter snapshot perturbed by [`ObsFaults`].
    CounterGarbled,
}

impl ObsEventKind {
    /// Stable kebab-case name (used by trace exporters).
    pub fn name(self) -> &'static str {
        match self {
            ObsEventKind::PcSample => "pc-sample",
            ObsEventKind::PcSampleDropped => "pc-sample-dropped",
            ObsEventKind::PcSampleGarbled => "pc-sample-garbled",
            ObsEventKind::CounterRead => "counter-read",
            ObsEventKind::CounterGarbled => "counter-garbled",
        }
    }
}

/// One kernel-side observation event: what the ptrace/perf surface
/// delivered to whoever asked, stamped with the simulated cycle (never a
/// wall clock, so same-seed runs record bit-identical streams).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulated cycle at which the observation was served.
    pub cycle: u64,
    /// Monotone sequence number within the kernel ring (orders events
    /// that share a cycle).
    pub seq: u64,
    /// The observed process.
    pub pid: Pid,
    /// What was delivered.
    pub kind: ObsEventKind,
}

/// Fixed-capacity ring of kernel observation events. Overflow drops the
/// *oldest* event and bumps the drop counter, so surviving events stay in
/// emission order.
#[derive(Clone, Debug)]
struct ObsTrace {
    events: VecDeque<ObsEvent>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
}

impl ObsTrace {
    fn new(cap: usize) -> Self {
        ObsTrace {
            events: VecDeque::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
            next_seq: 0,
        }
    }

    fn record(&mut self, cycle: u64, pid: Pid, kind: ObsEventKind) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ObsEvent {
            cycle,
            seq: self.next_seq,
            pid,
            kind,
        });
        self.next_seq += 1;
    }
}

/// SplitMix64 finalizer: the stateless hash behind every observation-
/// fault draw.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps 64 hash bits to a unit-interval draw.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Query-latency statistics for a latency-sensitive process.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LatencyStats {
    /// Median sojourn time in cycles.
    pub p50: u64,
    /// 99th-percentile sojourn time in cycles.
    pub p99: u64,
    /// Mean sojourn time in cycles.
    pub mean: f64,
    /// Number of samples in the window.
    pub count: usize,
}

/// The simulated operating system.
pub struct Os {
    config: OsConfig,
    mem: MemorySystem,
    procs: Vec<Process>,
    /// Which process (if any) is pinned to each core.
    core_proc: Vec<Option<Pid>>,
    /// Pending runtime-work cycles per core (consumed before the pinned
    /// process runs — "same core" runtime placement steals these cycles).
    runtime_pending: Vec<u64>,
    /// Total runtime-work cycles consumed per core.
    runtime_consumed: Vec<u64>,
    /// Observation-fault injection, if enabled.
    obs_faults: Option<ObsFaults>,
    /// Kernel-side observation trace ring, if enabled. `RefCell` because
    /// the observation surface ([`sample_pc`](Os::sample_pc),
    /// [`counters`](Os::counters)) is `&self` — recording a delivery must
    /// not change what any caller can do with the OS.
    obs_trace: RefCell<Option<ObsTrace>>,
    now: u64,
}

impl Os {
    /// Boots an OS on the configured machine.
    pub fn new(config: OsConfig) -> Self {
        let cores = config.machine.cores;
        let mem = MemorySystem::new(&config.machine);
        Os {
            config,
            mem,
            procs: Vec::new(),
            core_proc: vec![None; cores],
            runtime_pending: vec![0; cores],
            runtime_consumed: vec![0; cores],
            obs_faults: None,
            obs_trace: RefCell::new(None),
            now: 0,
        }
    }

    /// The OS configuration.
    pub fn config(&self) -> &OsConfig {
        &self.config
    }

    /// Current time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current time in simulated seconds.
    pub fn now_seconds(&self) -> f64 {
        self.config.machine.cycles_to_seconds(self.now)
    }

    /// Loads `image` as a new process pinned to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already has a pinned process.
    pub fn spawn(&mut self, image: &Image, core: usize) -> Pid {
        assert!(core < self.core_proc.len(), "core {core} out of range");
        assert!(
            self.core_proc[core].is_none(),
            "core {core} already runs {:?}",
            self.core_proc[core]
        );
        let pid = Pid(self.procs.len() as u16 + 1); // space 0 = kernel
        let proc_ = Process::load(image, pid, core);
        self.core_proc[core] = Some(pid);
        self.procs.push(proc_);
        pid
    }

    /// Loads `image` under a DynamoRIO-style binary translator (the
    /// Figure 4 baseline): all execution flows from a translation cache
    /// with per-block translation and per-branch dispatch costs.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already pinned.
    pub fn spawn_with_bt(&mut self, image: &Image, core: usize, bt: BtConfig) -> Pid {
        let pid = self.spawn(image, core);
        let i = self.idx(pid);
        let ctx = std::mem::replace(&mut self.procs[i].ctx, machine::ExecContext::new(0, 0, 0));
        self.procs[i].ctx = ctx.with_binary_translation(bt);
        pid
    }

    /// Total binary-translation overhead cycles charged to a process, if
    /// it runs under the translator.
    pub fn bt_overhead(&self, pid: Pid) -> Option<u64> {
        self.proc(pid).ctx().bt_overhead()
    }

    /// Terminates a process and frees its core.
    pub fn kill(&mut self, pid: Pid) {
        let core = self.proc(pid).core();
        self.core_proc[core] = None;
        // Keep the process slot (counters remain readable post-mortem) but
        // detach it from scheduling by freezing.
        self.proc_mut(pid).frozen = true;
    }

    fn idx(&self, pid: Pid) -> usize {
        pid.index() - 1
    }

    /// Immutable access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was never spawned.
    pub fn proc(&self, pid: Pid) -> &Process {
        &self.procs[self.idx(pid)]
    }

    fn proc_mut(&mut self, pid: Pid) -> &mut Process {
        let i = self.idx(pid);
        &mut self.procs[i]
    }

    /// All spawned processes.
    pub fn procs(&self) -> &[Process] {
        &self.procs
    }

    // ----------------------------------------------------------------
    // Observation surface (ptrace / perf)
    // ----------------------------------------------------------------

    /// Enables (or, with `None`, disables) deterministic observation
    /// faults on the ptrace/perf surface. See [`ObsFaults`].
    pub fn set_obs_faults(&mut self, faults: Option<ObsFaults>) {
        self.obs_faults = faults;
    }

    /// The active observation-fault configuration, if any.
    pub fn obs_faults(&self) -> Option<ObsFaults> {
        self.obs_faults
    }

    /// Enables the kernel observation trace with a ring of `capacity`
    /// events (or disables and clears it with `None`). Every subsequent
    /// PC sample and counter read records its delivery outcome,
    /// cycle-stamped; the ring drops its *oldest* events on overflow and
    /// counts the drops ([`obs_trace_dropped`](Os::obs_trace_dropped)).
    pub fn set_obs_trace(&mut self, capacity: Option<usize>) {
        *self.obs_trace.borrow_mut() = capacity.map(ObsTrace::new);
    }

    /// Whether the kernel observation trace is recording.
    pub fn obs_trace_enabled(&self) -> bool {
        self.obs_trace.borrow().is_some()
    }

    /// The surviving kernel observation events, oldest first.
    pub fn obs_trace_events(&self) -> Vec<ObsEvent> {
        self.obs_trace
            .borrow()
            .as_ref()
            .map(|t| t.events.iter().copied().collect())
            .unwrap_or_default()
    }

    /// How many kernel observation events overflowed the ring.
    pub fn obs_trace_dropped(&self) -> u64 {
        self.obs_trace.borrow().as_ref().map_or(0, |t| t.dropped)
    }

    /// Records one observation delivery into the kernel ring, if enabled.
    fn obs_record(&self, pid: Pid, kind: ObsEventKind) {
        if let Some(t) = self.obs_trace.borrow_mut().as_mut() {
            t.record(self.now, pid, kind);
        }
    }

    /// One deterministic fault draw for the current `(now, pid, salt)`:
    /// returns the unit-interval roll plus independent hash bits for
    /// value garbling.
    fn obs_roll(&self, faults: &ObsFaults, pid: Pid, salt: u64) -> (f64, u64) {
        let h = splitmix(
            faults.seed ^ self.now.wrapping_mul(0x9e37_79b9) ^ (u64::from(pid.0) << 48) ^ salt,
        );
        (unit(h), splitmix(h))
    }

    /// Samples the process's program counter (ptrace-style). Subject to
    /// [`ObsFaults`]: a dropped sample reads as `u32::MAX` (an address no
    /// symbolizer can map, like a failed ptrace peek), a garbled sample
    /// lands on an arbitrary text address.
    pub fn sample_pc(&self, pid: Pid) -> u32 {
        let pc = self.proc(pid).ctx().pc();
        let Some(f) = self.obs_faults else {
            self.obs_record(pid, ObsEventKind::PcSample);
            return pc;
        };
        let (roll, bits) = self.obs_roll(&f, pid, 0x5a5a);
        if roll < f.pc_drop {
            self.obs_record(pid, ObsEventKind::PcSampleDropped);
            return u32::MAX;
        }
        if roll < f.pc_drop + f.pc_garble {
            self.obs_record(pid, ObsEventKind::PcSampleGarbled);
            let len = self.proc(pid).text.len().max(1) as u64;
            return (bits % len) as u32;
        }
        self.obs_record(pid, ObsEventKind::PcSample);
        pc
    }

    /// Reads the process's hardware performance counters. Subject to
    /// [`ObsFaults`]: a garbled read perturbs the instruction, branch,
    /// and LLC-miss counts by up to ±25% (the counters themselves keep
    /// advancing truthfully — only this snapshot lies).
    pub fn counters(&self, pid: Pid) -> PerfCounters {
        let mut c = self.proc(pid).counters();
        let Some(f) = self.obs_faults else {
            self.obs_record(pid, ObsEventKind::CounterRead);
            return c;
        };
        let (roll, bits) = self.obs_roll(&f, pid, 0xc7c7);
        if roll < f.counter_garble {
            self.obs_record(pid, ObsEventKind::CounterGarbled);
            // Scale by a factor in [0.75, 1.25) derived from hash bits.
            let scale = |v: u64, b: u64| {
                let num = 768 + (b & 0x1ff); // [768, 1280) / 1024
                (v as u128 * u128::from(num) / 1024) as u64
            };
            c.instructions = scale(c.instructions, bits);
            c.branches = scale(c.branches, bits >> 9);
            c.llc_misses = scale(c.llc_misses, bits >> 18);
        } else {
            self.obs_record(pid, ObsEventKind::CounterRead);
        }
        c
    }

    /// Execution status of the process.
    pub fn status(&self, pid: Pid) -> ExecStatus {
        self.proc(pid).ctx().status()
    }

    /// Decoded-block cache effectiveness counters for a process. Unlike
    /// [`counters`](Os::counters) these are simulator-internal (they
    /// measure the interpreter, not the simulated machine), so
    /// observation faults never garble them.
    pub fn decode_stats(&self, pid: Pid) -> machine::DecodeStats {
        self.proc(pid).decode_stats()
    }

    /// Forces (or releases) the interpreter's always-decode fallback for
    /// one process: every dispatch re-decodes its block, uncached and
    /// unfused. Simulated results are bit-identical in either mode —
    /// this is the differential-testing reference path, not a semantic
    /// switch.
    pub fn set_decode_fallback(&mut self, pid: Pid, on: bool) {
        self.proc_mut(pid).blocks.set_fallback(on);
    }

    /// Cumulative application metric on `channel`.
    pub fn app_metric(&self, pid: Pid, channel: u8) -> i64 {
        self.proc(pid).metric(channel)
    }

    /// Tail-latency statistics over the process's recent queries (the
    /// paper's "99th percentile tail query latency" reporting interface).
    /// Returns `None` for batch processes or before any query completed.
    pub fn latency_stats(&self, pid: Pid) -> Option<LatencyStats> {
        let mut samples: Vec<u64> = self.proc(pid).latency_samples().collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        Some(LatencyStats {
            p50: pick(0.5),
            p99: pick(0.99),
            mean,
            count: samples.len(),
        })
    }

    /// Queued-but-unserved queries plus the one in service, if any — the
    /// instantaneous per-server queue depth a cluster scheduler samples.
    pub fn queue_depth(&self, pid: Pid) -> usize {
        let p = self.proc(pid);
        p.arrival_queue.len() + usize::from(p.in_service.is_some())
    }

    /// Shared-LLC lines currently owned by `pid`.
    pub fn llc_occupancy(&self, pid: Pid) -> usize {
        let space = u64::from(pid.0);
        let shift = 40 - self.config.machine.line_bytes.trailing_zeros();
        self.mem
            .llc_occupancy_where(move |line| (line >> shift) == space)
    }

    /// Reads `len` bytes of process data memory (shared-memory mapping).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (the runtime maps only valid
    /// regions).
    pub fn read_mem(&self, pid: Pid, addr: u64, len: usize) -> &[u8] {
        let p = self.proc(pid);
        &p.data[addr as usize..addr as usize + len]
    }

    /// Writes bytes into process data memory. An 8-byte aligned write is
    /// atomic with respect to process execution (the process only runs
    /// between quanta), which is what EVT redirection relies on.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_mem(&mut self, pid: Pid, addr: u64, bytes: &[u8]) {
        let p = self.proc_mut(pid);
        p.data[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
    }

    /// Convenience: atomically writes a u64 (EVT slot update).
    pub fn write_u64(&mut self, pid: Pid, addr: u64, value: u64) {
        self.write_mem(pid, addr, &value.to_le_bytes());
    }

    /// Convenience: reads a u64.
    pub fn read_u64(&self, pid: Pid, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_mem(pid, addr, 8).try_into().expect("8 bytes"))
    }

    /// Appends code to the process's text space (the shared code cache),
    /// returning the address of the first appended instruction.
    pub fn append_text(&mut self, pid: Pid, ops: &[Op]) -> u32 {
        let p = self.proc_mut(pid);
        let base = p.text.len() as u32;
        p.text.extend_from_slice(ops);
        p.text_gen += 1;
        base
    }

    /// Total text length (image + code cache) of a process.
    pub fn text_len(&self, pid: Pid) -> u32 {
        self.proc(pid).text.len() as u32
    }

    /// Reads `len` instructions of process text (the mapping a runtime
    /// uses to checksum its code cache before dispatching into it).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_text(&self, pid: Pid, addr: u32, len: u32) -> &[Op] {
        &self.proc(pid).text[addr as usize..(addr + len) as usize]
    }

    /// Corrupts one instruction of process text — the fault-injection
    /// analogue of a flipped byte in the (shared, writable) code-cache
    /// mapping. The op at `addr` is replaced with a garbage immediate
    /// load derived from `garble`. Returns `false` (and does nothing) if
    /// `addr` is out of range.
    ///
    /// Intended for code-cache addresses (`addr >= image_text_len`);
    /// corrupting image text models a far more severe fault and is
    /// allowed but not something the self-healing layer can repair.
    pub fn corrupt_text(&mut self, pid: Pid, addr: u32, garble: u64) -> bool {
        let p = self.proc_mut(pid);
        let Some(slot) = p.text.get_mut(addr as usize) else {
            return false;
        };
        *slot = Op::Movi {
            dst: PReg((garble % 8) as u8),
            imm: (garble >> 3) as i64,
        };
        p.text_gen += 1;
        true
    }

    // ----------------------------------------------------------------
    // OSR park/transfer surface
    // ----------------------------------------------------------------

    /// Arms an OSR park request on `pid`: the context stops with
    /// [`ExecStatus::OsrParked`] immediately before the `hit`-th entry
    /// (1-based) into the block at `pc`, counted from now. Parked
    /// contexts idle in the scheduler (no cycles consumed, never woken
    /// by arrivals) until resumed or disarmed.
    pub fn osr_arm(&mut self, pid: Pid, pc: u32, hit: u64) {
        self.proc_mut(pid).ctx.osr_arm(pc, hit);
    }

    /// Cancels a pending or parked OSR request; a parked context
    /// resumes at the park PC with its frame untouched.
    pub fn osr_disarm(&mut self, pid: Pid) {
        let p = self.proc_mut(pid);
        p.ctx.osr_disarm();
        p.osr_parked_at = None;
    }

    /// PC of `pid`'s armed OSR request, if any.
    pub fn osr_armed(&self, pid: Pid) -> Option<u32> {
        self.proc(pid).ctx().osr_armed()
    }

    /// Entries into the armed park PC observed since arming.
    pub fn osr_hits(&self, pid: Pid) -> u64 {
        self.proc(pid).ctx().osr_hits()
    }

    /// True if `pid` is stopped at an OSR park point.
    pub fn is_osr_parked(&self, pid: Pid) -> bool {
        self.proc(pid).ctx().is_osr_parked()
    }

    /// Cycle at which `pid` parked, if it is currently parked (the
    /// park-to-resume latency baseline).
    pub fn osr_parked_since(&self, pid: Pid) -> Option<u64> {
        self.proc(pid).osr_parked_at
    }

    /// The innermost frame's register window of a parked context (what
    /// the runtime snapshots before a transfer so a detected misapply
    /// can be rolled back exactly).
    pub fn osr_frame(&self, pid: Pid) -> &[i64] {
        self.proc(pid).ctx().frame_regs()
    }

    /// Applies a transfer recipe to `pid`'s parked frame: zero-fill,
    /// then `moves` (`dst ← src` from the old window), then `consts` —
    /// the interpreter's transfer order. The context stays parked for
    /// post-apply verification. Returns false if not parked.
    pub fn osr_apply(&mut self, pid: Pid, moves: &[(PReg, PReg)], consts: &[(PReg, i64)]) -> bool {
        self.proc_mut(pid).ctx.osr_apply(moves, consts)
    }

    /// Overwrites `pid`'s parked frame window with a saved snapshot
    /// (misapply rollback). Returns false if not parked or the snapshot
    /// is not exactly one frame window.
    pub fn osr_restore(&mut self, pid: Pid, window: &[i64]) -> bool {
        self.proc_mut(pid).ctx.osr_restore(window)
    }

    /// Resumes a parked context at `target` and disarms the request.
    /// This is a pure context operation — no text mutation, no
    /// generation bump — so decoded blocks stay valid, exactly like an
    /// EVT patch. Returns false if not parked.
    pub fn osr_resume(&mut self, pid: Pid, target: u32) -> bool {
        let p = self.proc_mut(pid);
        let ok = p.ctx.osr_resume(target);
        if ok {
            p.osr_parked_at = None;
        }
        ok
    }

    // ----------------------------------------------------------------
    // Control surface
    // ----------------------------------------------------------------

    /// Sets the nap intensity (fraction of time descheduled) in [0, 1].
    pub fn set_nap(&mut self, pid: Pid, intensity: f64) {
        self.proc_mut(pid).nap_intensity = intensity.clamp(0.0, 1.0);
    }

    /// Freezes or thaws a process (the flux measurement mechanism: freeze
    /// the host briefly and observe co-runners running alone).
    pub fn set_frozen(&mut self, pid: Pid, frozen: bool) {
        self.proc_mut(pid).frozen = frozen;
    }

    /// Attaches an offered-load schedule; the process should park in
    /// [`Op::Wait`] between work items.
    pub fn set_load(&mut self, pid: Pid, schedule: LoadSchedule) {
        self.proc_mut(pid).load = Some(schedule);
    }

    /// Charges `cycles` of runtime work (e.g. dynamic compilation) to a
    /// core. If a process is pinned there, the work steals its cycles.
    pub fn charge_runtime(&mut self, core: usize, cycles: u64) {
        self.runtime_pending[core] += cycles;
    }

    /// Total runtime-work cycles consumed on `core` so far.
    pub fn runtime_consumed(&self, core: usize) -> u64 {
        self.runtime_consumed[core]
    }

    /// Total runtime-work cycles consumed across all cores.
    pub fn runtime_consumed_total(&self) -> u64 {
        self.runtime_consumed.iter().sum()
    }

    /// Total core-cycles elapsed (cores × time), the denominator of
    /// "fraction of server cycles" plots.
    pub fn server_cycles(&self) -> u64 {
        self.now * self.core_proc.len() as u64
    }

    // ----------------------------------------------------------------
    // Scheduling
    // ----------------------------------------------------------------

    /// Advances simulated time by `cycles`, interleaving all cores at
    /// quantum granularity.
    pub fn advance(&mut self, cycles: u64) {
        let end = self.now + cycles;
        // The per-quantum wall-time window is only needed to integrate
        // offered-load schedules; batch-only runs skip the conversions.
        let any_load = self.procs.iter().any(|p| p.load.is_some());
        while self.now < end {
            let q = self.config.quantum.min(end - self.now);
            let (t0, t1) = if any_load {
                (
                    self.config.machine.cycles_to_seconds(self.now),
                    self.config.machine.cycles_to_seconds(self.now + q),
                )
            } else {
                (0.0, 0.0)
            };
            for core in 0..self.core_proc.len() {
                let mut budget = q;
                // Runtime work shares the core with the pinned process.
                // When both want the core, scheduling is fair (half the
                // quantum each) rather than preemptive — a saturated
                // same-core compiler halves the host instead of starving
                // it, as on a real OS.
                if self.runtime_pending[core] > 0 {
                    let cap = if self.core_proc[core].is_some() {
                        q / 2
                    } else {
                        q
                    };
                    let used = self.runtime_pending[core].min(cap);
                    self.runtime_pending[core] -= used;
                    self.runtime_consumed[core] += used;
                    budget -= used;
                }
                let Some(pid) = self.core_proc[core] else {
                    continue;
                };
                let i = pid.index() - 1;
                // Split borrows: process vs memory system.
                let (procs, mem) = (&mut self.procs, &mut self.mem);
                let p = &mut procs[i];
                // Integrate offered load over this quantum. Whole arrivals
                // are timestamped for latency accounting; a bounded queue
                // sheds excess (an overloaded server drops, it does not
                // accumulate unbounded backlog).
                if let Some(load) = &p.load {
                    p.pending_work += load.arrivals_between(t0, t1);
                    while p.pending_work >= 1.0 && p.arrival_queue.len() < 64 {
                        p.pending_work -= 1.0;
                        p.arrival_queue.push_back(self.now);
                    }
                    if p.pending_work >= 1.0 {
                        p.pending_work = p.pending_work.fract(); // shed
                    }
                }
                if budget == 0 {
                    continue;
                }
                if p.frozen {
                    p.napped_cycles += budget;
                    continue;
                }
                let napped = {
                    let intensity = p.nap_intensity;
                    if intensity <= 0.0 {
                        false
                    } else if intensity >= 1.0 {
                        true
                    } else {
                        let phase = (self.now % self.config.nap_period) as f64
                            / self.config.nap_period as f64;
                        phase < intensity
                    }
                };
                if napped {
                    p.napped_cycles += budget;
                    continue;
                }
                // Run, waking a parked server while work is pending.
                let budget0 = budget;
                loop {
                    if !p.ctx.is_running() {
                        if p.ctx.status() == ExecStatus::Waiting {
                            if let Some(arrived) = p.arrival_queue.pop_front() {
                                p.in_service = Some(arrived);
                                p.ctx.wake();
                            } else {
                                p.idle_cycles += budget;
                                break;
                            }
                        } else {
                            p.idle_cycles += budget;
                            break;
                        }
                    }
                    let mut env = ExecEnv {
                        text: &p.text,
                        text_gen: p.text_gen,
                        blocks: &mut p.blocks,
                        data: &mut p.data,
                        mem,
                        core,
                        counters: &mut p.counters,
                        costs: CostModel::default(),
                    };
                    let res = exec::run(&mut p.ctx, &mut env, budget);
                    budget = budget.saturating_sub(res.cycles);
                    // Drain application metrics.
                    for (ch, v) in p.ctx.reports.drain(..) {
                        p.metrics[ch as usize % crate::METRIC_CHANNELS] += v;
                    }
                    if matches!(res.stop, exec::StopReason::OsrParked) && p.osr_parked_at.is_none()
                    {
                        // Timestamp the park at the cycle it happened
                        // (quantum start plus cycles consumed so far).
                        p.osr_parked_at = Some(self.now + (budget0 - budget));
                    }
                    if matches!(res.stop, exec::StopReason::Waiting) {
                        // A query completed: record its sojourn time.
                        if let Some(arrived) = p.in_service.take() {
                            if p.latency_samples.len() >= 1024 {
                                p.latency_samples.pop_front();
                            }
                            p.latency_samples
                                .push_back(self.now.saturating_sub(arrived));
                        }
                    }
                    if budget == 0 || !matches!(res.stop, exec::StopReason::Waiting) {
                        break;
                    }
                }
            }
            self.now += q;
        }
    }

    /// Advances by a simulated duration in seconds.
    pub fn advance_seconds(&mut self, secs: f64) {
        let cycles = self.config.machine.seconds_to_cycles(secs);
        self.advance(cycles);
    }

    /// Fast-forwards simulated time by `cycles` without running the
    /// quantum loop, provided nothing could possibly execute over the
    /// span. Returns `false` (and advances nothing) when any core might
    /// do work, in which case the caller must use [`advance`](Os::advance).
    ///
    /// The skip replicates `advance`'s accounting exactly — frozen
    /// processes accrue `napped_cycles`, everything else accrues
    /// `idle_cycles` — so a skipped span is bit-identical to a stepped
    /// one. That invariant is what lets a cluster simulator park a
    /// server's cycle-box and later reconcile it with a server that
    /// idled through the same span quantum by quantum.
    pub fn skip_idle(&mut self, cycles: u64) -> bool {
        if cycles == 0 {
            return true;
        }
        // Pending runtime work would consume core cycles.
        if self.runtime_pending.iter().any(|&c| c > 0) {
            return false;
        }
        let t0 = self.config.machine.cycles_to_seconds(self.now);
        let t1 = self.config.machine.cycles_to_seconds(self.now + cycles);
        for &pid in self.core_proc.iter().flatten() {
            let p = &self.procs[pid.index() - 1];
            if p.frozen {
                continue; // accrues napped_cycles regardless of state
            }
            // A nap duty cycle would split the span between napped and
            // idle accounting; don't try to replicate the phase math.
            if p.nap_intensity > 0.0 {
                return false;
            }
            if let Some(load) = &p.load {
                // Exact piecewise integration of a non-negative rate:
                // a whole-span integral of exactly zero means every
                // sub-quantum integral is exactly zero too, so skipping
                // leaves `pending_work` bit-identical.
                if load.arrivals_between(t0, t1) != 0.0 || p.pending_work >= 1.0 {
                    return false;
                }
            }
            let runnable = p.ctx.is_running()
                || (p.ctx.status() == ExecStatus::Waiting && !p.arrival_queue.is_empty());
            if runnable {
                return false;
            }
        }
        // Nothing can run: apply the same accounting `advance` would.
        for &pid in self.core_proc.iter().flatten() {
            let p = &mut self.procs[pid.index() - 1];
            if p.frozen {
                p.napped_cycles += cycles;
            } else {
                p.idle_cycles += cycles;
            }
        }
        self.now += cycles;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::FuncId;
    use visa::{FuncSym, PReg};

    /// An endless compute loop touching a configurable number of distinct
    /// cache lines per pass.
    fn spinner(name: &str, lines: i64) -> Image {
        let text = vec![
            // r0 = addr cursor, r1 = limit
            Op::Movi {
                dst: PReg(0),
                imm: 64,
            },
            Op::Movi {
                dst: PReg(1),
                imm: 64 + lines * 64,
            },
            // loop:
            Op::Load {
                dst: PReg(2),
                base: PReg(0),
                offset: 0,
            },
            Op::AluImm {
                op: pir::BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::Alu {
                op: pir::BinOp::Lt,
                dst: PReg(3),
                a: PReg(0),
                b: PReg(1),
            },
            Op::Bnz {
                cond: PReg(3),
                target: 2,
            },
            Op::Jmp { target: 0 },
        ];
        Image {
            name: name.into(),
            entry: 0,
            text,
            data: vec![0u8; (64 + lines * 64 + 64) as usize],
            funcs: vec![FuncSym {
                name: "main".into(),
                func: FuncId(0),
                start: 0,
                len: 7,
            }],
            globals: vec![],
            evt: vec![],
            meta: None,
        }
    }

    /// A server: waits, does a fixed chunk of work, reports one query.
    fn server(name: &str) -> Image {
        let text = vec![
            // loop: wait; r0 = 64; inner: load; add; lt; bnz; report; jmp
            Op::Wait,
            Op::Movi {
                dst: PReg(0),
                imm: 64,
            },
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::AluImm {
                op: pir::BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::AluImm {
                op: pir::BinOp::Lt,
                dst: PReg(2),
                a: PReg(0),
                imm: 64 * 32,
            },
            Op::Bnz {
                cond: PReg(2),
                target: 2,
            },
            Op::Movi {
                dst: PReg(3),
                imm: 1,
            },
            Op::Report {
                channel: 0,
                src: PReg(3),
            },
            Op::Jmp { target: 0 },
        ];
        Image {
            name: name.into(),
            entry: 0,
            text,
            data: vec![0u8; 64 * 40],
            funcs: vec![FuncSym {
                name: "serve".into(),
                func: FuncId(0),
                start: 0,
                len: 9,
            }],
            globals: vec![],
            evt: vec![],
            meta: None,
        }
    }

    #[test]
    fn batch_process_progresses() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 8), 0);
        os.advance(100_000);
        let c = os.counters(pid);
        assert!(c.instructions > 1000, "got {} instructions", c.instructions);
        assert!(c.cycles > 0);
        assert!(os.sample_pc(pid) < 7);
    }

    #[test]
    fn napping_slows_progress_proportionally() {
        let progress = |nap: f64| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&spinner("a", 4), 0);
            os.set_nap(pid, nap);
            os.advance(1_000_000);
            os.counters(pid).instructions
        };
        let full = progress(0.0);
        let half = progress(0.5);
        let tenth = progress(0.9);
        let ratio_half = half as f64 / full as f64;
        let ratio_tenth = tenth as f64 / full as f64;
        assert!(
            (ratio_half - 0.5).abs() < 0.1,
            "50% nap gave ratio {ratio_half}"
        );
        assert!(
            (ratio_tenth - 0.1).abs() < 0.05,
            "90% nap gave ratio {ratio_tenth}"
        );
    }

    #[test]
    fn freeze_stops_execution_entirely() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 4), 0);
        os.advance(10_000);
        let before = os.counters(pid).instructions;
        os.set_frozen(pid, true);
        os.advance(100_000);
        assert_eq!(os.counters(pid).instructions, before);
        os.set_frozen(pid, false);
        os.advance(10_000);
        assert!(os.counters(pid).instructions > before);
    }

    #[test]
    fn server_throughput_tracks_offered_load() {
        let served_at = |qps: f64| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&server("ws"), 0);
            os.set_load(pid, LoadSchedule::constant(qps));
            os.advance_seconds(10.0);
            os.app_metric(pid, 0)
        };
        let low = served_at(5.0);
        let high = served_at(20.0);
        assert!(
            (low - 50).abs() <= 2,
            "5 qps * 10 s should serve ~50, got {low}"
        );
        assert!(
            (high - 200).abs() <= 5,
            "20 qps * 10 s should serve ~200, got {high}"
        );
    }

    #[test]
    fn overloaded_server_saturates() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&server("ws"), 0);
        os.set_load(pid, LoadSchedule::constant(1e9));
        os.advance_seconds(1.0);
        let served = os.app_metric(pid, 0);
        // Capacity-bound, far below offered.
        assert!(served > 0);
        assert!((served as f64) < 1e8);
    }

    #[test]
    fn runtime_charge_steals_from_same_core_only() {
        let run = |charge_core: Option<usize>| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&spinner("a", 4), 0);
            if let Some(c) = charge_core {
                // Saturate the core with runtime work for half the window.
                os.charge_runtime(c, 500_000);
            }
            os.advance(1_000_000);
            os.counters(pid).instructions
        };
        let clean = run(None);
        let same = run(Some(0));
        let separate = run(Some(1));
        assert!(
            (same as f64) < 0.6 * clean as f64,
            "same-core runtime work should steal cycles: {same} vs {clean}"
        );
        assert_eq!(
            separate, clean,
            "separate-core runtime work must not perturb the host"
        );
    }

    #[test]
    fn runtime_cycles_accounted() {
        let mut os = Os::new(OsConfig::small());
        os.charge_runtime(1, 12_345);
        os.advance(1_000_000);
        assert_eq!(os.runtime_consumed(1), 12_345);
        assert_eq!(os.runtime_consumed_total(), 12_345);
        assert_eq!(os.server_cycles(), 2_000_000); // 2 cores x 1M cycles
    }

    #[test]
    fn co_runner_contention_slows_both() {
        // Two processes with LLC-sized working sets contend; each must be
        // slower than when running alone.
        let solo = {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&spinner("a", 96), 0);
            os.advance(2_000_000);
            os.counters(pid).instructions
        };
        let mut os = Os::new(OsConfig::small());
        let a = os.spawn(&spinner("a", 96), 0);
        let b = os.spawn(&spinner("b", 96), 1);
        os.advance(2_000_000);
        let ia = os.counters(a).instructions;
        let ib = os.counters(b).instructions;
        assert!(ia < solo, "contended run should be slower: {ia} vs {solo}");
        assert!(ib < solo);
    }

    #[test]
    fn write_u64_patches_memory_atomically() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        os.write_u64(pid, 128, 0xdead_beef);
        assert_eq!(os.read_u64(pid, 128), 0xdead_beef);
    }

    #[test]
    fn append_text_returns_code_cache_base() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        let img_len = os.text_len(pid);
        let base = os.append_text(pid, &[Op::Halt, Op::Halt]);
        assert_eq!(base, img_len);
        assert_eq!(os.text_len(pid), img_len + 2);
    }

    #[test]
    fn kill_frees_core_and_stops_process() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        os.advance(10_000);
        os.kill(pid);
        let before = os.counters(pid).instructions;
        os.advance(10_000);
        assert_eq!(os.counters(pid).instructions, before);
        // Core is reusable.
        let pid2 = os.spawn(&spinner("b", 2), 0);
        os.advance(10_000);
        assert!(os.counters(pid2).instructions > 0);
    }

    #[test]
    #[should_panic(expected = "already runs")]
    fn double_pin_rejected() {
        let mut os = Os::new(OsConfig::small());
        os.spawn(&spinner("a", 2), 0);
        os.spawn(&spinner("b", 2), 0);
    }

    #[test]
    fn llc_occupancy_visible_per_process() {
        let mut os = Os::new(OsConfig::small());
        let a = os.spawn(&spinner("a", 64), 0);
        os.advance(500_000);
        assert!(os.llc_occupancy(a) > 0);
    }

    #[test]
    fn obs_faults_drop_and_garble_pc_samples_deterministically() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 4), 0);
        os.set_obs_faults(Some(ObsFaults {
            seed: 7,
            pc_drop: 0.5,
            pc_garble: 0.0,
            counter_garble: 0.0,
        }));
        let mut dropped = 0;
        let mut samples = Vec::new();
        for _ in 0..200 {
            os.advance(997);
            let pc = os.sample_pc(pid);
            samples.push(pc);
            if pc == u32::MAX {
                dropped += 1;
            } else {
                assert!(pc < 7, "non-dropped samples stay in text: {pc}");
            }
        }
        assert!(
            (60..=140).contains(&dropped),
            "~50% of samples should drop, got {dropped}/200"
        );
        // Same fault config at the same times reproduces the schedule.
        assert_eq!(os.sample_pc(pid), os.sample_pc(pid));
        // Disabling restores clean reads.
        os.set_obs_faults(None);
        assert!(os.sample_pc(pid) < 7);
    }

    #[test]
    fn obs_faults_perturb_counter_reads_but_not_execution() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 4), 0);
        os.advance(200_000);
        let clean = {
            let mut clean_os_view = os.counters(pid);
            os.set_obs_faults(Some(ObsFaults {
                seed: 3,
                pc_drop: 0.0,
                pc_garble: 0.0,
                counter_garble: 1.0,
            }));
            let garbled = os.counters(pid);
            assert_ne!(
                garbled.instructions, clean_os_view.instructions,
                "an always-garbled read must differ"
            );
            // Perturbation is bounded to ±25%.
            let ratio = garbled.instructions as f64 / clean_os_view.instructions as f64;
            assert!((0.74..=1.26).contains(&ratio), "ratio {ratio}");
            os.set_obs_faults(None);
            clean_os_view = os.counters(pid);
            clean_os_view
        };
        // The underlying counters kept their true values.
        os.advance(1);
        assert!(os.counters(pid).instructions >= clean.instructions);
    }

    #[test]
    fn skip_idle_matches_advance_bit_for_bit() {
        let run = |skip: bool| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&server("s"), 0);
            os.set_load(pid, LoadSchedule::constant(50.0));
            // Serve some queries so caches and counters hold real state.
            os.advance(400_000);
            os.set_load(pid, LoadSchedule::constant(0.0));
            os.advance(100_000); // drain the queue
            if skip {
                assert!(os.skip_idle(2_000_000), "idle server must be skippable");
            } else {
                os.advance(2_000_000);
            }
            // Resume load after the idle span.
            os.set_load(pid, LoadSchedule::constant(50.0));
            os.advance(400_000);
            (
                os.now(),
                os.counters(pid),
                os.app_metric(pid, 0),
                os.proc(pid).idle_cycles(),
                os.proc(pid).napped_cycles(),
                os.latency_stats(pid).map(|l| (l.p50, l.p99, l.count)),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn skip_idle_refuses_when_work_is_possible() {
        // A batch spinner is always runnable.
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 4), 0);
        let before = os.now();
        assert!(!os.skip_idle(1_000));
        assert_eq!(os.now(), before);
        // A loaded server with arrivals due over the span is not skippable.
        let mut os = Os::new(OsConfig::small());
        let pid2 = os.spawn(&server("s"), 0);
        os.advance(1_000); // reach the Wait
        os.set_load(pid2, LoadSchedule::constant(100.0));
        assert!(!os.skip_idle(1_000_000));
        // A frozen process accrues napped cycles across a skip.
        os.set_load(pid2, LoadSchedule::constant(0.0));
        os.set_frozen(pid2, true);
        let napped = os.proc(pid2).napped_cycles();
        assert!(os.skip_idle(10_000));
        assert_eq!(os.proc(pid2).napped_cycles(), napped + 10_000);
        let _ = pid;
    }

    #[test]
    fn corrupt_text_mangles_one_op_in_bounds_only() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        let base = os.append_text(pid, &[Op::Halt, Op::Halt]);
        assert!(os.corrupt_text(pid, base + 1, 0xdead));
        assert_eq!(os.read_text(pid, base, 2)[0], Op::Halt);
        assert!(matches!(os.read_text(pid, base, 2)[1], Op::Movi { .. }));
        assert!(!os.corrupt_text(pid, os.text_len(pid), 1));
    }
}
