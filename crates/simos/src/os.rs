//! The OS kernel: scheduling, time, and the runtime's control surface.

use machine::{
    exec, BtConfig, CostModel, ExecEnv, ExecStatus, MachineConfig, MemorySystem, PerfCounters,
};
use visa::{Image, Op};

use crate::loadgen::LoadSchedule;
use crate::process::{Pid, Process};

/// OS configuration.
#[derive(Clone, Debug)]
pub struct OsConfig {
    /// Machine the OS runs on.
    pub machine: MachineConfig,
    /// Scheduling quantum in cycles (granularity of core interleaving and
    /// of nap decisions).
    pub quantum: u64,
    /// Nap duty-cycle period in cycles. Nap intensity resolution is
    /// `quantum / nap_period`.
    pub nap_period: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        let machine = MachineConfig::default();
        OsConfig {
            machine,
            quantum: 1_000,
            nap_period: 100_000,
        }
    }
}

impl OsConfig {
    /// Small configuration for unit tests.
    pub fn small() -> Self {
        OsConfig {
            machine: MachineConfig::small(),
            quantum: 500,
            nap_period: 50_000,
        }
    }

    /// The standard experiment configuration: the paper's topology with
    /// capacities scaled to the simulated time base (see
    /// [`MachineConfig::scaled`]).
    pub fn scaled() -> Self {
        OsConfig {
            machine: MachineConfig::scaled(),
            ..OsConfig::default()
        }
    }
}

/// Query-latency statistics for a latency-sensitive process.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LatencyStats {
    /// Median sojourn time in cycles.
    pub p50: u64,
    /// 99th-percentile sojourn time in cycles.
    pub p99: u64,
    /// Mean sojourn time in cycles.
    pub mean: f64,
    /// Number of samples in the window.
    pub count: usize,
}

/// The simulated operating system.
pub struct Os {
    config: OsConfig,
    mem: MemorySystem,
    procs: Vec<Process>,
    /// Which process (if any) is pinned to each core.
    core_proc: Vec<Option<Pid>>,
    /// Pending runtime-work cycles per core (consumed before the pinned
    /// process runs — "same core" runtime placement steals these cycles).
    runtime_pending: Vec<u64>,
    /// Total runtime-work cycles consumed per core.
    runtime_consumed: Vec<u64>,
    now: u64,
}

impl Os {
    /// Boots an OS on the configured machine.
    pub fn new(config: OsConfig) -> Self {
        let cores = config.machine.cores;
        let mem = MemorySystem::new(&config.machine);
        Os {
            config,
            mem,
            procs: Vec::new(),
            core_proc: vec![None; cores],
            runtime_pending: vec![0; cores],
            runtime_consumed: vec![0; cores],
            now: 0,
        }
    }

    /// The OS configuration.
    pub fn config(&self) -> &OsConfig {
        &self.config
    }

    /// Current time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current time in simulated seconds.
    pub fn now_seconds(&self) -> f64 {
        self.config.machine.cycles_to_seconds(self.now)
    }

    /// Loads `image` as a new process pinned to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already has a pinned process.
    pub fn spawn(&mut self, image: &Image, core: usize) -> Pid {
        assert!(core < self.core_proc.len(), "core {core} out of range");
        assert!(
            self.core_proc[core].is_none(),
            "core {core} already runs {:?}",
            self.core_proc[core]
        );
        let pid = Pid(self.procs.len() as u16 + 1); // space 0 = kernel
        let proc_ = Process::load(image, pid, core);
        self.core_proc[core] = Some(pid);
        self.procs.push(proc_);
        pid
    }

    /// Loads `image` under a DynamoRIO-style binary translator (the
    /// Figure 4 baseline): all execution flows from a translation cache
    /// with per-block translation and per-branch dispatch costs.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already pinned.
    pub fn spawn_with_bt(&mut self, image: &Image, core: usize, bt: BtConfig) -> Pid {
        let pid = self.spawn(image, core);
        let i = self.idx(pid);
        let ctx = std::mem::replace(&mut self.procs[i].ctx, machine::ExecContext::new(0, 0, 0));
        self.procs[i].ctx = ctx.with_binary_translation(bt);
        pid
    }

    /// Total binary-translation overhead cycles charged to a process, if
    /// it runs under the translator.
    pub fn bt_overhead(&self, pid: Pid) -> Option<u64> {
        self.proc(pid).ctx().bt_overhead()
    }

    /// Terminates a process and frees its core.
    pub fn kill(&mut self, pid: Pid) {
        let core = self.proc(pid).core();
        self.core_proc[core] = None;
        // Keep the process slot (counters remain readable post-mortem) but
        // detach it from scheduling by freezing.
        self.proc_mut(pid).frozen = true;
    }

    fn idx(&self, pid: Pid) -> usize {
        pid.index() - 1
    }

    /// Immutable access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was never spawned.
    pub fn proc(&self, pid: Pid) -> &Process {
        &self.procs[self.idx(pid)]
    }

    fn proc_mut(&mut self, pid: Pid) -> &mut Process {
        let i = self.idx(pid);
        &mut self.procs[i]
    }

    /// All spawned processes.
    pub fn procs(&self) -> &[Process] {
        &self.procs
    }

    // ----------------------------------------------------------------
    // Observation surface (ptrace / perf)
    // ----------------------------------------------------------------

    /// Samples the process's program counter (ptrace-style).
    pub fn sample_pc(&self, pid: Pid) -> u32 {
        self.proc(pid).ctx().pc()
    }

    /// Reads the process's hardware performance counters.
    pub fn counters(&self, pid: Pid) -> PerfCounters {
        self.proc(pid).counters()
    }

    /// Execution status of the process.
    pub fn status(&self, pid: Pid) -> ExecStatus {
        self.proc(pid).ctx().status()
    }

    /// Cumulative application metric on `channel`.
    pub fn app_metric(&self, pid: Pid, channel: u8) -> i64 {
        self.proc(pid).metric(channel)
    }

    /// Tail-latency statistics over the process's recent queries (the
    /// paper's "99th percentile tail query latency" reporting interface).
    /// Returns `None` for batch processes or before any query completed.
    pub fn latency_stats(&self, pid: Pid) -> Option<LatencyStats> {
        let mut samples: Vec<u64> = self.proc(pid).latency_samples().collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        Some(LatencyStats {
            p50: pick(0.5),
            p99: pick(0.99),
            mean,
            count: samples.len(),
        })
    }

    /// Shared-LLC lines currently owned by `pid`.
    pub fn llc_occupancy(&self, pid: Pid) -> usize {
        let space = u64::from(pid.0);
        let shift = 40 - self.config.machine.line_bytes.trailing_zeros();
        self.mem
            .llc_occupancy_where(move |line| (line >> shift) == space)
    }

    /// Reads `len` bytes of process data memory (shared-memory mapping).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (the runtime maps only valid
    /// regions).
    pub fn read_mem(&self, pid: Pid, addr: u64, len: usize) -> &[u8] {
        let p = self.proc(pid);
        &p.data[addr as usize..addr as usize + len]
    }

    /// Writes bytes into process data memory. An 8-byte aligned write is
    /// atomic with respect to process execution (the process only runs
    /// between quanta), which is what EVT redirection relies on.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_mem(&mut self, pid: Pid, addr: u64, bytes: &[u8]) {
        let p = self.proc_mut(pid);
        p.data[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
    }

    /// Convenience: atomically writes a u64 (EVT slot update).
    pub fn write_u64(&mut self, pid: Pid, addr: u64, value: u64) {
        self.write_mem(pid, addr, &value.to_le_bytes());
    }

    /// Convenience: reads a u64.
    pub fn read_u64(&self, pid: Pid, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_mem(pid, addr, 8).try_into().expect("8 bytes"))
    }

    /// Appends code to the process's text space (the shared code cache),
    /// returning the address of the first appended instruction.
    pub fn append_text(&mut self, pid: Pid, ops: &[Op]) -> u32 {
        let p = self.proc_mut(pid);
        let base = p.text.len() as u32;
        p.text.extend_from_slice(ops);
        base
    }

    /// Total text length (image + code cache) of a process.
    pub fn text_len(&self, pid: Pid) -> u32 {
        self.proc(pid).text.len() as u32
    }

    // ----------------------------------------------------------------
    // Control surface
    // ----------------------------------------------------------------

    /// Sets the nap intensity (fraction of time descheduled) in [0, 1].
    pub fn set_nap(&mut self, pid: Pid, intensity: f64) {
        self.proc_mut(pid).nap_intensity = intensity.clamp(0.0, 1.0);
    }

    /// Freezes or thaws a process (the flux measurement mechanism: freeze
    /// the host briefly and observe co-runners running alone).
    pub fn set_frozen(&mut self, pid: Pid, frozen: bool) {
        self.proc_mut(pid).frozen = frozen;
    }

    /// Attaches an offered-load schedule; the process should park in
    /// [`Op::Wait`] between work items.
    pub fn set_load(&mut self, pid: Pid, schedule: LoadSchedule) {
        self.proc_mut(pid).load = Some(schedule);
    }

    /// Charges `cycles` of runtime work (e.g. dynamic compilation) to a
    /// core. If a process is pinned there, the work steals its cycles.
    pub fn charge_runtime(&mut self, core: usize, cycles: u64) {
        self.runtime_pending[core] += cycles;
    }

    /// Total runtime-work cycles consumed on `core` so far.
    pub fn runtime_consumed(&self, core: usize) -> u64 {
        self.runtime_consumed[core]
    }

    /// Total runtime-work cycles consumed across all cores.
    pub fn runtime_consumed_total(&self) -> u64 {
        self.runtime_consumed.iter().sum()
    }

    /// Total core-cycles elapsed (cores × time), the denominator of
    /// "fraction of server cycles" plots.
    pub fn server_cycles(&self) -> u64 {
        self.now * self.core_proc.len() as u64
    }

    // ----------------------------------------------------------------
    // Scheduling
    // ----------------------------------------------------------------

    /// Advances simulated time by `cycles`, interleaving all cores at
    /// quantum granularity.
    pub fn advance(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end {
            let q = self.config.quantum.min(end - self.now);
            let t0 = self.config.machine.cycles_to_seconds(self.now);
            let t1 = self.config.machine.cycles_to_seconds(self.now + q);
            for core in 0..self.core_proc.len() {
                let mut budget = q;
                // Runtime work shares the core with the pinned process.
                // When both want the core, scheduling is fair (half the
                // quantum each) rather than preemptive — a saturated
                // same-core compiler halves the host instead of starving
                // it, as on a real OS.
                if self.runtime_pending[core] > 0 {
                    let cap = if self.core_proc[core].is_some() {
                        q / 2
                    } else {
                        q
                    };
                    let used = self.runtime_pending[core].min(cap);
                    self.runtime_pending[core] -= used;
                    self.runtime_consumed[core] += used;
                    budget -= used;
                }
                let Some(pid) = self.core_proc[core] else {
                    continue;
                };
                let i = pid.index() - 1;
                // Split borrows: process vs memory system.
                let (procs, mem) = (&mut self.procs, &mut self.mem);
                let p = &mut procs[i];
                // Integrate offered load over this quantum. Whole arrivals
                // are timestamped for latency accounting; a bounded queue
                // sheds excess (an overloaded server drops, it does not
                // accumulate unbounded backlog).
                if let Some(load) = &p.load {
                    p.pending_work += load.arrivals_between(t0, t1);
                    while p.pending_work >= 1.0 && p.arrival_queue.len() < 64 {
                        p.pending_work -= 1.0;
                        p.arrival_queue.push_back(self.now);
                    }
                    if p.pending_work >= 1.0 {
                        p.pending_work = p.pending_work.fract(); // shed
                    }
                }
                if budget == 0 {
                    continue;
                }
                if p.frozen {
                    p.napped_cycles += budget;
                    continue;
                }
                let napped = {
                    let intensity = p.nap_intensity;
                    if intensity <= 0.0 {
                        false
                    } else if intensity >= 1.0 {
                        true
                    } else {
                        let phase = (self.now % self.config.nap_period) as f64
                            / self.config.nap_period as f64;
                        phase < intensity
                    }
                };
                if napped {
                    p.napped_cycles += budget;
                    continue;
                }
                // Run, waking a parked server while work is pending.
                loop {
                    if !p.ctx.is_running() {
                        if p.ctx.status() == ExecStatus::Waiting {
                            if let Some(arrived) = p.arrival_queue.pop_front() {
                                p.in_service = Some(arrived);
                                p.ctx.wake();
                            } else {
                                p.idle_cycles += budget;
                                break;
                            }
                        } else {
                            p.idle_cycles += budget;
                            break;
                        }
                    }
                    let mut env = ExecEnv {
                        text: &p.text,
                        data: &mut p.data,
                        mem,
                        core,
                        counters: &mut p.counters,
                        costs: CostModel::default(),
                    };
                    let res = exec::run(&mut p.ctx, &mut env, budget);
                    budget = budget.saturating_sub(res.cycles);
                    // Drain application metrics.
                    for (ch, v) in p.ctx.reports.drain(..) {
                        p.metrics[ch as usize % crate::METRIC_CHANNELS] += v;
                    }
                    if matches!(res.stop, exec::StopReason::Waiting) {
                        // A query completed: record its sojourn time.
                        if let Some(arrived) = p.in_service.take() {
                            if p.latency_samples.len() >= 1024 {
                                p.latency_samples.pop_front();
                            }
                            p.latency_samples
                                .push_back(self.now.saturating_sub(arrived));
                        }
                    }
                    if budget == 0 || !matches!(res.stop, exec::StopReason::Waiting) {
                        break;
                    }
                }
            }
            self.now += q;
        }
    }

    /// Advances by a simulated duration in seconds.
    pub fn advance_seconds(&mut self, secs: f64) {
        let cycles = self.config.machine.seconds_to_cycles(secs);
        self.advance(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::FuncId;
    use visa::{FuncSym, PReg};

    /// An endless compute loop touching a configurable number of distinct
    /// cache lines per pass.
    fn spinner(name: &str, lines: i64) -> Image {
        let text = vec![
            // r0 = addr cursor, r1 = limit
            Op::Movi {
                dst: PReg(0),
                imm: 64,
            },
            Op::Movi {
                dst: PReg(1),
                imm: 64 + lines * 64,
            },
            // loop:
            Op::Load {
                dst: PReg(2),
                base: PReg(0),
                offset: 0,
            },
            Op::AluImm {
                op: pir::BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::Alu {
                op: pir::BinOp::Lt,
                dst: PReg(3),
                a: PReg(0),
                b: PReg(1),
            },
            Op::Bnz {
                cond: PReg(3),
                target: 2,
            },
            Op::Jmp { target: 0 },
        ];
        Image {
            name: name.into(),
            entry: 0,
            text,
            data: vec![0u8; (64 + lines * 64 + 64) as usize],
            funcs: vec![FuncSym {
                name: "main".into(),
                func: FuncId(0),
                start: 0,
                len: 7,
            }],
            globals: vec![],
            evt: vec![],
            meta: None,
        }
    }

    /// A server: waits, does a fixed chunk of work, reports one query.
    fn server(name: &str) -> Image {
        let text = vec![
            // loop: wait; r0 = 64; inner: load; add; lt; bnz; report; jmp
            Op::Wait,
            Op::Movi {
                dst: PReg(0),
                imm: 64,
            },
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::AluImm {
                op: pir::BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::AluImm {
                op: pir::BinOp::Lt,
                dst: PReg(2),
                a: PReg(0),
                imm: 64 * 32,
            },
            Op::Bnz {
                cond: PReg(2),
                target: 2,
            },
            Op::Movi {
                dst: PReg(3),
                imm: 1,
            },
            Op::Report {
                channel: 0,
                src: PReg(3),
            },
            Op::Jmp { target: 0 },
        ];
        Image {
            name: name.into(),
            entry: 0,
            text,
            data: vec![0u8; 64 * 40],
            funcs: vec![FuncSym {
                name: "serve".into(),
                func: FuncId(0),
                start: 0,
                len: 9,
            }],
            globals: vec![],
            evt: vec![],
            meta: None,
        }
    }

    #[test]
    fn batch_process_progresses() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 8), 0);
        os.advance(100_000);
        let c = os.counters(pid);
        assert!(c.instructions > 1000, "got {} instructions", c.instructions);
        assert!(c.cycles > 0);
        assert!(os.sample_pc(pid) < 7);
    }

    #[test]
    fn napping_slows_progress_proportionally() {
        let progress = |nap: f64| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&spinner("a", 4), 0);
            os.set_nap(pid, nap);
            os.advance(1_000_000);
            os.counters(pid).instructions
        };
        let full = progress(0.0);
        let half = progress(0.5);
        let tenth = progress(0.9);
        let ratio_half = half as f64 / full as f64;
        let ratio_tenth = tenth as f64 / full as f64;
        assert!(
            (ratio_half - 0.5).abs() < 0.1,
            "50% nap gave ratio {ratio_half}"
        );
        assert!(
            (ratio_tenth - 0.1).abs() < 0.05,
            "90% nap gave ratio {ratio_tenth}"
        );
    }

    #[test]
    fn freeze_stops_execution_entirely() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 4), 0);
        os.advance(10_000);
        let before = os.counters(pid).instructions;
        os.set_frozen(pid, true);
        os.advance(100_000);
        assert_eq!(os.counters(pid).instructions, before);
        os.set_frozen(pid, false);
        os.advance(10_000);
        assert!(os.counters(pid).instructions > before);
    }

    #[test]
    fn server_throughput_tracks_offered_load() {
        let served_at = |qps: f64| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&server("ws"), 0);
            os.set_load(pid, LoadSchedule::constant(qps));
            os.advance_seconds(10.0);
            os.app_metric(pid, 0)
        };
        let low = served_at(5.0);
        let high = served_at(20.0);
        assert!(
            (low - 50).abs() <= 2,
            "5 qps * 10 s should serve ~50, got {low}"
        );
        assert!(
            (high - 200).abs() <= 5,
            "20 qps * 10 s should serve ~200, got {high}"
        );
    }

    #[test]
    fn overloaded_server_saturates() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&server("ws"), 0);
        os.set_load(pid, LoadSchedule::constant(1e9));
        os.advance_seconds(1.0);
        let served = os.app_metric(pid, 0);
        // Capacity-bound, far below offered.
        assert!(served > 0);
        assert!((served as f64) < 1e8);
    }

    #[test]
    fn runtime_charge_steals_from_same_core_only() {
        let run = |charge_core: Option<usize>| {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&spinner("a", 4), 0);
            if let Some(c) = charge_core {
                // Saturate the core with runtime work for half the window.
                os.charge_runtime(c, 500_000);
            }
            os.advance(1_000_000);
            os.counters(pid).instructions
        };
        let clean = run(None);
        let same = run(Some(0));
        let separate = run(Some(1));
        assert!(
            (same as f64) < 0.6 * clean as f64,
            "same-core runtime work should steal cycles: {same} vs {clean}"
        );
        assert_eq!(
            separate, clean,
            "separate-core runtime work must not perturb the host"
        );
    }

    #[test]
    fn runtime_cycles_accounted() {
        let mut os = Os::new(OsConfig::small());
        os.charge_runtime(1, 12_345);
        os.advance(1_000_000);
        assert_eq!(os.runtime_consumed(1), 12_345);
        assert_eq!(os.runtime_consumed_total(), 12_345);
        assert_eq!(os.server_cycles(), 2_000_000); // 2 cores x 1M cycles
    }

    #[test]
    fn co_runner_contention_slows_both() {
        // Two processes with LLC-sized working sets contend; each must be
        // slower than when running alone.
        let solo = {
            let mut os = Os::new(OsConfig::small());
            let pid = os.spawn(&spinner("a", 96), 0);
            os.advance(2_000_000);
            os.counters(pid).instructions
        };
        let mut os = Os::new(OsConfig::small());
        let a = os.spawn(&spinner("a", 96), 0);
        let b = os.spawn(&spinner("b", 96), 1);
        os.advance(2_000_000);
        let ia = os.counters(a).instructions;
        let ib = os.counters(b).instructions;
        assert!(ia < solo, "contended run should be slower: {ia} vs {solo}");
        assert!(ib < solo);
    }

    #[test]
    fn write_u64_patches_memory_atomically() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        os.write_u64(pid, 128, 0xdead_beef);
        assert_eq!(os.read_u64(pid, 128), 0xdead_beef);
    }

    #[test]
    fn append_text_returns_code_cache_base() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        let img_len = os.text_len(pid);
        let base = os.append_text(pid, &[Op::Halt, Op::Halt]);
        assert_eq!(base, img_len);
        assert_eq!(os.text_len(pid), img_len + 2);
    }

    #[test]
    fn kill_frees_core_and_stops_process() {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a", 2), 0);
        os.advance(10_000);
        os.kill(pid);
        let before = os.counters(pid).instructions;
        os.advance(10_000);
        assert_eq!(os.counters(pid).instructions, before);
        // Core is reusable.
        let pid2 = os.spawn(&spinner("b", 2), 0);
        os.advance(10_000);
        assert!(os.counters(pid2).instructions > 0);
    }

    #[test]
    #[should_panic(expected = "already runs")]
    fn double_pin_rejected() {
        let mut os = Os::new(OsConfig::small());
        os.spawn(&spinner("a", 2), 0);
        os.spawn(&spinner("b", 2), 0);
    }

    #[test]
    fn llc_occupancy_visible_per_process() {
        let mut os = Os::new(OsConfig::small());
        let a = os.spawn(&spinner("a", 64), 0);
        os.advance(500_000);
        assert!(os.llc_occupancy(a) > 0);
    }
}
