//! Processes: a loaded image plus architectural and OS state.

use std::collections::VecDeque;

use machine::{BlockCache, DecodeStats, ExecContext, PerfCounters};
use visa::{FuncSym, GlobalSym, Image, MetaDesc, Op};

use crate::loadgen::LoadSchedule;
use crate::METRIC_CHANNELS;

/// Process identifier; doubles as the physical-address-space id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u16);

impl Pid {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A loaded process.
pub struct Process {
    pid: Pid,
    name: String,
    /// Text space: image text plus appended code-cache variants.
    pub(crate) text: Vec<Op>,
    /// Length of the original image text (code cache starts here).
    image_text_len: u32,
    /// The data segment (meta root, globals, EVT, IR blob).
    pub(crate) data: Vec<u8>,
    /// Generation of `text`; bumped on every append or corruption so the
    /// interpreter's decoded-block cache discards stale block shapes.
    pub(crate) text_gen: u64,
    /// Decoded-block cache for `text`, reused across quanta.
    pub(crate) blocks: BlockCache,
    pub(crate) ctx: ExecContext,
    pub(crate) counters: PerfCounters,
    funcs: Vec<FuncSym>,
    globals: Vec<GlobalSym>,
    meta: Option<MetaDesc>,
    /// Core this process is pinned to.
    pub(crate) core: usize,
    /// Nap intensity in [0, 1]: fraction of each nap period spent asleep.
    pub(crate) nap_intensity: f64,
    /// Frozen processes never run (flux measurement).
    pub(crate) frozen: bool,
    /// Offered-load schedule for `Wait`-parking servers; `None` for batch.
    pub(crate) load: Option<LoadSchedule>,
    /// Pending work items (fractional arrivals accumulate).
    pub(crate) pending_work: f64,
    /// Arrival timestamps of queued-but-unserved queries (for latency).
    pub(crate) arrival_queue: VecDeque<u64>,
    /// Arrival timestamp of the query currently in service.
    pub(crate) in_service: Option<u64>,
    /// Recent per-query sojourn times in cycles (bounded ring).
    pub(crate) latency_samples: VecDeque<u64>,
    /// Cumulative sums of application metrics per channel.
    pub(crate) metrics: [i64; METRIC_CHANNELS],
    /// Cycles this process was scheduled but idle (Waiting with no work).
    pub(crate) idle_cycles: u64,
    /// Cycle at which the context entered `OsrParked`, for
    /// park-to-resume latency accounting. Cleared on resume/disarm.
    pub(crate) osr_parked_at: Option<u64>,
    /// Cycles lost to napping/freezing while otherwise runnable.
    pub(crate) napped_cycles: u64,
}

impl Process {
    /// Loads `image` as process `pid` pinned to `core`.
    ///
    /// The context's EVT base comes from the image's discoverable metadata
    /// (0 for non-protean binaries).
    pub fn load(image: &Image, pid: Pid, core: usize) -> Self {
        let evt_base = image.meta.map_or(0, |m| m.evt_base);
        Process {
            pid,
            name: image.name.clone(),
            text: image.text.clone(),
            image_text_len: image.text_len(),
            data: image.data.clone(),
            text_gen: 0,
            blocks: BlockCache::new(),
            ctx: ExecContext::new(image.entry, pid.0, evt_base),
            counters: PerfCounters::default(),
            funcs: image.funcs.clone(),
            globals: image.globals.clone(),
            meta: image.meta,
            core,
            nap_intensity: 0.0,
            frozen: false,
            load: None,
            pending_work: 0.0,
            arrival_queue: VecDeque::new(),
            in_service: None,
            latency_samples: VecDeque::new(),
            metrics: [0; METRIC_CHANNELS],
            idle_cycles: 0,
            osr_parked_at: None,
            napped_cycles: 0,
        }
    }

    /// Process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Core the process is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Counter snapshot.
    pub fn counters(&self) -> PerfCounters {
        self.counters
    }

    /// Decoded-block cache effectiveness counters (the
    /// `machine.decoded_*` group): dispatch hits/misses, wholesale
    /// invalidations, and superops formed.
    pub fn decode_stats(&self) -> DecodeStats {
        self.blocks.stats()
    }

    /// The execution context (PC samples, status).
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// Function symbols of the loaded image.
    pub fn funcs(&self) -> &[FuncSym] {
        &self.funcs
    }

    /// Global symbols of the loaded image.
    pub fn globals(&self) -> &[GlobalSym] {
        &self.globals
    }

    /// Protean metadata locations, if this is a protean binary.
    pub fn meta(&self) -> Option<MetaDesc> {
        self.meta
    }

    /// Length of the original image text; code-cache addresses start here.
    pub fn image_text_len(&self) -> u32 {
        self.image_text_len
    }

    /// The full text space (image plus appended code-cache variants) —
    /// what a runtime checksums to detect code-cache corruption.
    pub fn text(&self) -> &[Op] {
        &self.text
    }

    /// Current nap intensity in [0, 1].
    pub fn nap_intensity(&self) -> f64 {
        self.nap_intensity
    }

    /// Whether the process is frozen (flux measurement in progress).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Maps a text address to the containing function symbol, if it is in
    /// the original image (code-cache addresses are symbolized by the
    /// runtime, which knows what it compiled).
    pub fn symbolize(&self, addr: u32) -> Option<&FuncSym> {
        let idx = self.funcs.partition_point(|f| f.start <= addr);
        if idx == 0 {
            return None;
        }
        let sym = &self.funcs[idx - 1];
        (addr < sym.start + sym.len).then_some(sym)
    }

    /// Cumulative application-metric sum for `channel`.
    pub fn metric(&self, channel: u8) -> i64 {
        self.metrics[channel as usize % METRIC_CHANNELS]
    }

    /// Cycles the process was runnable but descheduled by nap/freeze.
    pub fn napped_cycles(&self) -> u64 {
        self.napped_cycles
    }

    /// Cycles the process was scheduled but had no work (Waiting).
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Recent per-query sojourn times (arrival → completion) in cycles,
    /// oldest first. Empty for batch processes.
    pub fn latency_samples(&self) -> impl Iterator<Item = u64> + '_ {
        self.latency_samples.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::ExecStatus;
    use pir::FuncId;
    use visa::PReg;

    fn image() -> Image {
        Image {
            name: "t".into(),
            entry: 0,
            text: vec![
                Op::Movi {
                    dst: PReg(0),
                    imm: 3,
                },
                Op::Halt,
            ],
            data: vec![0u8; 128],
            funcs: vec![FuncSym {
                name: "main".into(),
                func: FuncId(0),
                start: 0,
                len: 2,
            }],
            globals: vec![GlobalSym {
                name: "g".into(),
                addr: 64,
                size: 8,
            }],
            evt: vec![],
            meta: None,
        }
    }

    #[test]
    fn load_initializes_state() {
        let p = Process::load(&image(), Pid(3), 1);
        assert_eq!(p.pid(), Pid(3));
        assert_eq!(p.core(), 1);
        assert_eq!(p.name(), "t");
        assert_eq!(p.ctx().status(), ExecStatus::Running);
        assert_eq!(p.ctx().space(), 3);
        assert_eq!(p.nap_intensity(), 0.0);
        assert!(!p.is_frozen());
        assert_eq!(p.image_text_len(), 2);
        assert_eq!(p.metric(0), 0);
    }

    #[test]
    fn symbolize_within_image() {
        let p = Process::load(&image(), Pid(0), 0);
        assert_eq!(p.symbolize(1).unwrap().name, "main");
        assert!(p.symbolize(2).is_none());
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(7).to_string(), "pid7");
        assert_eq!(Pid(7).index(), 7);
    }
}
