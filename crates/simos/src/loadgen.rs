//! Offered-load schedules for latency-sensitive servers.
//!
//! A [`LoadSchedule`] is a step function from simulated time to offered
//! queries per second. The OS integrates it into fractional arrivals and
//! wakes `Wait`-parked servers when a whole query is pending — this
//! reproduces the fluctuating `web-search` load of the paper's
//! Figure 16(a).

/// A piecewise-constant offered-load schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSchedule {
    /// `(start_second, qps)` steps, sorted by time; the first step should
    /// start at 0.
    steps: Vec<(f64, f64)>,
}

impl LoadSchedule {
    /// A constant offered load.
    pub fn constant(qps: f64) -> Self {
        LoadSchedule {
            steps: vec![(0.0, qps)],
        }
    }

    /// A step schedule from `(start_second, qps)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not sorted by time.
    pub fn steps(steps: Vec<(f64, f64)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule steps must be sorted by time"
        );
        LoadSchedule { steps }
    }

    /// The paper's Figure 16(a) diurnal-style shape, scaled to a total
    /// duration: high load, low load, then high again.
    pub fn fig16_shape(duration_secs: f64, high_qps: f64, low_qps: f64) -> Self {
        let third = duration_secs / 3.0;
        LoadSchedule::steps(vec![
            (0.0, high_qps),
            (third, low_qps),
            (2.0 * third, high_qps),
        ])
    }

    /// Offered QPS at time `t` seconds.
    pub fn qps_at(&self, t: f64) -> f64 {
        let mut current = self.steps[0].1;
        for &(start, qps) in &self.steps {
            if t >= start {
                current = qps;
            } else {
                break;
            }
        }
        current
    }

    /// Arrivals during `[t0, t1)` seconds (exact piecewise integration).
    pub fn arrivals_between(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut cursor = t0;
        for (i, &(start, qps)) in self.steps.iter().enumerate() {
            let seg_start = start.max(t0);
            let seg_end = self.steps.get(i + 1).map_or(t1, |n| n.0).min(t1);
            if seg_end > seg_start {
                total += qps * (seg_end - seg_start);
                cursor = seg_end;
            }
        }
        // Time before the first step uses the first step's rate.
        if t0 < self.steps[0].0 {
            total += self.steps[0].1 * (self.steps[0].0.min(t1) - t0);
        }
        let _ = cursor;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = LoadSchedule::constant(50.0);
        assert_eq!(s.qps_at(0.0), 50.0);
        assert_eq!(s.qps_at(1e6), 50.0);
        assert!((s.arrivals_between(2.0, 4.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn step_schedule_lookup() {
        let s = LoadSchedule::steps(vec![(0.0, 10.0), (100.0, 90.0), (200.0, 20.0)]);
        assert_eq!(s.qps_at(0.0), 10.0);
        assert_eq!(s.qps_at(99.9), 10.0);
        assert_eq!(s.qps_at(100.0), 90.0);
        assert_eq!(s.qps_at(250.0), 20.0);
    }

    #[test]
    fn arrivals_integrate_across_steps() {
        let s = LoadSchedule::steps(vec![(0.0, 10.0), (10.0, 20.0)]);
        // 5s at 10 qps + 5s at 20 qps = 150 arrivals.
        assert!((s.arrivals_between(5.0, 15.0) - 150.0).abs() < 1e-9);
        assert_eq!(s.arrivals_between(5.0, 5.0), 0.0);
        assert_eq!(s.arrivals_between(7.0, 3.0), 0.0);
    }

    #[test]
    fn fig16_shape_has_three_phases() {
        let s = LoadSchedule::fig16_shape(900.0, 80.0, 10.0);
        assert_eq!(s.qps_at(10.0), 80.0);
        assert_eq!(s.qps_at(450.0), 10.0);
        assert_eq!(s.qps_at(700.0), 80.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_steps_rejected() {
        let _ = LoadSchedule::steps(vec![(5.0, 1.0), (2.0, 1.0)]);
    }
}
