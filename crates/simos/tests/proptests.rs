//! Property-based tests for the simulated OS: scheduling, napping,
//! freezing, load integration, and time accounting invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use pir::FuncId;
use simos::{LoadSchedule, Os, OsConfig, Pid};
use visa::{FuncSym, Image, Op, PReg};

/// An endless compute loop (1 branch per 3 instructions).
fn spinner(name: &str) -> Image {
    let text = vec![
        Op::Movi {
            dst: PReg(0),
            imm: 0,
        },
        Op::AluImm {
            op: pir::BinOp::Add,
            dst: PReg(0),
            a: PReg(0),
            imm: 1,
        },
        Op::Jmp { target: 1 },
    ];
    Image {
        name: name.into(),
        entry: 0,
        text,
        data: vec![0u8; 256],
        funcs: vec![FuncSym {
            name: "main".into(),
            func: FuncId(0),
            start: 0,
            len: 3,
        }],
        globals: vec![],
        evt: vec![],
        meta: None,
    }
}

/// A server that serves one trivial query per wake-up.
fn server(name: &str) -> Image {
    let text = vec![
        Op::Wait,
        Op::Movi {
            dst: PReg(0),
            imm: 1,
        },
        Op::Report {
            channel: 0,
            src: PReg(0),
        },
        Op::Jmp { target: 0 },
    ];
    Image {
        name: name.into(),
        entry: 0,
        text,
        data: vec![0u8; 256],
        funcs: vec![FuncSym {
            name: "main".into(),
            func: FuncId(0),
            start: 0,
            len: 4,
        }],
        globals: vec![],
        evt: vec![],
        meta: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nap_intensity_scales_progress_linearly(nap in 0.0f64..0.95) {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a"), 0);
        os.set_nap(pid, nap);
        os.advance(2_000_000);
        let got = os.counters(pid).instructions as f64;
        let mut os2 = Os::new(OsConfig::small());
        let pid2 = os2.spawn(&spinner("a"), 0);
        os2.advance(2_000_000);
        let full = os2.counters(pid2).instructions as f64;
        let expected = full * (1.0 - nap);
        prop_assert!(
            (got - expected).abs() / full < 0.03,
            "nap {nap}: got {got}, expected {expected}"
        );
    }

    #[test]
    fn frozen_process_makes_zero_progress(points in vec(1_000u64..100_000, 1..6)) {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a"), 0);
        os.set_frozen(pid, true);
        for cycles in points {
            let before = os.counters(pid).instructions;
            os.advance(cycles);
            prop_assert_eq!(os.counters(pid).instructions, before);
        }
    }

    #[test]
    fn cycles_never_exceed_wall_time(naps in vec(0.0f64..1.0, 1..5)) {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a"), 0);
        for nap in naps {
            os.set_nap(pid, nap);
            os.advance(500_000);
            // Busy cycles can never exceed elapsed wall cycles (small
            // slack for the final stalled instruction of a quantum).
            prop_assert!(os.counters(pid).cycles <= os.now() + 1_000);
        }
    }

    #[test]
    fn served_queries_track_offered_load(qps in 1.0f64..200.0) {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&server("s"), 0);
        os.set_load(pid, LoadSchedule::constant(qps));
        os.advance_seconds(10.0);
        let served = os.app_metric(pid, 0) as f64;
        let offered = qps * 10.0;
        // The trivial server is never saturated in this range.
        prop_assert!(
            (served - offered).abs() <= offered * 0.05 + 2.0,
            "offered {offered}, served {served}"
        );
    }

    #[test]
    fn advance_is_divisible(chunks in vec(1_000u64..50_000, 2..8)) {
        // Advancing in pieces must equal advancing at once (quantum
        // boundaries permitting: totals are multiples of the quantum).
        let q = OsConfig::small().quantum;
        let total: u64 = chunks.iter().map(|c| (c / q) * q).sum();
        let mut os1 = Os::new(OsConfig::small());
        let a = os1.spawn(&spinner("a"), 0);
        for c in &chunks {
            os1.advance((c / q) * q);
        }
        let mut os2 = Os::new(OsConfig::small());
        let b = os2.spawn(&spinner("a"), 0);
        os2.advance(total);
        prop_assert_eq!(os1.counters(a), os2.counters(b));
        prop_assert_eq!(os1.now(), os2.now());
    }

    #[test]
    fn runtime_charges_are_conserved(charges in vec(1_000u64..200_000, 1..6)) {
        let mut os = Os::new(OsConfig::small());
        let total: u64 = charges.iter().sum();
        for (i, c) in charges.iter().enumerate() {
            os.charge_runtime(i % 2, *c);
        }
        // Enough time for all charges to drain even when fair-shared.
        os.advance(total * 4 + 1_000_000);
        prop_assert_eq!(os.runtime_consumed_total(), total);
    }

    #[test]
    fn memory_pokes_are_exact(values in vec(any::<u64>(), 1..16)) {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a"), 0);
        for (i, v) in values.iter().enumerate() {
            os.write_u64(pid, 64 + (i as u64) * 8, *v);
        }
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(os.read_u64(pid, 64 + (i as u64) * 8), *v);
        }
    }

    #[test]
    fn pc_samples_stay_in_text(steps in 1usize..30) {
        let mut os = Os::new(OsConfig::small());
        let pid = os.spawn(&spinner("a"), 0);
        for _ in 0..steps {
            os.advance(997);
            let pc = os.sample_pc(pid);
            prop_assert!(pc < os.text_len(pid), "pc {pc} outside text");
        }
    }
}

#[test]
fn kill_then_reuse_core_is_clean() {
    let mut os = Os::new(OsConfig::small());
    let a = os.spawn(&spinner("a"), 0);
    os.advance(50_000);
    os.kill(a);
    let b = os.spawn(&spinner("b"), 0);
    let before_b = os.counters(b).instructions;
    let before_a = os.counters(a).instructions;
    os.advance(50_000);
    assert!(os.counters(b).instructions > before_b);
    assert_eq!(
        os.counters(a).instructions,
        before_a,
        "killed process must stay dead"
    );
    let _ = Pid(0);
}
