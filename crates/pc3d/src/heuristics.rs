//! Variant search-space reduction (Section IV-C).
//!
//! Three pruning heuristics applied in order:
//!
//! 1. **Exclude Uncovered Code** — loads in functions that never appear
//!    in PC samples are dropped (average 12x reduction in the paper).
//! 2. **Prioritize Hotter Code** — surviving loads are ordered by the
//!    sample weight of their function, hottest first, so the greedy
//!    search visits impactful sites first.
//! 3. **Only Innermost Loops** — loads not at their function's maximum
//!    loop depth are dropped (44x total reduction, >80% dynamic-load
//!    coverage in the paper).

use std::collections::HashMap;

use pir::{FuncId, LoadSiteId};
use protean::{HostMonitor, Runtime};

/// Search-space sizes after each successive heuristic — the data behind
/// Figure 8.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HeuristicReport {
    /// Static loads in the whole program ("Full Program").
    pub total_loads: usize,
    /// Loads in PC-sample-covered functions ("Active Regions").
    pub active_loads: usize,
    /// Covered loads at their function's max loop depth ("Max Depth").
    pub max_depth_loads: usize,
}

impl HeuristicReport {
    /// Overall reduction factor (total / final), `inf`-safe.
    pub fn reduction(&self) -> f64 {
        if self.max_depth_loads == 0 {
            f64::INFINITY
        } else {
            self.total_loads as f64 / self.max_depth_loads as f64
        }
    }
}

/// Applies the three heuristics, returning the candidate sites in search
/// order (hotter functions first, program order within a function) plus
/// the reduction report.
///
/// Only sites in *virtualized* functions are returned — the runtime can
/// only re-dispatch functions with EVT slots — and the list is capped at
/// `max_sites` (the report counts are pre-cap).
pub fn select_candidates(
    rt: &Runtime,
    mon: &HostMonitor,
    max_sites: usize,
) -> (Vec<LoadSiteId>, HeuristicReport) {
    select_candidates_with(rt, mon, max_sites, true, true)
}

/// [`select_candidates`] with each pruning heuristic individually
/// toggleable — the ablation surface for DESIGN.md's
/// `ablate_heuristics` experiment.
pub fn select_candidates_with(
    rt: &Runtime,
    mon: &HostMonitor,
    max_sites: usize,
    use_active_regions: bool,
    use_max_depth: bool,
) -> (Vec<LoadSiteId>, HeuristicReport) {
    let module = rt.module();
    let all = pir::load_sites(module);
    let hot = mon.hot_funcs();
    let weight: HashMap<FuncId, f64> = hot.iter().copied().collect();

    let active: Vec<&pir::LoadSite> = all
        .iter()
        .filter(|s| !use_active_regions || weight.contains_key(&s.site.func))
        .collect();
    let deep: Vec<&pir::LoadSite> = active
        .iter()
        .filter(|s| !use_max_depth || s.at_max_depth())
        .copied()
        .collect();

    let report = HeuristicReport {
        total_loads: all.len(),
        active_loads: active.len(),
        max_depth_loads: deep.len(),
    };

    let dispatchable: Vec<FuncId> = rt.virtualized_funcs();
    let mut candidates: Vec<LoadSiteId> = deep
        .iter()
        .filter(|s| dispatchable.contains(&s.site.func))
        .map(|s| s.site)
        .collect();
    // Order by function hotness (descending), then program order.
    candidates.sort_by(|a, b| {
        let wa = weight.get(&a.func).copied().unwrap_or(0.0);
        let wb = weight.get(&b.func).copied().unwrap_or(0.0);
        wb.partial_cmp(&wa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    candidates.truncate(max_sites);
    (candidates, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc::{Compiler, Options};
    use protean::RuntimeConfig;
    use simos::{Os, OsConfig};
    use workloads::catalog;

    fn monitored(name: &str) -> (Os, Runtime, HostMonitor) {
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let m = catalog::build(name, llc).unwrap();
        let img = Compiler::new(Options::protean()).compile(&m).unwrap().image;
        let mut os = Os::new(cfg);
        let pid = os.spawn(&img, 0);
        let rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
        let mut mon = HostMonitor::new(&os, pid, 1.0);
        // Sample long enough that every hot function of the big
        // benchmarks is observed (soplex rounds take ~1M cycles).
        for _ in 0..4000 {
            os.advance(1013);
            mon.sample(&os, &rt);
        }
        (os, rt, mon)
    }

    #[test]
    fn cold_code_is_excluded() {
        let (_, rt, mon) = monitored("soplex");
        let (sites, report) = select_candidates(&rt, &mon, 1000);
        assert_eq!(report.total_loads, 15666);
        assert!(
            report.active_loads < report.total_loads / 5,
            "active-region prune too weak: {} of {}",
            report.active_loads,
            report.total_loads
        );
        assert!(report.max_depth_loads <= report.active_loads);
        assert!(!sites.is_empty());
        // Final candidate count near the paper's 57 for soplex.
        assert!(
            (40..=80).contains(&report.max_depth_loads),
            "soplex should reduce to ~57 sites, got {}",
            report.max_depth_loads
        );
    }

    #[test]
    fn candidates_are_innermost_only() {
        let (_, rt, mon) = monitored("bzip2");
        let (sites, _) = select_candidates(&rt, &mon, 1000);
        let all = pir::load_sites(rt.module());
        for site in &sites {
            let ls = all.iter().find(|s| s.site == *site).unwrap();
            assert!(ls.at_max_depth(), "candidate {site} not at max depth");
        }
    }

    #[test]
    fn hotter_functions_come_first() {
        let (_, rt, mon) = monitored("milc");
        let (sites, _) = select_candidates(&rt, &mon, 1000);
        let hot = mon.hot_funcs();
        let weight: HashMap<FuncId, f64> = hot.iter().copied().collect();
        let weights: Vec<f64> = sites
            .iter()
            .map(|s| weight.get(&s.func).copied().unwrap_or(0.0))
            .collect();
        for w in weights.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "candidates must be hotness-ordered: {weights:?}"
            );
        }
    }

    #[test]
    fn cap_respected() {
        let (_, rt, mon) = monitored("sphinx3");
        let (sites, report) = select_candidates(&rt, &mon, 8);
        assert!(sites.len() <= 8);
        assert!(report.max_depth_loads >= sites.len(), "report is pre-cap");
    }

    #[test]
    fn reduction_factor_reported() {
        let (_, rt, mon) = monitored("libquantum");
        let (_, report) = select_candidates(&rt, &mon, 64);
        assert!(
            report.reduction() > 10.0,
            "libquantum reduces strongly: {report:?}"
        );
    }
}
