//! Binary search over nap intensities (the skeleton of Algorithm 2).
//!
//! "The performance of both the application and its co-runners are
//! monotonic as a function of nap intensity, so PC3D organizes the
//! variant evaluation as a binary search over the range of nap
//! intensities" — and only "within the range of nap intensities between
//! the lower and upper bounds established by evaluating other variants."

/// Stateful bisection: probe a nap intensity, report whether co-runner
/// QoS was satisfied, repeat until the bracket is tighter than the
/// tolerance. The invariant maintained is that `ub` is always feasible
/// (or the initial upper bound) and `lb` always infeasible (or the
/// initial lower bound).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NapBisection {
    lb: f64,
    ub: f64,
    tol: f64,
    probes: u32,
}

impl NapBisection {
    /// Starts a bisection over `[lb, ub]` with termination tolerance
    /// `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the bracket is inverted or the tolerance non-positive.
    pub fn new(lb: f64, ub: f64, tol: f64) -> Self {
        assert!(lb <= ub, "inverted bracket [{lb}, {ub}]");
        assert!(tol > 0.0, "tolerance must be positive");
        NapBisection {
            lb,
            ub,
            tol,
            probes: 0,
        }
    }

    /// True when the bracket is tight enough.
    pub fn done(&self) -> bool {
        self.ub - self.lb <= self.tol
    }

    /// The next nap intensity to evaluate (the bracket midpoint).
    pub fn probe(&self) -> f64 {
        (self.lb + self.ub) / 2.0
    }

    /// Records the outcome at the current probe: `qos_ok` means the
    /// co-runner met its target, so lower naps may suffice.
    pub fn observe(&mut self, qos_ok: bool) {
        let mid = self.probe();
        if qos_ok {
            self.ub = mid;
        } else {
            self.lb = mid;
        }
        self.probes += 1;
    }

    /// The final (feasible) nap intensity.
    pub fn result(&self) -> f64 {
        self.ub
    }

    /// Current bracket.
    pub fn bracket(&self) -> (f64, f64) {
        (self.lb, self.ub)
    }

    /// Number of probes performed.
    pub fn probes(&self) -> u32 {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a bisection against a synthetic threshold: QoS is met iff
    /// nap >= threshold. Returns the found nap.
    fn solve(threshold: f64, lb: f64, ub: f64, tol: f64) -> (f64, u32) {
        let mut b = NapBisection::new(lb, ub, tol);
        while !b.done() {
            let nap = b.probe();
            b.observe(nap >= threshold);
        }
        (b.result(), b.probes())
    }

    #[test]
    fn converges_to_threshold() {
        for threshold in [0.1, 0.23, 0.5, 0.99] {
            let (nap, _) = solve(threshold, 0.0, 1.0, 0.01);
            assert!(
                (nap - threshold).abs() <= 0.011,
                "threshold {threshold} found {nap}"
            );
            assert!(nap >= threshold - 1e-9, "result must be feasible");
        }
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let (_, probes) = solve(0.37, 0.0, 1.0, 0.01);
        assert!(probes <= 7, "1/0.01 range needs <= 7 probes, took {probes}");
    }

    #[test]
    fn narrow_bracket_terminates_immediately() {
        let b = NapBisection::new(0.40, 0.42, 0.05);
        assert!(b.done());
        assert_eq!(b.result(), 0.42);
        assert_eq!(b.probes(), 0);
    }

    #[test]
    fn tighter_bounds_reduce_probes() {
        let (_, wide) = solve(0.5, 0.0, 1.0, 0.02);
        let (_, narrow) = solve(0.5, 0.4, 0.6, 0.02);
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn infeasible_everywhere_returns_upper_bound() {
        let (nap, _) = solve(2.0, 0.0, 1.0, 0.01); // threshold above ub
        assert_eq!(nap, 1.0);
    }

    #[test]
    fn feasible_everywhere_returns_near_lower_bound() {
        let (nap, _) = solve(0.0, 0.0, 1.0, 0.01);
        assert!(nap <= 0.01 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bracket_rejected() {
        let _ = NapBisection::new(0.9, 0.1, 0.01);
    }
}
