#![warn(missing_docs)]

//! # `pc3d` — Protean Code for Cache Contention in Datacenters
//!
//! The paper's Section IV system: a protean-code decision engine that
//! dynamically inserts and removes non-temporal memory-access hints on a
//! batch host's loads, mixed with napping as a fallback, so that a
//! high-priority co-runner meets its QoS target while the host's
//! throughput is maximized.
//!
//! The pieces map to the paper directly:
//!
//! * [`heuristics`] — Section IV-C's search-space reduction: *exclude
//!   uncovered code* (PC samples), *prioritize hotter code*, *only
//!   innermost loops* (IR loop analysis). Produces the Figure 8 report.
//! * [`bisect`] — Section IV-E's binary search over nap intensities
//!   (Algorithm 2's control skeleton), exploiting monotonicity of
//!   performance in nap intensity.
//! * [`controller`] — Algorithm 1's greedy variant search plus the
//!   steady-state loop: flux-based solo estimation (Section IV-F),
//!   co-phase detection, variant dispatch through the protean runtime,
//!   and nap fallback.
//!
//! # Example
//!
//! ```no_run
//! use pc3d::{Pc3d, Pc3dConfig};
//! use pcc::{Compiler, Options};
//! use protean::{Runtime, RuntimeConfig};
//! use simos::{LoadSchedule, Os, OsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = OsConfig::scaled();
//! let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
//! let service = workloads::catalog::build("web-search", llc).expect("catalog");
//! let batch = workloads::catalog::build("libquantum", llc).expect("catalog");
//! let service_img = Compiler::new(Options::plain()).compile(&service)?.image;
//! let batch_img = Compiler::new(Options::protean()).compile(&batch)?.image;
//!
//! let mut os = Os::new(cfg);
//! let ws = os.spawn(&service_img, 0);
//! let lq = os.spawn(&batch_img, 1);
//! os.set_load(ws, LoadSchedule::constant(80.0));
//! let rt = Runtime::attach(&os, lq, RuntimeConfig::on_core(2))?;
//! let mut ctl = Pc3d::new(&mut os, rt, ws, Pc3dConfig { qos_target: 0.95, ..Default::default() });
//! ctl.run_for(&mut os, 120.0);
//! println!("variant carries {} hints at nap {:.2}", ctl.hints(), ctl.nap());
//! # Ok(())
//! # }
//! ```

pub mod bisect;
pub mod controller;
pub mod heuristics;

pub use bisect::NapBisection;
pub use controller::{Pc3d, Pc3dConfig, WindowRecord};
pub use heuristics::{select_candidates, select_candidates_with, HeuristicReport};
