//! The PC3D controller: greedy variant search (Algorithm 1), online
//! variant evaluation (Algorithm 2), flux-based QoS monitoring
//! (Section IV-F), and co-phase-driven re-transformation.

use pcc::NtAssignment;
use pir::FuncId;
use protean::{
    EventKind, ExtMonitor, FaultPlan, HealthConfig, HealthMonitor, HealthState, HostMonitor,
    MonitorReport, OsrConfig, OsrController, PhaseChange, PhaseDetector, Runtime, Subsystem,
};
use simos::{Os, Pid};

use crate::bisect::NapBisection;
use crate::heuristics::{select_candidates, HeuristicReport};

/// PC3D configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Pc3dConfig {
    /// Co-runner QoS target in (0, 1].
    pub qos_target: f64,
    /// Steady-state measurement window in simulated seconds.
    pub window_secs: f64,
    /// Evaluation window used inside the variant search (shorter, to keep
    /// Algorithm 1's total duration in the paper's ~20 s range).
    pub eval_window_secs: f64,
    /// Seconds between flux measurements (paper: 4 s).
    pub flux_period_secs: f64,
    /// Flux freeze duration (paper: 40 ms).
    pub flux_duration_secs: f64,
    /// Nap bisection tolerance (Algorithm 2 termination).
    pub nap_tolerance: f64,
    /// Cap on the number of candidate sites the greedy search visits.
    pub max_sites: usize,
    /// PC-sampling period in seconds.
    pub sample_period_secs: f64,
    /// Runtime-core seconds charged per PC sample (a ptrace stop is tens
    /// of microseconds; monitoring is cheap but not free).
    pub sample_cost_secs: f64,
    /// Exponential smoothing for the flux solo-IPS estimate.
    pub solo_ewma: f64,
    /// Seconds of pure monitoring before the first search (PC histogram
    /// warm-up).
    pub warmup_secs: f64,
    /// Steady-state proportional nap trim gains (fallback napping).
    pub gain_up: f64,
    /// Gain for releasing nap when QoS has headroom.
    pub gain_down: f64,
    /// Smoothing factor for the decision QoS (1.0 = unsmoothed).
    pub qos_alpha: f64,
    /// Seconds after a search or phase reset during which no new search
    /// or reset is triggered (settling time).
    pub cooldown_secs: f64,
    /// Measurement tolerance subtracted from the QoS target in decisions
    /// (windowed IPS ratios carry a ~1% noise floor).
    pub qos_epsilon: f64,
    /// Base interval for re-searching when the current best still needs
    /// heavy napping; doubles (up to 8x) while re-searches fail to
    /// improve, so hopeless hosts don't churn.
    pub research_interval_secs: f64,
    /// Enables the live-OSR engine: when a dispatched variant's function
    /// is stuck mid-loop (call-edge dispatch structurally blind), the
    /// controller parks the thread at a certified loop header and
    /// transfers it into the variant. **Off by default** — with OSR
    /// disabled every run is bit-identical to a build without the engine.
    pub osr: bool,
}

impl Default for Pc3dConfig {
    fn default() -> Self {
        Pc3dConfig {
            qos_target: 0.95,
            window_secs: 0.5,
            eval_window_secs: 0.3,
            flux_period_secs: 8.0,
            flux_duration_secs: 0.8,
            nap_tolerance: 0.12,
            max_sites: 10,
            sample_period_secs: 0.005,
            sample_cost_secs: 20e-6,
            solo_ewma: 0.35,
            warmup_secs: 2.0,
            gain_up: 1.5,
            gain_down: 1.0,
            qos_alpha: 0.35,
            cooldown_secs: 4.0,
            qos_epsilon: 0.01,
            research_interval_secs: 30.0,
            osr: false,
        }
    }
}

impl Pc3dConfig {
    /// Preset for cluster-scale simulation (the `datacenter` crate):
    /// the same control laws, but a shorter warm-up so controllers on
    /// thousands of simulated servers reach steady state within the
    /// first few cluster epochs, and a longer re-search interval so
    /// hopeless hosts don't churn the greedy search at fleet scale.
    pub fn datacenter() -> Self {
        Pc3dConfig {
            warmup_secs: 1.0,
            research_interval_secs: 60.0,
            ..Pc3dConfig::default()
        }
    }
}

/// One window of the controller's timeline (drives Figure 16).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WindowRecord {
    /// Window end time in simulated seconds.
    pub t: f64,
    /// Host branches per second.
    pub host_bps: f64,
    /// Co-runner QoS (IPS / estimated solo IPS).
    pub qos: f64,
    /// Nap intensity in effect.
    pub nap: f64,
    /// Number of non-temporal hints in the dispatched variant.
    pub hints: usize,
    /// Whether this window was part of a variant search.
    pub searching: bool,
    /// Fraction of all server cycles consumed by the runtime during the
    /// window (compilation + monitoring).
    pub runtime_frac: f64,
}

/// State for one additional protected co-runner.
struct ExtraExt {
    pid: Pid,
    mon: ExtMonitor,
    solo_ips: f64,
}

/// The PC3D decision engine for one (host, co-runner) pair.
pub struct Pc3d {
    config: Pc3dConfig,
    rt: Runtime,
    host: Pid,
    ext: Pid,
    host_mon: HostMonitor,
    ext_mon: ExtMonitor,
    host_perf_mon: ExtMonitor,
    /// Additional protected co-runners beyond the primary one; the
    /// effective QoS is the minimum across all of them ("QoS of
    /// co-runners is satisfied", Algorithm 2).
    extra: Vec<ExtraExt>,
    extra_qos_min: f64,
    ext_phase: PhaseDetector,
    host_phase: PhaseDetector,
    solo_ips: f64,
    next_flux: f64,
    applied: NtAssignment,
    candidate_funcs: Vec<FuncId>,
    nap: f64,
    searched_this_phase: bool,
    /// Nap intensity the last search concluded; steady-state drift far
    /// above it invalidates the search (conditions changed under us).
    searched_nap: f64,
    /// When the last search finished, and the current re-search backoff.
    last_search_end: f64,
    research_interval: f64,
    last_best_bps: f64,
    searches: u64,
    /// Phase-change resets performed (diagnostics).
    resets_ext: u64,
    resets_host: u64,
    /// Smoothed QoS used for decisions (raw windows are noisy at low
    /// co-runner load).
    qos_smooth: f64,
    /// Smoothed external progress rate fed to the phase detector (raw
    /// windowed IPS jitters with the co-runner's own cache phases).
    ext_rate_smooth: f64,
    /// No phase-resets or new searches before this time (settling).
    cooldown_until: f64,
    last_report: Option<HeuristicReport>,
    last_runtime_cycles: u64,
    last_window_end: u64,
    history: Vec<WindowRecord>,
    /// Self-healing layer: every compile/dispatch routes through it, and
    /// its degradation ladder overrides the controller's policy
    /// (`Degraded`/`Detached` → nap-only, no new variants).
    health: HealthMonitor,
    /// Live-OSR engine (active only with [`Pc3dConfig::osr`]): parks a
    /// thread stuck mid-loop and transfers it into the dispatched
    /// variant, with probation + deopt back to baseline.
    osr: OsrController,
}

impl Pc3d {
    /// Creates the controller around an attached protean [`Runtime`],
    /// protecting co-runner `ext`. Performs an initial flux measurement.
    /// The self-healing layer runs with default thresholds
    /// ([`with_health`](Pc3d::with_health) to customize).
    pub fn new(os: &mut Os, rt: Runtime, ext: Pid, config: Pc3dConfig) -> Self {
        Pc3d::with_health(os, rt, ext, config, HealthConfig::default())
    }

    /// [`new`](Pc3d::new) with explicit self-healing thresholds.
    pub fn with_health(
        os: &mut Os,
        rt: Runtime,
        ext: Pid,
        config: Pc3dConfig,
        health: HealthConfig,
    ) -> Self {
        let host = rt.pid();
        // A tracer armed via `PROTEAN_TRACE` should also see the
        // kernel's side of the story (PC-sample / HPM delivery).
        if rt.tracer().is_enabled() && !os.obs_trace_enabled() {
            os.set_obs_trace(Some(protean::trace::DEFAULT_RING_CAP));
        }
        let mut ctl = Pc3d {
            config,
            host_mon: HostMonitor::new(os, host, 0.5),
            ext_mon: ExtMonitor::new(os, ext),
            host_perf_mon: ExtMonitor::new(os, host),
            ext_phase: PhaseDetector::default(),
            host_phase: PhaseDetector::default(),
            extra: Vec::new(),
            extra_qos_min: 1.0,
            rt,
            host,
            ext,
            solo_ips: 0.0,
            next_flux: 0.0,
            applied: NtAssignment::none(),
            candidate_funcs: Vec::new(),
            nap: 0.0,
            searched_this_phase: false,
            searched_nap: 0.0,
            last_search_end: 0.0,
            research_interval: config.research_interval_secs,
            last_best_bps: 0.0,
            searches: 0,
            resets_ext: 0,
            resets_host: 0,
            qos_smooth: 1.0,
            ext_rate_smooth: 0.0,
            cooldown_until: 0.0,
            last_report: None,
            last_runtime_cycles: os.runtime_consumed_total(),
            last_window_end: os.now(),
            history: Vec::new(),
            health: HealthMonitor::new(health),
            osr: OsrController::new(OsrConfig {
                enabled: config.osr,
                ..OsrConfig::default()
            }),
        };
        ctl.flux(os);
        ctl.next_flux = os.now_seconds() + config.flux_period_secs;
        ctl
    }

    /// Registers an additional co-runner whose QoS must also be
    /// protected. The controller's decisions use the *minimum* QoS across
    /// every registered co-runner.
    pub fn add_corunner(&mut self, os: &Os, pid: Pid) {
        self.extra.push(ExtraExt {
            pid,
            mon: ExtMonitor::new(os, pid),
            solo_ips: 0.0,
        });
    }

    /// The attached runtime (variant index, compile statistics).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The self-healing layer (degradation state, healing counters).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// The live-OSR engine (phase, goal; counters live in the merged
    /// metrics snapshot under `osr.*`).
    pub fn osr(&self) -> &OsrController {
        &self.osr
    }

    /// Arms a fault-injection plan on the runtime and the OS observation
    /// surface (chaos testing).
    pub fn inject_faults(&mut self, os: &mut Os, plan: FaultPlan) {
        os.set_obs_faults(Some(plan.obs_faults()));
        self.rt.set_fault_plan(plan);
    }

    /// Forces the `Detached` rung: every function restored to its
    /// original code and the nap released. Until the ladder recovers, no
    /// variants are compiled; subsequent windows still run nap-only
    /// ReQoS control so the co-runner stays protected.
    pub fn force_detach(&mut self, os: &mut Os) {
        self.health.force_detach(os, &mut self.rt);
        self.applied = NtAssignment::none();
        self.nap = 0.0;
        os.set_nap(self.host, 0.0);
    }

    /// One combined status report: window rates, gate counters, health
    /// counters, hot functions.
    pub fn report(&self, os: &Os) -> MonitorReport {
        self.host_mon.report_with_health(os, &self.rt, &self.health)
    }

    /// One merged metrics snapshot across the runtime (`compile.*`,
    /// `gate.*`, `dispatch.*`, `pc3d.*`) and the health layer
    /// (`health.*`).
    pub fn metrics_snapshot(&self) -> protean::Snapshot {
        self.rt
            .metrics()
            .snapshot()
            .merge(self.health.metrics().snapshot())
    }

    /// Exports the merged runtime + kernel trace under the directory
    /// named by `PROTEAN_TRACE` (see
    /// [`Runtime::export_trace`](protean::Runtime::export_trace)).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing the trace files.
    pub fn export_trace(
        &self,
        os: &Os,
        name: &str,
    ) -> std::io::Result<Option<protean::TraceFiles>> {
        self.rt.export_trace(os, name)
    }

    /// Emits a controller-stream trace event at the current cycle.
    fn emit(&mut self, os: &Os, kind: EventKind) {
        self.rt
            .tracer_mut()
            .emit(os.now(), Subsystem::Controller, kind);
    }

    /// Timeline records.
    pub fn history(&self) -> &[WindowRecord] {
        &self.history
    }

    /// Number of full variant searches performed.
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Phase resets triggered by (external, host) detectors so far.
    pub fn resets(&self) -> (u64, u64) {
        (self.resets_ext, self.resets_host)
    }

    /// Heuristic report from the most recent search.
    pub fn heuristic_report(&self) -> Option<HeuristicReport> {
        self.last_report
    }

    /// Current nap intensity.
    pub fn nap(&self) -> f64 {
        self.nap
    }

    /// Hints in the currently dispatched variant.
    pub fn hints(&self) -> usize {
        self.applied.len()
    }

    /// Current solo-IPS estimate for the co-runner.
    pub fn solo_ips(&self) -> f64 {
        self.solo_ips
    }

    /// Mean co-runner QoS over history, skipping `skip` warmup windows.
    pub fn mean_qos(&self, skip: usize) -> f64 {
        let tail = &self.history[skip.min(self.history.len())..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.qos).sum::<f64>() / tail.len() as f64
    }

    /// Serializes the timeline to CSV (for plotting Figure 16-style
    /// traces downstream).
    pub fn history_csv(&self) -> String {
        let mut out = String::from("t_s,host_bps,qos,nap,hints,searching,runtime_frac\n");
        for r in &self.history {
            out.push_str(&format!(
                "{:.2},{:.1},{:.4},{:.3},{},{},{:.6}\n",
                r.t, r.host_bps, r.qos, r.nap, r.hints, r.searching as u8, r.runtime_frac
            ));
        }
        out
    }

    /// Mean host BPS over history, skipping warmup windows.
    pub fn mean_host_bps(&self, skip: usize) -> f64 {
        let tail = &self.history[skip.min(self.history.len())..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.host_bps).sum::<f64>() / tail.len() as f64
    }

    // ------------------------------------------------------------------
    // Measurement machinery
    // ------------------------------------------------------------------

    /// Flux: freeze the host for `flux_duration` and sample the co-runner
    /// running alone (Section IV-F). The first 60% of the freeze lets the
    /// co-runner's cache state recover (the simulated time base compresses
    /// wall time ~2600x but cache capacity only ~50x, so refill takes a
    /// proportionally longer slice of simulated time than on the paper's
    /// testbed); only the tail is measured.
    fn flux(&mut self, os: &mut Os) {
        os.set_frozen(self.host, true);
        os.advance_seconds(self.config.flux_duration_secs * 0.6);
        // The solo rate is measured over the whole tail, as before — but
        // HPM counter reads can be garbled (see `simos::ObsFaults`), and
        // because garbling perturbs *cumulative* counts, one bad read can
        // throw a windowed rate off by orders of magnitude and poison
        // every subsequent QoS ratio. Three sub-probes over the same tail
        // provide a median cross-check: a primary reading far outside the
        // median's band is discarded in favor of the median (at most one
        // sub-window shares a garbled read with the primary).
        let sub_secs = self.config.flux_duration_secs * 0.4 / 3.0;
        let mut full = ExtMonitor::new(os, self.ext);
        let mut extra_full: Vec<ExtMonitor> = self
            .extra
            .iter()
            .map(|e| ExtMonitor::new(os, e.pid))
            .collect();
        let mut ips = [0.0f64; 3];
        let mut extra_ips = vec![[0.0f64; 3]; self.extra.len()];
        for k in 0..3 {
            let mut probe = ExtMonitor::new(os, self.ext);
            let mut extra_probes: Vec<ExtMonitor> = self
                .extra
                .iter()
                .map(|e| ExtMonitor::new(os, e.pid))
                .collect();
            os.advance_seconds(sub_secs);
            ips[k] = probe.end_window(os).ips;
            for (slot, p) in extra_ips.iter_mut().zip(extra_probes.iter_mut()) {
                slot[k] = p.end_window(os).ips;
            }
        }
        let full_ips = full.end_window(os).ips;
        let extra_full_ips: Vec<f64> = extra_full
            .iter_mut()
            .map(|p| p.end_window(os).ips)
            .collect();
        os.set_frozen(self.host, false);
        fn median3(mut v: [f64; 3]) -> f64 {
            v.sort_by(|a, b| a.total_cmp(b));
            v[1]
        }
        fn robust(primary: f64, med: f64) -> f64 {
            if med > 0.0 && !(med * 0.5..=med * 2.0).contains(&primary) {
                med
            } else {
                primary
            }
        }
        let ewma = self.config.solo_ewma;
        let w_ips = robust(full_ips, median3(ips));
        if w_ips > 0.0 {
            self.solo_ips = if self.solo_ips == 0.0 {
                w_ips
            } else {
                ewma * w_ips + (1.0 - ewma) * self.solo_ips
            };
        }
        for ((e, sub), full_e) in self
            .extra
            .iter_mut()
            .zip(extra_ips.iter())
            .zip(extra_full_ips.iter())
        {
            let we_ips = robust(*full_e, median3(*sub));
            if we_ips > 0.0 {
                e.solo_ips = if e.solo_ips == 0.0 {
                    we_ips
                } else {
                    ewma * we_ips + (1.0 - ewma) * e.solo_ips
                };
            }
            e.mon = ExtMonitor::new(os, e.pid);
        }
        self.ext_mon = ExtMonitor::new(os, self.ext);
        self.host_perf_mon = ExtMonitor::new(os, self.host);
    }

    /// Advances one measurement window of `secs` (flux first if due),
    /// PC-sampling the host throughout. Returns `(co-runner stats, host
    /// stats)`.
    fn advance_window(
        &mut self,
        os: &mut Os,
        secs: f64,
    ) -> (protean::WindowStats, protean::WindowStats) {
        if os.now_seconds() >= self.next_flux {
            self.flux(os);
            self.next_flux = os.now_seconds() + self.config.flux_period_secs;
        }
        let end = os.now_seconds() + secs;
        let sample_cost =
            (self.config.sample_cost_secs * os.config().machine.cycles_per_second as f64) as u64;
        while os.now_seconds() < end {
            os.advance_seconds(self.config.sample_period_secs);
            let pc = self.host_mon.sample(os, &self.rt);
            self.rt.note_pc_sample(os.now(), pc);
            os.charge_runtime(self.rt.config().core, sample_cost.max(1));
            if self.config.osr {
                // The same sample stream drives the live-OSR engine: a
                // thread pinned in a certified loop of a function whose
                // variant is already dispatched (but never re-entered)
                // gets transferred mid-loop instead of waiting for a call
                // edge that may never come.
                self.osr
                    .note_pc_sample(os, &mut self.rt, &mut self.health, pc);
                self.osr.tick(os, &mut self.rt, &mut self.health);
            }
        }
        let ext = self.ext_mon.end_window(os);
        let host = self.host_perf_mon.end_window(os);
        let _ = self.host_mon.end_window(os);
        // Minimum QoS among additional protected co-runners this window.
        self.extra_qos_min = 1.0f64;
        for i in 0..self.extra.len() {
            let we = self.extra[i].mon.end_window(os);
            let solo = self.extra[i].solo_ips;
            let q = if solo <= 0.0 {
                1.0
            } else {
                let raw = we.ips / solo;
                if we.busy < 0.35 && raw < 1.0 {
                    1.0
                } else {
                    raw
                }
            };
            self.extra_qos_min = self.extra_qos_min.min(q);
        }
        (ext, host)
    }

    fn qos(&self, ext: &protean::WindowStats) -> f64 {
        if self.solo_ips <= 0.0 {
            return 1.0;
        }
        let raw = ext.ips / self.solo_ips;
        // A mostly-idle co-runner (a server between requests) is keeping
        // up with its offered load: it is meeting QoS even though its
        // windowed IPS is tiny and noisy.
        if ext.busy < 0.35 && raw < 1.0 {
            1.0
        } else {
            raw
        }
    }

    fn record(
        &mut self,
        os: &Os,
        ext: &protean::WindowStats,
        host: &protean::WindowStats,
        searching: bool,
    ) {
        let rc = os.runtime_consumed_total();
        let dt_cycles = os.now().saturating_sub(self.last_window_end).max(1);
        let cores = os.config().machine.cores as u64;
        let runtime_frac = (rc - self.last_runtime_cycles) as f64 / (dt_cycles * cores) as f64;
        self.last_runtime_cycles = rc;
        self.last_window_end = os.now();
        self.history.push(WindowRecord {
            t: os.now_seconds(),
            host_bps: host.bps,
            // Cap for reporting: early flux underestimates of solo IPS can
            // briefly make the ratio exceed 1.
            qos: self.qos(ext).min(1.25),
            nap: self.nap,
            hints: self.applied.len(),
            searching,
            runtime_frac,
        });
    }

    // ------------------------------------------------------------------
    // Variant dispatch
    // ------------------------------------------------------------------

    /// Dispatches variant `nt`: every candidate function is recompiled
    /// with its subset of hints (identical requests hit the runtime's
    /// variant cache), or restored to the original code when it carries
    /// no hints.
    fn apply_variant(&mut self, os: &mut Os, nt: &NtAssignment) {
        if !self.health.allows_variants() {
            // Degraded/Detached: nap-only — candidates run original code.
            for func in self.candidate_funcs.clone() {
                let _ = self.rt.restore(os, func);
            }
            self.applied = NtAssignment::none();
            return;
        }
        for func in self.candidate_funcs.clone() {
            let sub: NtAssignment = nt.sites_in(func).into_iter().collect();
            if sub.is_empty() {
                let _ = self.rt.restore(os, func);
            } else {
                // Route through the health layer: faults are absorbed
                // (retry/quarantine/ladder) and the function keeps its
                // previous — ultimately original — code on failure.
                let _ = self.health.transform(os, &mut self.rt, func, &sub);
            }
        }
        self.applied = nt.clone();
        self.refresh_osr_goal(os);
    }

    /// Points the live-OSR engine at the variant now installed in the
    /// EVT (if any): should PC samples later show the host stuck inside
    /// that function's baseline body, the engine transfers it mid-loop.
    fn refresh_osr_goal(&mut self, os: &Os) {
        if !self.config.osr {
            return;
        }
        self.osr.clear_goal();
        for func in &self.candidate_funcs {
            let Some(addr) = self.rt.current_target(os, *func) else {
                continue;
            };
            let installed = self
                .rt
                .variants()
                .iter()
                .position(|v| v.func == *func && v.len > 0 && v.addr == addr);
            if let Some(idx) = installed {
                self.osr.set_goal(*func, idx);
                return;
            }
        }
    }

    fn set_nap(&mut self, os: &mut Os, nap: f64) {
        let new = nap.clamp(0.0, 0.99);
        let permille = (new * 1000.0).round() as u64;
        if permille != (self.nap * 1000.0).round() as u64 {
            self.emit(os, EventKind::NapSet { permille });
            self.rt
                .metrics_mut()
                .set_gauge("pc3d.nap_permille", permille as f64);
        }
        self.nap = new;
        os.set_nap(self.host, self.nap);
    }

    // ------------------------------------------------------------------
    // Algorithm 2: VariantEval
    // ------------------------------------------------------------------

    /// Evaluates variant `nt`: finds (by bisection within `[lb, ub]`) the
    /// minimum nap intensity at which the co-runner meets its QoS target,
    /// and the host's BPS at that intensity.
    fn variant_eval(&mut self, os: &mut Os, nt: &NtAssignment, lb: f64, ub: f64) -> (f64, f64) {
        self.apply_variant(os, nt);
        let mut bis = NapBisection::new(lb.min(ub), ub.max(lb), self.config.nap_tolerance);
        while !bis.done() {
            let nap = bis.probe();
            self.set_nap(os, nap);
            // Settle: cache occupancy lags nap/variant changes by a cache
            // fill time; discard the transition window.
            let _ = self.advance_window(os, self.config.eval_window_secs);
            let (ext, host) = self.advance_window(os, self.config.eval_window_secs);
            let ok = self.qos(&ext).min(self.extra_qos_min)
                >= self.config.qos_target - self.config.qos_epsilon;
            self.record(os, &ext, &host, true);
            bis.observe(ok);
        }
        // Confirmation at the final nap decides the variant's performance:
        // settle, then average two windows. Per Algorithm 2, BPS is only
        // credited when the co-runner's QoS is actually satisfied.
        let nap = bis.result();
        self.set_nap(os, nap);
        let _ = self.advance_window(os, self.config.eval_window_secs);
        let (ext1, host1) = self.advance_window(os, self.config.eval_window_secs);
        self.record(os, &ext1, &host1, true);
        let (ext2, host2) = self.advance_window(os, self.config.eval_window_secs);
        self.record(os, &ext2, &host2, true);
        let extra1 = self.extra_qos_min;
        let q2 = self.qos(&ext2).min(self.extra_qos_min);
        let qos = ((self.qos(&ext1).min(extra1)) + q2) / 2.0;
        let bps = (host1.bps + host2.bps) / 2.0;
        let feasible_bps = if qos >= self.config.qos_target - self.config.qos_epsilon {
            bps
        } else {
            0.0
        };
        (nap, feasible_bps)
    }

    // ------------------------------------------------------------------
    // Algorithm 1: greedy variant search
    // ------------------------------------------------------------------

    /// Runs the greedy search over the candidate sites, dispatching the
    /// best mix of non-temporal hints + napping found.
    fn search(&mut self, os: &mut Os) {
        let (sites, report) = select_candidates(&self.rt, &self.host_mon, self.config.max_sites);
        self.last_report = Some(report);
        self.searches += 1;
        self.emit(
            os,
            EventKind::SearchStart {
                sites: sites.len() as u64,
            },
        );
        let mut funcs: Vec<FuncId> = sites.iter().map(|s| s.func).collect();
        funcs.sort();
        funcs.dedup();
        self.candidate_funcs = funcs;
        let mut evals: u64 = 0;
        if sites.is_empty() {
            // Nothing transformable: pure nap fallback.
            let (nap0, _) = self.variant_eval(os, &NtAssignment::none(), 0.0, 1.0);
            self.set_nap(os, nap0);
            self.searched_nap = nap0;
            self.searched_this_phase = true;
            self.last_search_end = os.now_seconds();
            self.emit(os, EventKind::SearchEnd { flips: 0, evals: 1 });
            return;
        }

        let zero = NtAssignment::none();
        let one = NtAssignment::all(sites.iter().copied());
        // Bounds: variant 0 exerts the most pressure (upper nap bound),
        // variant 1 the least (lower bound).
        let (nap0, r0) = self.variant_eval(os, &zero, 0.0, 1.0);
        let (nap1, r1) = self.variant_eval(os, &one, 0.0, 1.0);
        evals += 2;
        let mut nap_ub = nap0.max(nap1);
        let nap_lb = nap1.min(nap0);

        let mut m = one.clone();
        let mut best = one.clone();
        let mut r_best = r1;
        let mut best_nap = nap1;
        // Also consider variant 0 as a candidate best (occasionally hints
        // are pure loss). A small acceptance margin keeps single-window
        // noise from cascading through the greedy walk.
        let margin = 1.03;
        if r0 > r_best * margin {
            best = zero.clone();
            r_best = r0;
            best_nap = nap0;
        }

        for site in &sites {
            if nap_ub - nap_lb <= self.config.nap_tolerance {
                break;
            }
            m.flip(*site); // revoke this site's hint
            let (nap_m, r_m) = self.variant_eval(os, &m, nap_lb, nap_ub);
            evals += 1;
            let accepted = r_best * margin < r_m;
            self.emit(
                os,
                EventKind::SearchStep {
                    func: u64::from(site.func.0),
                    accepted,
                },
            );
            if accepted {
                r_best = r_m;
                best = m.clone();
                best_nap = nap_m;
                nap_ub = nap_m;
            } else {
                m.flip(*site); // reject the change
            }
            let _ = nap_lb;
        }

        self.apply_variant(os, &best);
        self.set_nap(os, best_nap);
        self.searched_nap = best_nap;
        self.searched_this_phase = true;
        self.last_search_end = os.now_seconds();
        self.emit(
            os,
            EventKind::SearchEnd {
                flips: best.len() as u64,
                evals,
            },
        );
        // Backoff: if this search did not improve on the previous best,
        // wait longer before trying again.
        if r_best > self.last_best_bps * 1.05 {
            self.research_interval = self.config.research_interval_secs;
        } else {
            self.research_interval =
                (self.research_interval * 2.0).min(self.config.research_interval_secs * 8.0);
        }
        self.last_best_bps = r_best;
    }

    // ------------------------------------------------------------------
    // Steady-state loop
    // ------------------------------------------------------------------

    /// Runs one steady-state window: measure, detect phase changes,
    /// search or trim nap as needed.
    pub fn run_window(&mut self, os: &mut Os) {
        let (ext, host) = self.advance_window(os, self.config.window_secs);
        // The 1.25 cap bounds the damage a garbled (inflated) counter
        // read can do to the smoothed estimate; deflated reads are
        // transient and the smoothing absorbs them.
        let qos = self.qos(&ext).min(self.extra_qos_min).min(1.25);
        let a = self.config.qos_alpha;
        self.qos_smooth = a * qos + (1.0 - a) * self.qos_smooth;
        let slack = ((qos - self.config.qos_target) * 1000.0).max(0.0) as u64;
        self.rt
            .metrics_mut()
            .record("pc3d.qos_window_slack_permille", slack);
        if qos < self.config.qos_target - self.config.qos_epsilon {
            self.rt.metrics_mut().inc("pc3d.qos_window_violations");
        }
        self.record(os, &ext, &host, false);

        // Close the self-healing window: scrub installed variants, process
        // compile retries, walk the degradation ladder's hysteresis. Any
        // rung below Healthy overrides the search policy below.
        let prev_health = self.health.state();
        self.health.end_window(os, &mut self.rt);
        if prev_health != HealthState::Healthy && self.health.state() == HealthState::Healthy {
            // Recovered: the faulted-era search conclusions describe a
            // world where variants were forbidden — start over.
            self.applied = NtAssignment::none();
            self.searched_this_phase = false;
            self.qos_smooth = 1.0;
        }
        if self.health.state() != HealthState::Healthy {
            // Degraded/Detached: nap-only ReQoS fallback. The process's
            // code is untouched (installed variants were restored on the
            // downward transition) but napping is an OS-scheduler
            // facility, not a code transformation, so the co-runner is
            // never protected worse than plain ReQoS. Keep measuring so
            // hysteresis recovery can fire.
            self.applied = NtAssignment::none();
            let effective_target = self.config.qos_target - self.config.qos_epsilon;
            if self.qos_smooth < effective_target {
                let err = effective_target - self.qos_smooth;
                self.set_nap(os, self.nap + self.config.gain_up * err);
            } else if ext.busy < 0.35 {
                self.set_nap(os, self.nap * 0.5 - 0.01);
            } else {
                let err = self.qos_smooth - effective_target;
                self.set_nap(os, self.nap - self.config.gain_down * err);
            }
            return;
        }

        // Co-phase detection: external progress/load shifts or host
        // hot-set shifts invalidate the current variant choice. The rate
        // is smoothed first so the detector sees sustained shifts, not
        // single-window jitter.
        let raw_rate = if ext.app_rate > 0.0 {
            ext.app_rate
        } else {
            ext.ips
        };
        self.ext_rate_smooth = if self.ext_rate_smooth == 0.0 {
            raw_rate
        } else {
            0.4 * raw_rate + 0.6 * self.ext_rate_smooth
        };
        let smoothed = protean::WindowStats {
            app_rate: self.ext_rate_smooth,
            ips: self.ext_rate_smooth,
            ..ext
        };
        // A near-idle co-runner's windowed rates are dominated by arrival
        // granularity; its "phase" is simply idle — observe nothing.
        let ext_rate_change = if ext.busy < 0.35 {
            PhaseChange::Stable
        } else if ext.app_rate > 0.0 {
            self.ext_phase.observe_app_rate(&smoothed)
        } else {
            self.ext_phase.observe_ips(&smoothed)
        };
        // Only significant functions (>=10% of samples) define the phase;
        // occasionally-sampled warm code would churn the set.
        let hot: Vec<FuncId> = self
            .host_mon
            .hot_funcs()
            .iter()
            .filter(|(_, w)| *w >= 0.10)
            .map(|(f, _)| *f)
            .collect();
        let host_change = self.host_phase.observe_hot_set(&hot);
        // Diagnostic trace for controller tuning (documented in
        // DESIGN.md): set PC3D_DEBUG=1 to stream per-window decisions.
        if std::env::var("PC3D_DEBUG").is_ok() {
            eprintln!(
                "[dbg] t={:.1} app_rate={:.1} ips={:.0} smooth={:.1} change={:?} qos={:.3} busy={:.2} nap={:.2}",
                os.now_seconds(), ext.app_rate, ext.ips, self.ext_rate_smooth,
                ext_rate_change, qos, ext.busy, self.nap
            );
        }
        let settled = os.now_seconds() >= self.cooldown_until;
        if settled && (ext_rate_change != PhaseChange::Stable || host_change != PhaseChange::Stable)
        {
            if ext_rate_change != PhaseChange::Stable {
                self.resets_ext += 1;
                self.emit(os, EventKind::PhaseChange { source: "external" });
            }
            if host_change != PhaseChange::Stable {
                self.resets_host += 1;
                self.emit(os, EventKind::PhaseChange { source: "host" });
            }
            // Revert to the original program and re-evaluate from scratch
            // (the paper reverts libquantum at the t=300 load drop).
            let nt_none = NtAssignment::none();
            self.apply_variant(os, &nt_none);
            self.set_nap(os, 0.0);
            self.searched_this_phase = false;
            self.qos_smooth = 1.0;
            self.ext_rate_smooth = 0.0;
            self.ext_phase.reset();
            self.host_phase.reset();
            self.cooldown_until = os.now_seconds() + self.config.cooldown_secs;
            return;
        }

        let warm = os.now_seconds() >= self.config.warmup_secs;
        let qos_d = self.qos_smooth;
        let effective_target = self.config.qos_target - self.config.qos_epsilon;
        // Periodic re-search: if the last search left us napping heavily,
        // conditions may have improved (or it straddled a transition).
        let research_due =
            self.nap > 0.5 && os.now_seconds() > self.last_search_end + self.research_interval;
        if qos_d < effective_target || (research_due && warm && settled) {
            if warm && settled && (!self.searched_this_phase || research_due) {
                self.search(os);
                self.ext_phase.reset();
                self.host_phase.reset();
                self.qos_smooth = 1.0;
                self.cooldown_until = os.now_seconds() + self.config.cooldown_secs;
            } else {
                // Fallback: trim with napping (the search's variant stays).
                let err = effective_target - qos_d;
                let nap = self.nap + self.config.gain_up * err;
                self.set_nap(os, nap);
                // If napping drifts far above what the search concluded,
                // the search's conclusion no longer describes reality
                // (e.g. it straddled a load transition): invalidate it so
                // the next violating window re-searches.
                if self.searched_this_phase && self.nap > self.searched_nap + 0.25 {
                    self.searched_this_phase = false;
                }
            }
        } else if ext.busy < 0.35 {
            // Idle co-runner: nothing to protect; shed nap quickly.
            let nap = self.nap * 0.5 - 0.01;
            self.set_nap(os, nap);
        } else {
            // Headroom: release nap slowly to recover host throughput.
            let err = qos_d - effective_target;
            let nap = self.nap - self.config.gain_down * err;
            self.set_nap(os, nap);
        }
    }

    /// Runs the controller for `secs` simulated seconds.
    pub fn run_for(&mut self, os: &mut Os, secs: f64) {
        let end = os.now_seconds() + secs;
        while os.now_seconds() < end {
            self.run_window(os);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc::{Compiler, Options};
    use protean::RuntimeConfig;
    use simos::{LoadSchedule, OsConfig};
    use workloads::catalog;

    fn setup(host_name: &str, ext_name: &str) -> (Os, Pid, Pid, Runtime) {
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let host_m = catalog::build(host_name, llc).unwrap();
        let ext_m = catalog::build(ext_name, llc).unwrap();
        let host_img = Compiler::new(Options::protean())
            .compile(&host_m)
            .unwrap()
            .image;
        let ext_img = Compiler::new(Options::plain())
            .compile(&ext_m)
            .unwrap()
            .image;
        let mut os = Os::new(cfg);
        let ext = os.spawn(&ext_img, 0);
        let host = os.spawn(&host_img, 1);
        let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(1)).unwrap();
        (os, host, ext, rt)
    }

    #[test]
    fn pc3d_meets_qos_on_contentious_pair() {
        let (mut os, _host, ext, rt) = setup("libquantum", "mcf");
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.run_for(&mut os, 40.0);
        let windows = ctl.history().len();
        let qos = ctl.mean_qos(windows / 2);
        assert!(qos > 0.85, "PC3D should hold QoS near target, got {qos:.3}");
    }

    #[test]
    fn pc3d_searches_and_applies_hints_on_streaming_host() {
        let (mut os, _host, ext, rt) = setup("libquantum", "mcf");
        let mut ctl = Pc3d::new(
            &mut os,
            rt,
            ext,
            Pc3dConfig {
                qos_target: 0.98,
                ..Default::default()
            },
        );
        ctl.run_for(&mut os, 60.0);
        assert!(
            ctl.searches() >= 1,
            "a contentious pair should trigger a search"
        );
        assert!(
            ctl.hints() > 0,
            "libquantum is streaming: the best variant should carry hints"
        );
        let report = ctl.heuristic_report().expect("search produced a report");
        assert_eq!(report.total_loads, 636);
        assert!(report.max_depth_loads < 30);
    }

    #[test]
    fn pc3d_outperforms_nap_only_on_streaming_host() {
        // The paper's core claim: with NT hints the host makes more
        // progress at equal QoS than nap-only throttling.
        let (mut os, _h, ext, rt) = setup("libquantum", "mcf");
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.run_for(&mut os, 60.0);
        let w = ctl.history().len();
        let pc3d_bps = ctl.mean_host_bps(w * 2 / 3);
        let pc3d_qos = ctl.mean_qos(w * 2 / 3);

        let (mut os2, h2, ext2, _rt2) = setup("libquantum", "mcf");
        let mut reqos = reqos_baseline(&mut os2, h2, ext2);
        reqos.run_for(&mut os2, 60.0);
        let w2 = reqos.history().len();
        let reqos_bps = reqos.mean_host_bps(w2 * 2 / 3);
        let reqos_qos = reqos.mean_qos(w2 * 2 / 3);

        assert!(
            pc3d_bps > reqos_bps,
            "PC3D ({pc3d_bps:.0} bps, qos {pc3d_qos:.3}) should beat nap-only \
             ({reqos_bps:.0} bps, qos {reqos_qos:.3}) on a streaming host"
        );
    }

    #[test]
    fn pc3d_reverts_on_load_drop() {
        // Server co-runner whose load drops mid-run: PC3D should detect
        // the co-phase change and let the host run unthrottled.
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let host_m = catalog::build("libquantum", llc).unwrap();
        let ext_m = catalog::build("web-search", llc).unwrap();
        let host_img = Compiler::new(Options::protean())
            .compile(&host_m)
            .unwrap()
            .image;
        let ext_img = Compiler::new(Options::plain())
            .compile(&ext_m)
            .unwrap()
            .image;
        let mut os = Os::new(cfg);
        let ext = os.spawn(&ext_img, 0);
        let host = os.spawn(&host_img, 1);
        // Estimate solo capacity roughly: high then low load.
        // High load near the server's capacity on the small test config,
        // then a deep drop.
        os.set_load(ext, LoadSchedule::steps(vec![(0.0, 10.0), (40.0, 1.0)]));
        let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(1)).unwrap();
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.run_for(&mut os, 100.0);
        // After the load drop the host should be (nearly) unthrottled.
        let late: Vec<_> = ctl
            .history()
            .iter()
            .filter(|r| r.t > 75.0 && !r.searching)
            .collect();
        assert!(!late.is_empty());
        let mean_late_nap: f64 = late.iter().map(|r| r.nap).sum::<f64>() / late.len() as f64;
        assert!(
            mean_late_nap < 0.4,
            "host should be mostly unthrottled at low load, nap {mean_late_nap:.2}"
        );
    }

    #[test]
    fn protects_multiple_corunners() {
        // Three-way co-location: libquantum (host) + two protected
        // externals; the controller's decisions use the minimum QoS.
        let mut cfg = OsConfig::small();
        cfg.machine.cores = 3;
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let host_m = catalog::build("libquantum", llc).unwrap();
        let e1_m = catalog::build("er-naive", llc).unwrap();
        let e2_m = catalog::build("mcf", llc).unwrap();
        let host_img = Compiler::new(Options::protean())
            .compile(&host_m)
            .unwrap()
            .image;
        let e1_img = Compiler::new(Options::plain())
            .compile(&e1_m)
            .unwrap()
            .image;
        let e2_img = Compiler::new(Options::plain())
            .compile(&e2_m)
            .unwrap()
            .image;
        let mut os = Os::new(cfg);
        let e1 = os.spawn(&e1_img, 0);
        let host = os.spawn(&host_img, 1);
        let e2 = os.spawn(&e2_img, 2);
        let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(1)).unwrap();
        let mut ctl = Pc3d::new(
            &mut os,
            rt,
            e1,
            Pc3dConfig {
                qos_target: 0.95,
                ..Default::default()
            },
        );
        ctl.add_corunner(&os, e2);
        ctl.run_for(&mut os, 40.0);
        let w = ctl.history().len();
        let qos = ctl.mean_qos(w / 2);
        assert!(
            qos > 0.85,
            "min-QoS across both co-runners should be held, got {qos:.3}"
        );
    }

    #[test]
    fn forced_detach_goes_untouched_and_recovers_through_the_ladder() {
        let (mut os, _h, ext, rt) = setup("libquantum", "mcf");
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.run_for(&mut os, 10.0);
        ctl.force_detach(&mut os);
        assert_eq!(ctl.health().state(), HealthState::Detached);
        assert_eq!(ctl.nap(), 0.0);
        assert_eq!(ctl.hints(), 0);
        // A window while detached leaves the code untouched (the first
        // clean windows are not enough to recover — hysteresis), though
        // nap-only control keeps running.
        ctl.run_window(&mut os);
        assert_eq!(ctl.health().state(), HealthState::Detached);
        assert_eq!(ctl.hints(), 0);
        // Fault-free windows climb the ladder back to Healthy.
        ctl.run_for(&mut os, 10.0);
        assert_eq!(ctl.health().state(), HealthState::Healthy);
        assert!(ctl.health().stats().recoveries >= 2);
        let report = ctl.report(&os);
        assert!(report.health.is_some(), "report carries healing counters");
    }

    #[test]
    fn evt_faults_degrade_the_controller_to_nap_only() {
        use protean::FaultKind;
        let (mut os, _h, ext, rt) = setup("libquantum", "mcf");
        let mut ctl = Pc3d::with_health(
            &mut os,
            rt,
            ext,
            // A high target guarantees a violation window → a search →
            // dispatch attempts that hit the injected EVT faults.
            Pc3dConfig {
                qos_target: 0.98,
                ..Pc3dConfig::default()
            },
            HealthConfig {
                degrade_threshold: 2,
                detach_threshold: 1_000,
                // Never recover within the test: the ladder must hold.
                recovery_windows: u32::MAX,
                ..HealthConfig::default()
            },
        );
        // Every EVT write is dropped: the first search's dispatches fault
        // until the ladder drops to Degraded (nap-only).
        ctl.inject_faults(
            &mut os,
            FaultPlan::seeded(5).with_rate(FaultKind::EvtWriteFail, 1.0),
        );
        ctl.run_for(&mut os, 60.0);
        assert_eq!(ctl.health().state(), HealthState::Degraded);
        assert_eq!(ctl.hints(), 0, "no variant survives dropped EVT writes");
        assert!(ctl.health().stats().evt_write_failures >= 2);
        // Nap-only control still runs: the co-runner is not abandoned.
        let w = ctl.history().len();
        let qos = ctl.mean_qos(w / 2);
        assert!(qos > 0.7, "degraded mode still protects QoS, got {qos:.3}");
    }

    #[test]
    fn history_csv_has_all_rows() {
        let (mut os, _h, ext, rt) = setup("libquantum", "mcf");
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.run_for(&mut os, 5.0);
        let csv = ctl.history_csv();
        assert_eq!(csv.lines().count(), ctl.history().len() + 1);
        assert!(csv.starts_with("t_s,host_bps"));
    }

    #[test]
    fn runtime_cycles_stay_small() {
        let (mut os, _h, ext, rt) = setup("milc", "mcf");
        let mut ctl = Pc3d::new(&mut os, rt, ext, Pc3dConfig::default());
        ctl.run_for(&mut os, 30.0);
        let total_runtime = os.runtime_consumed_total() as f64;
        let server = os.server_cycles() as f64;
        assert!(
            total_runtime / server < 0.02,
            "runtime should use <2% of server cycles, used {:.3}%",
            100.0 * total_runtime / server
        );
    }

    // A minimal nap-only baseline reusing the reqos crate is not possible
    // here (circular dev-dependency), so the test embeds one.
    struct NapOnly {
        host: Pid,
        ext: Pid,
        solo: f64,
        nap: f64,
        hist: Vec<(f64, f64)>, // (qos, host_bps)
        ext_mon: ExtMonitor,
        host_mon: ExtMonitor,
        next_flux: f64,
    }

    fn reqos_baseline(os: &mut Os, host: Pid, ext: Pid) -> NapOnly {
        let mut n = NapOnly {
            host,
            ext,
            solo: 0.0,
            nap: 0.0,
            hist: Vec::new(),
            ext_mon: ExtMonitor::new(os, ext),
            host_mon: ExtMonitor::new(os, host),
            next_flux: 0.0,
        };
        n.flux(os);
        n.next_flux = os.now_seconds() + 4.0;
        n
    }

    impl NapOnly {
        fn flux(&mut self, os: &mut Os) {
            os.set_frozen(self.host, true);
            let mut probe = ExtMonitor::new(os, self.ext);
            os.advance_seconds(0.04);
            let w = probe.end_window(os);
            os.set_frozen(self.host, false);
            if w.ips > 0.0 {
                self.solo = if self.solo == 0.0 {
                    w.ips
                } else {
                    0.5 * w.ips + 0.5 * self.solo
                };
            }
            self.ext_mon = ExtMonitor::new(os, self.ext);
            self.host_mon = ExtMonitor::new(os, self.host);
        }

        fn run_for(&mut self, os: &mut Os, secs: f64) {
            let end = os.now_seconds() + secs;
            while os.now_seconds() < end {
                if os.now_seconds() >= self.next_flux {
                    self.flux(os);
                    self.next_flux = os.now_seconds() + 4.0;
                }
                os.advance_seconds(0.2);
                let w = self.ext_mon.end_window(os);
                let h = self.host_mon.end_window(os);
                let qos = if self.solo > 0.0 {
                    w.ips / self.solo
                } else {
                    1.0
                };
                let err = 0.95 - qos;
                if err > 0.0 {
                    self.nap = (self.nap + 3.0 * err).min(0.99);
                } else {
                    self.nap = (self.nap + 0.4 * err).max(0.0);
                }
                os.set_nap(self.host, self.nap);
                self.hist.push((qos, h.bps));
            }
        }

        fn history(&self) -> &[(f64, f64)] {
            &self.hist
        }

        fn mean_qos(&self, skip: usize) -> f64 {
            let t = &self.hist[skip.min(self.hist.len())..];
            t.iter().map(|x| x.0).sum::<f64>() / t.len().max(1) as f64
        }

        fn mean_host_bps(&self, skip: usize) -> f64 {
            let t = &self.hist[skip.min(self.hist.len())..];
            t.iter().map(|x| x.1).sum::<f64>() / t.len().max(1) as f64
        }
    }
}
