//! Property-based tests for the machine: cache invariants, hierarchy
//! policies, and interpreter robustness against arbitrary code.

use proptest::collection::vec;
use proptest::prelude::*;

use machine::{
    AccessKind, Cache, CacheConfig, CostModel, ExecContext, ExecEnv, InsertPos, MachineConfig,
    MemorySystem, NtPolicy, PerfCounters,
};
use visa::{Op, PReg};

fn arb_insert() -> impl Strategy<Value = InsertPos> {
    prop_oneof![Just(InsertPos::Mru), Just(InsertPos::Lru)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        ops in vec((any::<u64>(), arb_insert()), 0..2000),
    ) {
        let mut c = Cache::new(CacheConfig { sets: 16, ways: 4, hit_latency: 0 });
        for (line, pos) in ops {
            if !c.lookup(line) {
                c.fill(line, pos);
            }
            prop_assert!(c.occupancy() <= c.capacity());
        }
    }

    #[test]
    fn filled_line_is_immediately_present(lines in vec(any::<u64>(), 1..200)) {
        let mut c = Cache::new(CacheConfig { sets: 8, ways: 2, hit_latency: 0 });
        for line in lines {
            c.fill(line, InsertPos::Mru);
            prop_assert!(c.probe(line), "line {line} missing right after fill");
        }
    }

    #[test]
    fn eviction_only_removes_one_line(lines in vec(any::<u64>(), 1..500)) {
        let mut c = Cache::new(CacheConfig { sets: 8, ways: 2, hit_latency: 0 });
        let mut prev = 0usize;
        for line in lines {
            let evicted = c.fill(line, InsertPos::Mru);
            let now = c.occupancy();
            match evicted {
                Some(_) => prop_assert!(now == prev || now == prev.saturating_sub(0)),
                None => prop_assert!(now >= prev),
            }
            prop_assert!(now <= prev + 1, "occupancy can grow at most one per fill");
            prev = now;
        }
    }

    #[test]
    fn hit_plus_miss_equals_lookups(lines in vec(0u64..64, 1..500)) {
        let mut c = Cache::new(CacheConfig { sets: 4, ways: 2, hit_latency: 0 });
        for (i, line) in lines.into_iter().enumerate() {
            if !c.lookup(line) {
                c.fill(line, InsertPos::Mru);
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, i as u64 + 1);
        }
    }

    #[test]
    fn swar_lookup_agrees_with_scalar_probe(
        ops in vec((any::<u64>(), arb_insert(), any::<bool>()), 0..2000),
    ) {
        // `probe` scans the full tags scalar-style; `lookup` goes through
        // the SWAR partial-tag scan. They must agree on presence for
        // every line, on every geometry (including non-multiple-of-8
        // ways with padding lanes and >8-way multi-word sets).
        for (sets, ways) in [(4usize, 3usize), (16, 4), (2, 12)] {
            let mut c = Cache::new(CacheConfig { sets, ways, hit_latency: 0 });
            for &(line, pos, inv) in &ops {
                let present = c.probe(line);
                prop_assert_eq!(c.lookup(line), present, "line {} in {}x{}", line, sets, ways);
                if inv {
                    prop_assert_eq!(c.invalidate(line), present);
                    prop_assert!(!c.probe(line));
                } else if !present {
                    c.fill(line, pos);
                    prop_assert!(c.probe(line));
                }
            }
        }
    }

    #[test]
    fn nt_bypass_never_fills_llc(addrs in vec(0u64..(1 << 20), 1..300)) {
        let mut cfg = MachineConfig::small();
        cfg.nt_policy = NtPolicy::Bypass;
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        for a in addrs {
            mem.access(0, a, AccessKind::NonTemporalPrefetch, &mut counters);
            prop_assert_eq!(mem.llc_occupancy_where(|_| true), 0);
        }
    }

    #[test]
    fn hierarchy_latency_is_bounded(
        accesses in vec((0usize..2, 0u64..(1 << 18), any::<bool>()), 1..500),
    ) {
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        for (core, addr, store) in accesses {
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            let stall = mem.access(core, addr, kind, &mut counters);
            prop_assert!(stall <= cfg.mem_latency);
        }
    }

    #[test]
    fn interpreter_never_panics_on_arbitrary_code(
        raw in vec((0u8..16, any::<u8>(), any::<u8>(), any::<u8>(), -64i64..64), 1..80),
    ) {
        // Build arbitrary (often invalid) programs from a compact tuple
        // encoding; the interpreter must fault or halt, never panic.
        let text: Vec<Op> = raw
            .iter()
            .map(|(kind, a, b, c, imm)| {
                let r = |x: &u8| PReg(x % 16);
                match kind % 12 {
                    0 => Op::Movi { dst: r(a), imm: *imm },
                    1 => Op::Alu {
                        op: pir::BinOp::ALL[(*b as usize) % 16],
                        dst: r(a),
                        a: r(b),
                        b: r(c),
                    },
                    2 => Op::AluImm {
                        op: pir::BinOp::ALL[(*b as usize) % 16],
                        dst: r(a),
                        a: r(c),
                        imm: *imm,
                    },
                    3 => Op::Load { dst: r(a), base: r(b), offset: *imm },
                    4 => Op::Store { base: r(a), offset: *imm, src: r(b) },
                    5 => Op::PrefetchNta { base: r(a), offset: *imm },
                    6 => Op::Jmp { target: u32::from(*c) },
                    7 => Op::Bnz { cond: r(a), target: u32::from(*c) },
                    8 => Op::Bz { cond: r(a), target: u32::from(*c) },
                    9 => Op::Call { target: u32::from(*c), dst: Some(r(a)), args: vec![r(b)] },
                    10 => Op::Ret { src: None },
                    _ => Op::Halt,
                }
            })
            .collect();
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut data = vec![0u8; 4096];
        let mut blocks = machine::BlockCache::new();
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let _ = machine::exec::run(&mut ctx, &mut env, 200_000);
    }

    #[test]
    fn decoded_tier_matches_fallback_on_arbitrary_code(
        raw in vec((0u8..16, any::<u8>(), any::<u8>(), any::<u8>(), -64i64..64), 1..80),
        quantum in prop_oneof![Just(1u64), Just(13), Just(100_000)],
    ) {
        // Differential property: the cached+fused decoded tier and the
        // always-decode fallback must be bit-identical on arbitrary
        // (often invalid) programs — same stop reasons, cycle counts,
        // counters, final PC/status, and data image — at any quantum
        // size, including one-cycle quanta that split every fused pair.
        let text: Vec<Op> = raw
            .iter()
            .map(|(kind, a, b, c, imm)| {
                let r = |x: &u8| PReg(x % 16);
                match kind % 12 {
                    0 => Op::Movi { dst: r(a), imm: *imm },
                    1 => Op::Alu {
                        op: pir::BinOp::ALL[(*b as usize) % 16],
                        dst: r(a),
                        a: r(b),
                        b: r(c),
                    },
                    2 => Op::AluImm {
                        op: pir::BinOp::ALL[(*b as usize) % 16],
                        dst: r(a),
                        a: r(c),
                        imm: *imm,
                    },
                    3 => Op::Load { dst: r(a), base: r(b), offset: *imm },
                    4 => Op::Store { base: r(a), offset: *imm, src: r(b) },
                    5 => Op::PrefetchNta { base: r(a), offset: *imm },
                    6 => Op::Jmp { target: u32::from(*c) },
                    7 => Op::Bnz { cond: r(a), target: u32::from(*c) },
                    8 => Op::Bz { cond: r(a), target: u32::from(*c) },
                    9 => Op::Call { target: u32::from(*c), dst: Some(r(a)), args: vec![r(b)] },
                    10 => Op::Ret { src: None },
                    _ => Op::Halt,
                }
            })
            .collect();
        let run_mode = |fallback: bool| {
            let cfg = MachineConfig::small();
            let mut mem = MemorySystem::new(&cfg);
            let mut counters = PerfCounters::default();
            let mut ctx = ExecContext::new(0, 1, 0);
            let mut data = vec![0u8; 4096];
            let mut blocks = machine::BlockCache::new();
            blocks.set_fallback(fallback);
            let mut trail = Vec::new();
            for _ in 0..200 {
                let mut env = ExecEnv {
                    text: &text,
                    text_gen: 0,
                    blocks: &mut blocks,
                    data: &mut data,
                    mem: &mut mem,
                    core: 0,
                    counters: &mut counters,
                    costs: CostModel::default(),
                };
                let res = machine::exec::run(&mut ctx, &mut env, quantum);
                trail.push((ctx.pc(), ctx.status(), res.cycles, res.stop));
                if res.stop != machine::StopReason::BudgetExhausted {
                    break;
                }
            }
            (trail, counters, data)
        };
        prop_assert_eq!(run_mode(false), run_mode(true));
    }

    #[test]
    fn counters_are_monotonic_under_execution(steps in 1usize..20) {
        let text = vec![
            Op::Movi { dst: PReg(0), imm: 64 },
            Op::Load { dst: PReg(1), base: PReg(0), offset: 0 },
            Op::AluImm { op: pir::BinOp::Add, dst: PReg(0), a: PReg(0), imm: 64 },
            Op::AluImm { op: pir::BinOp::Rem, dst: PReg(0), a: PReg(0), imm: 2048 },
            Op::Jmp { target: 1 },
        ];
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut data = vec![0u8; 4096];
        let mut prev = counters;
        let mut blocks = machine::BlockCache::new();
        for _ in 0..steps {
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let _ = machine::exec::run(&mut ctx, &mut env, 1000);
            prop_assert!(counters.cycles >= prev.cycles);
            prop_assert!(counters.instructions >= prev.instructions);
            prop_assert!(counters.branches >= prev.branches);
            prop_assert!(counters.llc_misses >= prev.llc_misses);
            prev = counters;
        }
    }
}
