//! A set-associative cache with true-LRU replacement and configurable
//! insertion position (the mechanism behind non-temporal hints).

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Reserved for future pipelined-latency modelling (the hierarchy adds
    /// level latencies itself).
    pub hit_latency: u64,
}

/// Where a filled line lands in its set's LRU stack.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum InsertPos {
    /// Most-recently-used: the normal fill.
    Mru,
    /// Least-recently-used: the next victim in its set (non-temporal
    /// insert policy).
    Lru,
}

/// Aggregate statistics for one cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Valid lines evicted by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// Replicates a byte into all eight lanes of a u64.
const LANES: u64 = 0x0101_0101_0101_0101;
/// High bit of each byte lane.
const HIGH: u64 = 0x8080_8080_8080_8080;

/// SWAR byte-equality: returns a mask with bit `0x80` set in every byte
/// lane where `word` equals `target` (the classic zero-byte trick over
/// `word ^ target`).
#[inline]
fn byte_eq_mask(word: u64, target: u64) -> u64 {
    let x = word ^ target;
    x.wrapping_sub(LANES) & !x & HIGH
}

/// One set-associative cache level, keyed by line address.
///
/// The cache stores *line addresses* (byte address divided by line size);
/// the hierarchy performs that division once.
///
/// The way scan is word-parallel: alongside the full tags, each way
/// keeps an 8-bit *partial tag* (the address bits just above the set
/// index) packed eight ways per u64. A lookup scans one u64 per eight
/// ways with SWAR byte-equality and verifies the (rare) candidate lanes
/// against the full tags, so partial collisions and padding lanes can
/// never fake a hit.
///
/// All per-set state lives in one contiguous block of `meta` —
/// `[partial words | tags row | stamps row]` — so one set visit touches
/// one or two host cache lines instead of three scattered arrays. On the
/// simulator's demand path the set visit is the unit of work, and the
/// host-side locality of that block is what the layout buys.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// `sets - 1`, precomputed so indexing is a single mask.
    set_mask: usize,
    /// `log2(sets)`: partial tags are taken just above the set-index bits
    /// so lines of one set differ in their partials as early as possible.
    set_bits: u32,
    /// u64 words of packed partial tags per set (`ways.div_ceil(8)`).
    pwords: usize,
    /// u64 words per set block: `pwords + 2 * ways`.
    stride: usize,
    /// Per-set metadata blocks. Set `s` occupies
    /// `meta[s * stride .. (s + 1) * stride]`: first `pwords` words of
    /// packed partial tags (0xFF per invalid or padding lane), then the
    /// `ways` full tags (line address or `INVALID`), then the `ways` LRU
    /// stamps. A tag at `meta[i]` has its stamp at `meta[i + ways]`.
    meta: Vec<u64>,
    /// Number of `INVALID` entries across all sets. Zero (the steady
    /// state once every way has filled) lets fills skip the invalid-way
    /// scan outright.
    invalid_count: usize,
    tick: u64,
    /// MRU short-circuit: the line and tag index of the last hit. The
    /// slot is re-verified against the tag on use, so intervening fills
    /// and invalidations can never fake a hit.
    last_line: u64,
    last_slot: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "ways must be nonzero");
        let pwords = config.ways.div_ceil(8);
        let stride = pwords + 2 * config.ways;
        let mut meta = vec![0u64; config.sets * stride];
        for set in 0..config.sets {
            let sb = set * stride;
            // 0xFF in every partial lane: the partial of INVALID,
            // including the padding lanes past `ways`.
            meta[sb..sb + pwords].fill(u64::MAX);
            meta[sb + pwords..sb + pwords + config.ways].fill(INVALID);
            // Stamps stay zero.
        }
        Cache {
            sets: config.sets,
            ways: config.ways,
            set_mask: config.sets - 1,
            set_bits: config.sets.trailing_zeros(),
            pwords,
            stride,
            meta,
            invalid_count: config.sets * config.ways,
            tick: 0,
            last_line: INVALID,
            last_slot: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & self.set_mask
    }

    /// Index of the first *tag* word of `set` within `meta` (the set's
    /// partial words sit at `tag_base - pwords`, its stamps at
    /// `tag_base + ways`).
    #[inline]
    fn tag_base(&self, set: usize) -> usize {
        set * self.stride + self.pwords
    }

    /// The 8-bit partial tag of a line: the bits just above the set index.
    #[inline]
    fn partial_of(&self, line: u64) -> u8 {
        (line >> self.set_bits) as u8
    }

    /// Writes the partial tag for `(set, way)` to match `tag`.
    #[inline]
    fn store_partial(&mut self, set: usize, way: usize, tag: u64) {
        let word = set * self.stride + way / 8;
        let shift = (way % 8) * 8;
        self.meta[word] &= !(0xFFu64 << shift);
        self.meta[word] |= u64::from(self.partial_of(tag)) << shift;
    }

    /// Word-parallel way scan: the way holding `line` in `set`, if any.
    /// Candidate lanes from the SWAR partial match are verified against
    /// the full tags, so collisions and padding lanes never fake a hit.
    #[inline]
    fn find_way(&self, set: usize, line: u64) -> Option<usize> {
        let sb = set * self.stride;
        let base = sb + self.pwords;
        let target = u64::from(self.partial_of(line)) * LANES;
        for (w, &word) in self.meta[sb..sb + self.pwords].iter().enumerate() {
            let mut m = byte_eq_mask(word, target);
            while m != 0 {
                let way = w * 8 + (m.trailing_zeros() as usize >> 3);
                if way < self.ways && self.meta[base + way] == line {
                    return Some(way);
                }
                m &= m - 1;
            }
        }
        None
    }

    /// Looks up a line; on hit promotes it to MRU. Returns whether it hit.
    #[inline]
    pub fn lookup(&mut self, line: u64) -> bool {
        self.tick += 1;
        // MRU short-circuit: repeated hits on the same line (the common
        // case for L1 under straight-line code) skip the way scan. The
        // re-stamp keeps true-LRU state exactly as the scan would.
        if line == self.last_line && self.meta[self.last_slot] == line {
            self.meta[self.last_slot + self.ways] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        let set = self.set_of(line);
        // Word-parallel scan: one u64 of packed partial tags covers eight
        // ways, so even a wide (LLC) set is a couple of word compares.
        if let Some(way) = self.find_way(set, line) {
            let slot = self.tag_base(set) + way;
            self.meta[slot + self.ways] = self.tick;
            self.stats.hits += 1;
            self.last_line = line;
            self.last_slot = slot;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Fused miss-and-fill: exactly [`Self::lookup`] followed, on a miss,
    /// by [`Self::fill`]`(line, pos)` — in one set visit instead of two.
    /// Returns whether the lookup hit. Ticks, stamps, statistics, victim
    /// choice, and the MRU slot all evolve bit-identically to the
    /// unfused pair; only the duplicate way scan is gone. The hierarchy
    /// uses this on its demand path, where every miss is followed by a
    /// fill of the same line.
    #[inline]
    pub fn lookup_or_fill(&mut self, line: u64, pos: InsertPos) -> bool {
        self.tick += 1;
        if line == self.last_line && self.meta[self.last_slot] == line {
            self.meta[self.last_slot + self.ways] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        let set = self.set_of(line);
        if let Some(way) = self.find_way(set, line) {
            let slot = self.tag_base(set) + way;
            self.meta[slot + self.ways] = self.tick;
            self.stats.hits += 1;
            self.last_line = line;
            self.last_slot = slot;
            return true;
        }
        self.stats.misses += 1;
        // The fill half: a second tick (as the standalone call would
        // take), then victim choice and write. `line` is known absent, so
        // the present-line re-stamp case cannot arise.
        self.tick += 1;
        self.stats.fills += 1;
        let stamp = match pos {
            InsertPos::Mru => self.tick,
            InsertPos::Lru => 0,
        };
        let base = self.tag_base(set);
        let victim = self
            .first_invalid_way(set)
            .unwrap_or_else(|| self.lru_way(base));
        let slot = base + victim;
        let evicted = self.meta[slot];
        self.meta[slot] = line;
        self.store_partial(set, victim, line);
        self.meta[slot + self.ways] = stamp;
        self.last_line = line;
        self.last_slot = slot;
        if evicted != INVALID {
            self.stats.evictions += 1;
        } else {
            self.invalid_count -= 1;
        }
        false
    }

    /// The LRU victim of the set whose tag row starts at `base`: the
    /// lowest-indexed way with the smallest stamp, exactly as a linear
    /// scan with a `<` comparison would pick it. The selects compile to
    /// conditional moves — stamp orderings are effectively random, so a
    /// data-dependent branch here would mispredict constantly.
    #[inline]
    fn lru_way(&self, base: usize) -> usize {
        let stamps = &self.meta[base + self.ways..base + 2 * self.ways];
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (way, &when) in stamps.iter().enumerate() {
            let take = when < best;
            victim = if take { way } else { victim };
            best = if take { when } else { best };
        }
        victim
    }

    /// Checks presence without updating LRU state or statistics.
    pub fn probe(&self, line: u64) -> bool {
        let base = self.tag_base(self.set_of(line));
        self.meta[base..base + self.ways].contains(&line)
    }

    /// First way whose full tag is `INVALID`, found through the partial
    /// words: invalid ways hold partial 0xFF, so only 0xFF lanes need a
    /// full-tag verify (a valid line whose partial happens to be 0xFF is
    /// rejected there). Scan order is ascending way index, so the choice
    /// matches a linear scan of `tags` exactly.
    #[inline]
    fn first_invalid_way(&self, set: usize) -> Option<usize> {
        if self.invalid_count == 0 {
            // Steady state: every way everywhere is valid.
            return None;
        }
        let sb = set * self.stride;
        let base = sb + self.pwords;
        for (w, &word) in self.meta[sb..sb + self.pwords].iter().enumerate() {
            let mut m = byte_eq_mask(word, u64::MAX);
            while m != 0 {
                let way = w * 8 + (m.trailing_zeros() as usize >> 3);
                if way < self.ways && self.meta[base + way] == INVALID {
                    return Some(way);
                }
                m &= m - 1;
            }
        }
        None
    }

    /// Fills a line at the given insertion position, returning the evicted
    /// line if a valid one was displaced.
    ///
    /// Filling a line that is already present only adjusts its LRU
    /// position.
    ///
    /// The scan never reads the full `tags` row: presence and invalid-way
    /// detection go through the packed partials (full-tag verified per
    /// candidate lane), and the LRU victim comes from `stamps` alone —
    /// one hot partial word plus the stamp row instead of two full-width
    /// rows. The victim choice is identical to the classic one-pass
    /// tags+stamps formulation: first invalid way if any, else the
    /// lowest-indexed way with the smallest stamp.
    pub fn fill(&mut self, line: u64, pos: InsertPos) -> Option<u64> {
        let set = self.set_of(line);
        let base = self.tag_base(set);
        self.tick += 1;
        self.stats.fills += 1;
        let stamp = match pos {
            InsertPos::Mru => self.tick,
            // LRU insert: older than everything currently in the set.
            InsertPos::Lru => 0,
        };
        if let Some(way) = self.find_way(set, line) {
            // Already present: re-stamp only.
            self.meta[base + way + self.ways] = stamp;
            self.last_line = line;
            self.last_slot = base + way;
            return None;
        }
        let victim = self
            .first_invalid_way(set)
            .unwrap_or_else(|| self.lru_way(base));
        let slot = base + victim;
        let evicted = self.meta[slot];
        self.meta[slot] = line;
        self.store_partial(set, victim, line);
        self.meta[slot + self.ways] = stamp;
        self.last_line = line;
        self.last_slot = slot;
        if evicted == INVALID {
            self.invalid_count -= 1;
            None
        } else {
            self.stats.evictions += 1;
            Some(evicted)
        }
    }

    /// Invalidates a line if present; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = self.tag_base(set);
        for way in 0..self.ways {
            if self.meta[base + way] == line {
                self.meta[base + way] = INVALID;
                self.store_partial(set, way, INVALID);
                self.invalid_count += 1;
                return true;
            }
        }
        false
    }

    /// Counts valid lines whose address satisfies `pred` — used to measure
    /// per-process LLC occupancy (the quantity non-temporal hints reduce).
    pub fn occupancy_where(&self, pred: impl Fn(u64) -> bool) -> usize {
        (0..self.sets)
            .map(|set| {
                let base = self.tag_base(set);
                self.meta[base..base + self.ways]
                    .iter()
                    .filter(|&&t| t != INVALID && pred(t))
                    .count()
            })
            .sum()
    }

    /// Total valid lines.
    pub fn occupancy(&self) -> usize {
        self.occupancy_where(|_| true)
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(10));
        c.fill(10, InsertPos::Mru);
        assert!(c.lookup(10));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line addresses).
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Mru);
        // Touch 0 so 2 becomes LRU.
        assert!(c.lookup(0));
        let evicted = c.fill(4, InsertPos::Mru);
        assert_eq!(evicted, Some(2));
        assert!(c.probe(0));
        assert!(c.probe(4));
        assert!(!c.probe(2));
    }

    #[test]
    fn lru_insert_is_next_victim() {
        let mut c = tiny();
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Lru); // NT-style insert
        let evicted = c.fill(4, InsertPos::Mru);
        assert_eq!(
            evicted,
            Some(2),
            "the LRU-inserted line must be evicted first"
        );
        assert!(c.probe(0));
    }

    #[test]
    fn mru_short_circuit_never_fakes_a_hit() {
        let mut c = tiny();
        c.fill(10, InsertPos::Mru);
        assert!(c.lookup(10)); // primes the MRU slot
        assert!(c.lookup(10)); // fast path
                               // Invalidate the remembered line: the fast path must re-verify.
        c.invalidate(10);
        assert!(!c.lookup(10));
        // Evict by filling the set (lines 10, 0, 2 share set 0): a hit on
        // the *replacement* line in the same slot must not leak line 10.
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Mru);
        assert!(!c.lookup(10));
        assert!(c.lookup(0));
        assert!(c.lookup(0));
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn mru_short_circuit_keeps_lru_order_exact() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 2; repeated fast-path hits on 0 must
        // keep re-stamping it so 2 stays the LRU victim.
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Mru);
        for _ in 0..3 {
            assert!(c.lookup(0));
        }
        assert_eq!(c.fill(4, InsertPos::Mru), Some(2));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(10, InsertPos::Mru);
        c.fill(10, InsertPos::Mru);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(10, InsertPos::Mru);
        assert!(c.invalidate(10));
        assert!(!c.probe(10));
        assert!(!c.invalidate(10));
    }

    #[test]
    fn occupancy_filtering() {
        let mut c = Cache::new(CacheConfig {
            sets: 4,
            ways: 4,
            hit_latency: 0,
        });
        for line in 0..8u64 {
            c.fill(line | (1 << 40), InsertPos::Mru);
        }
        for line in 0..4u64 {
            c.fill(line | (2 << 40), InsertPos::Mru);
        }
        assert_eq!(c.occupancy_where(|l| l >> 40 == 1), 8);
        assert_eq!(c.occupancy_where(|l| l >> 40 == 2), 4);
        assert_eq!(c.occupancy(), 12);
        assert_eq!(c.capacity(), 16);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = tiny();
        c.fill(0, InsertPos::Mru);
        for _ in 0..3 {
            assert!(c.lookup(0));
        }
        assert!(!c.lookup(7));
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn partial_tag_collisions_verify_full_tags() {
        // sets = 2 ⇒ partials are bits 1..9. Lines 2, 514, and 1026 all
        // land in set 0 with partial 0x01 (resp. 2>>1 = 1, 514>>1 = 257,
        // 1026>>1 = 513 — all 1 mod 256): the SWAR scan flags every lane,
        // and only the full-tag verify may decide.
        let mut c = Cache::new(CacheConfig {
            sets: 2,
            ways: 4,
            hit_latency: 0,
        });
        c.fill(2, InsertPos::Mru);
        c.fill(514, InsertPos::Mru);
        assert!(c.lookup(2));
        assert!(c.lookup(514));
        assert!(!c.lookup(1026), "partial collision must not fake a hit");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn padding_lanes_never_fake_a_hit() {
        // ways = 3 leaves five padding lanes per partial word holding
        // 0xFF. Line 0x1FE sits in set 0 with partial 0xFF — it matches
        // every padding lane and every invalid way, and must still miss.
        let mut c = Cache::new(CacheConfig {
            sets: 2,
            ways: 3,
            hit_latency: 0,
        });
        assert!(!c.lookup(0x1FE));
        c.fill(0x1FE, InsertPos::Mru);
        assert!(c.lookup(0x1FE));
        // Fill the set; the 0xFF-partial line stays findable wherever the
        // LRU put it, and an absent 0xFF-partial line still misses.
        c.fill(2, InsertPos::Mru);
        c.fill(4, InsertPos::Mru);
        assert!(c.lookup(0x1FE));
        assert!(!c.lookup(0x1FE + 512));
    }

    #[test]
    fn wide_set_scan_finds_every_way() {
        // 16 ways span two partial words; every resident line must be
        // found regardless of which word its way lands in.
        let mut c = Cache::new(CacheConfig {
            sets: 2,
            ways: 16,
            hit_latency: 0,
        });
        let lines: Vec<u64> = (0..16u64).map(|i| i * 2).collect();
        for &l in &lines {
            c.fill(l, InsertPos::Mru);
        }
        for &l in &lines {
            assert!(c.lookup(l), "line {l} lost in wide set");
        }
        assert_eq!(c.occupancy(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 2,
            hit_latency: 0,
        });
    }

    #[test]
    fn streaming_evicts_resident_set_only_with_mru() {
        // A resident working set protected by NT streaming: stream with
        // LRU-insert touches each set once per pass and should displace at
        // most one way per set.
        let mut c = Cache::new(CacheConfig {
            sets: 16,
            ways: 4,
            hit_latency: 0,
        });
        // Resident set: 32 lines (half the cache).
        for line in 0..32u64 {
            c.fill(line, InsertPos::Mru);
        }
        // Stream 1024 distinct lines with NT insert.
        for line in 1000..2024u64 {
            if !c.lookup(line) {
                c.fill(line, InsertPos::Lru);
            }
        }
        let resident_left = c.occupancy_where(|l| l < 32);
        assert!(
            resident_left >= 16,
            "NT streaming should preserve most of the resident set, kept {resident_left}/32"
        );
        // Contrast: MRU streaming wipes the resident set.
        let mut c2 = Cache::new(CacheConfig {
            sets: 16,
            ways: 4,
            hit_latency: 0,
        });
        for line in 0..32u64 {
            c2.fill(line, InsertPos::Mru);
        }
        for line in 1000..2024u64 {
            if !c2.lookup(line) {
                c2.fill(line, InsertPos::Mru);
            }
        }
        let resident_left2 = c2.occupancy_where(|l| l < 32);
        assert!(
            resident_left2 < resident_left,
            "MRU streaming should displace more ({resident_left2} vs {resident_left})"
        );
    }
}
