//! A set-associative cache with true-LRU replacement and configurable
//! insertion position (the mechanism behind non-temporal hints).

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Reserved for future pipelined-latency modelling (the hierarchy adds
    /// level latencies itself).
    pub hit_latency: u64,
}

/// Where a filled line lands in its set's LRU stack.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum InsertPos {
    /// Most-recently-used: the normal fill.
    Mru,
    /// Least-recently-used: the next victim in its set (non-temporal
    /// insert policy).
    Lru,
}

/// Aggregate statistics for one cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Valid lines evicted by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// One set-associative cache level, keyed by line address.
///
/// The cache stores *line addresses* (byte address divided by line size);
/// the hierarchy performs that division once.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// `sets - 1`, precomputed so indexing is a single mask.
    set_mask: usize,
    /// `tags[set * ways + way]`: line address or `INVALID`.
    tags: Vec<u64>,
    /// Monotonic per-entry timestamps implementing true LRU.
    stamps: Vec<u64>,
    tick: u64,
    /// MRU short-circuit: the line and slot of the last hit. The slot is
    /// re-verified against `tags` on use, so intervening fills and
    /// invalidations can never fake a hit.
    last_line: u64,
    last_slot: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "ways must be nonzero");
        Cache {
            sets: config.sets,
            ways: config.ways,
            set_mask: config.sets - 1,
            tags: vec![INVALID; config.sets * config.ways],
            stamps: vec![0; config.sets * config.ways],
            tick: 0,
            last_line: INVALID,
            last_slot: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & self.set_mask
    }

    /// Looks up a line; on hit promotes it to MRU. Returns whether it hit.
    #[inline]
    pub fn lookup(&mut self, line: u64) -> bool {
        self.tick += 1;
        // MRU short-circuit: repeated hits on the same line (the common
        // case for L1 under straight-line code) skip the way scan. The
        // re-stamp keeps true-LRU state exactly as the scan would.
        if line == self.last_line && self.tags[self.last_slot] == line {
            self.stamps[self.last_slot] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        let base = self.set_of(line) * self.ways;
        // Slice scan: one bounds check for the whole set, and a shape the
        // compiler can vectorize for wide (LLC) sets.
        let tags = &self.tags[base..base + self.ways];
        if let Some(way) = tags.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.tick;
            self.stats.hits += 1;
            self.last_line = line;
            self.last_slot = base + way;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Checks presence without updating LRU state or statistics.
    pub fn probe(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Fills a line at the given insertion position, returning the evicted
    /// line if a valid one was displaced.
    ///
    /// Filling a line that is already present only adjusts its LRU
    /// position.
    pub fn fill(&mut self, line: u64, pos: InsertPos) -> Option<u64> {
        let base = self.set_of(line) * self.ways;
        self.tick += 1;
        self.stats.fills += 1;
        let stamp = match pos {
            InsertPos::Mru => self.tick,
            // LRU insert: older than everything currently in the set.
            InsertPos::Lru => 0,
        };
        // One pass over the set: detect an already-present line, remember
        // the first invalid way, and track the smallest stamp among valid
        // ways. The victim choice matches the two-pass formulation exactly
        // (any invalid way beats every valid one).
        let mut invalid_way = usize::MAX;
        let mut victim = 0;
        let mut best = u64::MAX;
        let tags = &self.tags[base..base + self.ways];
        let stamps = &self.stamps[base..base + self.ways];
        for (way, (&tag, &when)) in tags.iter().zip(stamps).enumerate() {
            if tag == line {
                // Already present: re-stamp only.
                self.stamps[base + way] = stamp;
                self.last_line = line;
                self.last_slot = base + way;
                return None;
            }
            if tag == INVALID {
                if invalid_way == usize::MAX {
                    invalid_way = way;
                }
            } else if when < best {
                best = when;
                victim = way;
            }
        }
        if invalid_way != usize::MAX {
            victim = invalid_way;
        }
        let slot = base + victim;
        let evicted = self.tags[slot];
        self.tags[slot] = line;
        self.stamps[slot] = stamp;
        self.last_line = line;
        self.last_slot = slot;
        if evicted == INVALID {
            None
        } else {
            self.stats.evictions += 1;
            Some(evicted)
        }
    }

    /// Invalidates a line if present; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == line {
                self.tags[base + way] = INVALID;
                return true;
            }
        }
        false
    }

    /// Counts valid lines whose address satisfies `pred` — used to measure
    /// per-process LLC occupancy (the quantity non-temporal hints reduce).
    pub fn occupancy_where(&self, pred: impl Fn(u64) -> bool) -> usize {
        self.tags
            .iter()
            .filter(|&&t| t != INVALID && pred(t))
            .count()
    }

    /// Total valid lines.
    pub fn occupancy(&self) -> usize {
        self.occupancy_where(|_| true)
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            hit_latency: 0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(10));
        c.fill(10, InsertPos::Mru);
        assert!(c.lookup(10));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line addresses).
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Mru);
        // Touch 0 so 2 becomes LRU.
        assert!(c.lookup(0));
        let evicted = c.fill(4, InsertPos::Mru);
        assert_eq!(evicted, Some(2));
        assert!(c.probe(0));
        assert!(c.probe(4));
        assert!(!c.probe(2));
    }

    #[test]
    fn lru_insert_is_next_victim() {
        let mut c = tiny();
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Lru); // NT-style insert
        let evicted = c.fill(4, InsertPos::Mru);
        assert_eq!(
            evicted,
            Some(2),
            "the LRU-inserted line must be evicted first"
        );
        assert!(c.probe(0));
    }

    #[test]
    fn mru_short_circuit_never_fakes_a_hit() {
        let mut c = tiny();
        c.fill(10, InsertPos::Mru);
        assert!(c.lookup(10)); // primes the MRU slot
        assert!(c.lookup(10)); // fast path
                               // Invalidate the remembered line: the fast path must re-verify.
        c.invalidate(10);
        assert!(!c.lookup(10));
        // Evict by filling the set (lines 10, 0, 2 share set 0): a hit on
        // the *replacement* line in the same slot must not leak line 10.
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Mru);
        assert!(!c.lookup(10));
        assert!(c.lookup(0));
        assert!(c.lookup(0));
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn mru_short_circuit_keeps_lru_order_exact() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 2; repeated fast-path hits on 0 must
        // keep re-stamping it so 2 stays the LRU victim.
        c.fill(0, InsertPos::Mru);
        c.fill(2, InsertPos::Mru);
        for _ in 0..3 {
            assert!(c.lookup(0));
        }
        assert_eq!(c.fill(4, InsertPos::Mru), Some(2));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(10, InsertPos::Mru);
        c.fill(10, InsertPos::Mru);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(10, InsertPos::Mru);
        assert!(c.invalidate(10));
        assert!(!c.probe(10));
        assert!(!c.invalidate(10));
    }

    #[test]
    fn occupancy_filtering() {
        let mut c = Cache::new(CacheConfig {
            sets: 4,
            ways: 4,
            hit_latency: 0,
        });
        for line in 0..8u64 {
            c.fill(line | (1 << 40), InsertPos::Mru);
        }
        for line in 0..4u64 {
            c.fill(line | (2 << 40), InsertPos::Mru);
        }
        assert_eq!(c.occupancy_where(|l| l >> 40 == 1), 8);
        assert_eq!(c.occupancy_where(|l| l >> 40 == 2), 4);
        assert_eq!(c.occupancy(), 12);
        assert_eq!(c.capacity(), 16);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = tiny();
        c.fill(0, InsertPos::Mru);
        for _ in 0..3 {
            assert!(c.lookup(0));
        }
        assert!(!c.lookup(7));
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 2,
            hit_latency: 0,
        });
    }

    #[test]
    fn streaming_evicts_resident_set_only_with_mru() {
        // A resident working set protected by NT streaming: stream with
        // LRU-insert touches each set once per pass and should displace at
        // most one way per set.
        let mut c = Cache::new(CacheConfig {
            sets: 16,
            ways: 4,
            hit_latency: 0,
        });
        // Resident set: 32 lines (half the cache).
        for line in 0..32u64 {
            c.fill(line, InsertPos::Mru);
        }
        // Stream 1024 distinct lines with NT insert.
        for line in 1000..2024u64 {
            if !c.lookup(line) {
                c.fill(line, InsertPos::Lru);
            }
        }
        let resident_left = c.occupancy_where(|l| l < 32);
        assert!(
            resident_left >= 16,
            "NT streaming should preserve most of the resident set, kept {resident_left}/32"
        );
        // Contrast: MRU streaming wipes the resident set.
        let mut c2 = Cache::new(CacheConfig {
            sets: 16,
            ways: 4,
            hit_latency: 0,
        });
        for line in 0..32u64 {
            c2.fill(line, InsertPos::Mru);
        }
        for line in 1000..2024u64 {
            if !c2.lookup(line) {
                c2.fill(line, InsertPos::Mru);
            }
        }
        let resident_left2 = c2.occupancy_where(|l| l < 32);
        assert!(
            resident_left2 < resident_left,
            "MRU streaming should displace more ({resident_left2} vs {resident_left})"
        );
    }
}
