//! Machine configuration: topology, cache geometry, timing, and policies.

use crate::cache::CacheConfig;

/// What a non-temporal fill does at the shared LLC.
///
/// This is one of the design choices DESIGN.md calls out for ablation:
/// x86 implementations have historically done either.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum NtPolicy {
    /// The line is not allocated in the LLC at all.
    #[default]
    Bypass,
    /// The line is allocated but at LRU position, so it is the next
    /// eviction victim in its set.
    LruInsert,
}

/// Next-line hardware prefetcher configuration.
///
/// Disabled in the calibrated experiment configurations (the paper's
/// effects are cache-occupancy driven); enable it to study how hardware
/// prefetching interacts with software non-temporal hints.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PrefetcherConfig {
    /// Whether the prefetcher is active.
    pub enabled: bool,
    /// How many sequential next lines to prefetch on a demand L1 miss.
    pub degree: u8,
}

/// Per-instruction-class base costs in cycles (beyond memory stalls).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// ALU / move immediate.
    pub alu: u64,
    /// Direct jump / conditional branch.
    pub branch: u64,
    /// Direct call or return (register-window shuffle).
    pub call: u64,
    /// Extra cost of an *indirect* (virtualized) call beyond `call` and
    /// its EVT memory read — the paper's "indirect branches are generally
    /// slightly slower than direct branches".
    pub indirect_penalty: u64,
    /// Issue cost of a non-temporal prefetch instruction.
    pub prefetch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            branch: 1,
            call: 2,
            indirect_penalty: 2,
            prefetch: 1,
        }
    }
}

/// Binary-translation baseline parameters (DynamoRIO-style, Figure 4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct BtConfig {
    /// One-time cost to translate a basic block into the code cache.
    pub translate_block: u64,
    /// Per-executed-branch dispatch overhead (code-cache linking checks).
    pub branch_dispatch: u64,
    /// Per-executed-indirect-branch hash-table lookup overhead.
    pub indirect_dispatch: u64,
    /// Diffuse per-16-instructions tax (code-cache icache pressure,
    /// register liveness stubs) — fractional per-instruction cost.
    pub per_16_insts: u64,
}

impl Default for BtConfig {
    /// Calibrated so the SPEC-like suite shows DynamoRIO's published
    /// ~10-30% per-application overhead (mean ~18%) on this substrate:
    /// binary translators pay trace-exit checks and code-cache dispatch
    /// on taken branches and hash lookups on indirect branches.
    fn default() -> Self {
        BtConfig {
            translate_block: 1_500,
            branch_dispatch: 30,
            indirect_dispatch: 120,
            per_16_insts: 6,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of cores (each with private L1/L2).
    pub cores: usize,
    /// Private L1 data cache geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared LLC geometry.
    pub l3: CacheConfig,
    /// Cache line size in bytes (shared by all levels; power of two).
    pub line_bytes: u64,
    /// Extra latency of an L2 hit (beyond the pipelined L1 time).
    pub l2_latency: u64,
    /// Extra latency of an LLC hit.
    pub l3_latency: u64,
    /// Extra latency of a memory access.
    pub mem_latency: u64,
    /// Non-temporal fill policy at the LLC.
    pub nt_policy: NtPolicy,
    /// Next-line hardware prefetcher.
    pub prefetcher: PrefetcherConfig,
    /// Base instruction costs.
    pub costs: CostModel,
    /// Simulated-cycles-per-second time base (scaled-down "GHz").
    pub cycles_per_second: u64,
}

impl Default for MachineConfig {
    /// A scaled model of the paper's quad-core testbed: 4 cores, 32 KiB
    /// 8-way L1, 512 KiB 8-way L2, 6 MiB 48-way shared LLC (Phenom II
    /// class), 64-byte lines.
    fn default() -> Self {
        MachineConfig {
            cores: 4,
            l1: CacheConfig {
                sets: 64,
                ways: 8,
                hit_latency: 0,
            },
            l2: CacheConfig {
                sets: 1024,
                ways: 8,
                hit_latency: 0,
            },
            l3: CacheConfig {
                sets: 4096,
                ways: 24,
                hit_latency: 0,
            },
            line_bytes: 64,
            l2_latency: 8,
            l3_latency: 30,
            mem_latency: 180,
            nt_policy: NtPolicy::Bypass,
            prefetcher: PrefetcherConfig::default(),
            costs: CostModel::default(),
            cycles_per_second: 1_000_000,
        }
    }
}

impl MachineConfig {
    /// The standard experiment machine: the paper's 4-core topology with
    /// cache capacities scaled consistently with the reduced
    /// cycles-per-second time base, so working-set dynamics (fill, sweep,
    /// reuse) play out on the same *relative* timescales as on the real
    /// testbed. At 1M cycles/simulated-second a core can demand-fill at
    /// most ~5.5k lines/s, so the 2048-line LLC fills in a fraction of a
    /// second — as a 6 MiB LLC does at 2.6 GHz.
    pub fn scaled() -> Self {
        MachineConfig {
            cores: 4,
            l1: CacheConfig {
                sets: 16,
                ways: 2,
                hit_latency: 0,
            },
            l2: CacheConfig {
                sets: 64,
                ways: 4,
                hit_latency: 0,
            },
            l3: CacheConfig {
                sets: 128,
                ways: 16,
                hit_latency: 0,
            },
            line_bytes: 64,
            l2_latency: 8,
            l3_latency: 30,
            mem_latency: 180,
            nt_policy: NtPolicy::Bypass,
            prefetcher: PrefetcherConfig::default(),
            costs: CostModel::default(),
            cycles_per_second: 1_000_000,
        }
    }

    /// A reduced configuration for fast unit tests: 2 cores, tiny caches.
    pub fn small() -> Self {
        MachineConfig {
            cores: 2,
            l1: CacheConfig {
                sets: 8,
                ways: 2,
                hit_latency: 0,
            },
            l2: CacheConfig {
                sets: 16,
                ways: 4,
                hit_latency: 0,
            },
            l3: CacheConfig {
                sets: 32,
                ways: 4,
                hit_latency: 0,
            },
            line_bytes: 64,
            l2_latency: 8,
            l3_latency: 30,
            mem_latency: 180,
            nt_policy: NtPolicy::Bypass,
            prefetcher: PrefetcherConfig::default(),
            costs: CostModel::default(),
            cycles_per_second: 100_000,
        }
    }

    /// Capacity of the shared LLC in bytes.
    pub fn llc_bytes(&self) -> u64 {
        self.l3.sets as u64 * self.l3.ways as u64 * self.line_bytes
    }

    /// Converts a duration in simulated seconds to cycles.
    pub fn seconds_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.cycles_per_second as f64) as u64
    }

    /// Converts cycles to simulated seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cycles_per_second as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = MachineConfig::default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.llc_bytes(), 4096 * 24 * 64); // 6 MiB
        assert!(c.mem_latency > c.l3_latency);
        assert!(c.l3_latency > c.l2_latency);
    }

    #[test]
    fn time_conversions_roundtrip() {
        let c = MachineConfig::default();
        let cycles = c.seconds_to_cycles(2.5);
        assert_eq!(cycles, 2_500_000);
        assert!((c.cycles_to_seconds(cycles) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn nt_policy_default_is_bypass() {
        assert_eq!(NtPolicy::default(), NtPolicy::Bypass);
    }

    #[test]
    fn small_config_smaller_than_default() {
        assert!(MachineConfig::small().llc_bytes() < MachineConfig::default().llc_bytes());
    }

    #[test]
    fn scaled_llc_fills_within_a_window() {
        // The scaled machine must be able to demand-fill its LLC well
        // within a second (the property the default config lacks at the
        // reduced time base).
        let c = MachineConfig::scaled();
        let llc_lines = c.llc_bytes() / c.line_bytes;
        let max_fill_rate = c.cycles_per_second / c.mem_latency; // lines/s
        assert!(
            llc_lines * 2 < max_fill_rate,
            "LLC ({llc_lines} lines) should fill in <1/2 s at {max_fill_rate} lines/s"
        );
    }
}
