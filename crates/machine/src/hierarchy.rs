//! The three-level memory hierarchy: private L1/L2, shared LLC.

use crate::cache::{Cache, InsertPos};
use crate::config::{MachineConfig, NtPolicy, PrefetcherConfig};
use crate::counters::PerfCounters;

/// Kind of memory access, determining fill policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Demand load (8 bytes).
    Load,
    /// Store (write-allocate, write-back; occupancy-equivalent to a load).
    Store,
    /// Non-temporal prefetch: fills L1 normally but bypasses or
    /// LRU-inserts at the LLC, and skips L2, minimizing pollution of the
    /// shared levels — the paper's `prefetchnta` semantics.
    NonTemporalPrefetch,
}

/// The cache hierarchy shared by all cores of the machine.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    line_shift: u32,
    l2_latency: u64,
    l3_latency: u64,
    mem_latency: u64,
    nt_policy: NtPolicy,
    prefetcher: PrefetcherConfig,
}

impl MemorySystem {
    /// Builds the hierarchy for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(config: &MachineConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        MemorySystem {
            l1: (0..config.cores).map(|_| Cache::new(config.l1)).collect(),
            l2: (0..config.cores).map(|_| Cache::new(config.l2)).collect(),
            l3: Cache::new(config.l3),
            line_shift: config.line_bytes.trailing_zeros(),
            l2_latency: config.l2_latency,
            l3_latency: config.l3_latency,
            mem_latency: config.mem_latency,
            nt_policy: config.nt_policy,
            prefetcher: config.prefetcher,
        }
    }

    /// Issues next-line hardware prefetches after a demand L1 miss: the
    /// following `degree` lines are brought into L2/LLC in the background
    /// (no stall charged — the model assumes timely prefetch).
    fn hw_prefetch(&mut self, core: usize, line: u64, counters: &mut PerfCounters) {
        for d in 1..=u64::from(self.prefetcher.degree) {
            let target = line.wrapping_add(d);
            if self.l1[core].probe(target) || self.l2[core].probe(target) {
                continue;
            }
            counters.hw_prefetches += 1;
            self.l2[core].fill(target, InsertPos::Mru);
            if !self.l3.probe(target) {
                self.l3.fill(target, InsertPos::Mru);
            }
        }
    }

    /// Performs an access from `core` to physical byte address `paddr`,
    /// updating `counters` and returning the stall cycles beyond the base
    /// instruction cost.
    #[inline]
    pub fn access(
        &mut self,
        core: usize,
        paddr: u64,
        kind: AccessKind,
        counters: &mut PerfCounters,
    ) -> u64 {
        let line = paddr >> self.line_shift;
        if let AccessKind::NonTemporalPrefetch = kind {
            counters.nt_prefetches += 1;
        }
        // Demand path with the prefetcher off (the default): every miss
        // at a level is followed by a fill of the same line at that
        // level, so each level's lookup and fill fuse into one set visit.
        // Per-cache op sequences (ticks, stamps, stats, victim choices)
        // are bit-identical to the unfused chain below — the caches share
        // no state, so reordering *across* levels changes nothing.
        if !self.prefetcher.enabled {
            return self.access_fused(core, line, kind, counters);
        }
        if self.l1[core].lookup(line) {
            return 0;
        }
        counters.l1_misses += 1;
        if self.prefetcher.enabled && matches!(kind, AccessKind::Load) {
            self.hw_prefetch(core, line, counters);
        }
        if self.l2[core].lookup(line) {
            self.l1[core].fill(line, InsertPos::Mru);
            return self.l2_latency;
        }
        counters.l2_misses += 1;
        if self.l3.lookup(line) {
            counters.llc_hits += 1;
            self.l1[core].fill(line, InsertPos::Mru);
            if !matches!(kind, AccessKind::NonTemporalPrefetch) {
                self.l2[core].fill(line, InsertPos::Mru);
            }
            return self.l3_latency;
        }
        counters.llc_misses += 1;
        // Fill from memory.
        self.l1[core].fill(line, InsertPos::Mru);
        match kind {
            AccessKind::Load | AccessKind::Store => {
                self.l2[core].fill(line, InsertPos::Mru);
                self.l3.fill(line, InsertPos::Mru);
            }
            AccessKind::NonTemporalPrefetch => match self.nt_policy {
                NtPolicy::Bypass => {}
                NtPolicy::LruInsert => {
                    self.l3.fill(line, InsertPos::Lru);
                }
            },
        }
        self.mem_latency
    }

    /// The fused demand path: one set visit per level via
    /// [`Cache::lookup_or_fill`]. Only reachable with the hardware
    /// prefetcher disabled, so the prefetch hook (which must observe
    /// pre-fill state at the levels it probes) never interleaves here.
    #[inline]
    fn access_fused(
        &mut self,
        core: usize,
        line: u64,
        kind: AccessKind,
        counters: &mut PerfCounters,
    ) -> u64 {
        // Every access kind fills L1 at MRU on a miss.
        if self.l1[core].lookup_or_fill(line, InsertPos::Mru) {
            return 0;
        }
        counters.l1_misses += 1;
        match kind {
            AccessKind::Load | AccessKind::Store => {
                if self.l2[core].lookup_or_fill(line, InsertPos::Mru) {
                    return self.l2_latency;
                }
                counters.l2_misses += 1;
                if self.l3.lookup_or_fill(line, InsertPos::Mru) {
                    counters.llc_hits += 1;
                    return self.l3_latency;
                }
                counters.llc_misses += 1;
                self.mem_latency
            }
            AccessKind::NonTemporalPrefetch => {
                // NT accesses never fill L2, and fill the LLC only under
                // the LRU-insert policy — plain lookups at those levels.
                if self.l2[core].lookup(line) {
                    return self.l2_latency;
                }
                counters.l2_misses += 1;
                if self.l3.lookup(line) {
                    counters.llc_hits += 1;
                    return self.l3_latency;
                }
                counters.llc_misses += 1;
                if let NtPolicy::LruInsert = self.nt_policy {
                    self.l3.fill(line, InsertPos::Lru);
                }
                self.mem_latency
            }
        }
    }

    /// Number of LLC lines whose physical address satisfies `pred`
    /// (typically "belongs to address space N") — the occupancy PC3D's
    /// transformations reduce.
    pub fn llc_occupancy_where(&self, pred: impl Fn(u64) -> bool) -> usize {
        self.l3.occupancy_where(pred)
    }

    /// Shared-LLC statistics.
    pub fn llc_stats(&self) -> crate::cache::CacheStats {
        self.l3.stats()
    }

    /// LLC capacity in lines.
    pub fn llc_capacity(&self) -> usize {
        self.l3.capacity()
    }

    /// Read access to one core's L1 (tests/diagnostics).
    pub fn l1(&self, core: usize) -> &Cache {
        &self.l1[core]
    }

    /// Read access to one core's L2 (tests/diagnostics).
    pub fn l2(&self, core: usize) -> &Cache {
        &self.l2[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> (MemorySystem, PerfCounters) {
        (
            MemorySystem::new(&MachineConfig::small()),
            PerfCounters::default(),
        )
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let (mut m, mut c) = sys();
        let stall = m.access(0, 0x1000, AccessKind::Load, &mut c);
        assert_eq!(stall, 180);
        assert_eq!(c.llc_misses, 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let (mut m, mut c) = sys();
        m.access(0, 0x1000, AccessKind::Load, &mut c);
        let stall = m.access(0, 0x1008, AccessKind::Load, &mut c);
        assert_eq!(stall, 0, "same line must hit L1");
        assert_eq!(c.llc_misses, 1);
    }

    #[test]
    fn cross_core_sharing_via_llc() {
        let (mut m, mut c) = sys();
        m.access(0, 0x2000, AccessKind::Load, &mut c);
        let stall = m.access(1, 0x2000, AccessKind::Load, &mut c);
        assert_eq!(stall, 30, "other core should hit the shared LLC");
        assert_eq!(c.llc_hits, 1);
    }

    #[test]
    fn nt_prefetch_bypasses_llc() {
        let (mut m, mut c) = sys();
        m.access(0, 0x3000, AccessKind::NonTemporalPrefetch, &mut c);
        assert_eq!(
            m.llc_occupancy_where(|_| true),
            0,
            "bypass policy fills no LLC line"
        );
        // But L1 got the line: a subsequent load hits.
        let stall = m.access(0, 0x3000, AccessKind::Load, &mut c);
        assert_eq!(stall, 0);
        assert_eq!(c.nt_prefetches, 1);
    }

    #[test]
    fn nt_lru_insert_policy_fills_llc_at_lru() {
        let mut cfg = MachineConfig::small();
        cfg.nt_policy = NtPolicy::LruInsert;
        let mut m = MemorySystem::new(&cfg);
        let mut c = PerfCounters::default();
        m.access(0, 0x3000, AccessKind::NonTemporalPrefetch, &mut c);
        assert_eq!(m.llc_occupancy_where(|_| true), 1);
    }

    #[test]
    fn store_allocates_like_load() {
        let (mut m, mut c) = sys();
        let stall = m.access(0, 0x4000, AccessKind::Store, &mut c);
        assert_eq!(stall, 180);
        assert_eq!(m.llc_occupancy_where(|_| true), 1);
        assert_eq!(m.access(0, 0x4000, AccessKind::Load, &mut c), 0);
    }

    #[test]
    fn llc_contention_between_spaces() {
        // Space 1 installs a working set; space 2 streams with normal
        // loads and displaces it; with NT prefetches it does not.
        let displaced = |nt: bool| {
            let (mut m, mut c) = sys();
            let llc_lines = m.llc_capacity() as u64;
            // Space 1: resident set = half the LLC.
            for i in 0..llc_lines / 2 {
                m.access(0, crate::phys_addr(1, i * 64), AccessKind::Load, &mut c);
            }
            // Space 2: stream 4x the LLC.
            for i in 0..llc_lines * 4 {
                let kind = if nt {
                    AccessKind::NonTemporalPrefetch
                } else {
                    AccessKind::Load
                };
                m.access(1, crate::phys_addr(2, i * 64), kind, &mut c);
            }
            let left = m.llc_occupancy_where(|l| (l << 6) >> 40 == 1);
            (llc_lines / 2) as usize - left
        };
        let d_normal = displaced(false);
        let d_nt = displaced(true);
        assert!(
            d_nt < d_normal / 4,
            "NT streaming should displace far less: {d_nt} vs {d_normal}"
        );
    }

    #[test]
    fn prefetcher_accelerates_streaming() {
        let stream_cost = |enabled: bool| {
            let mut cfg = MachineConfig::small();
            cfg.prefetcher = crate::config::PrefetcherConfig { enabled, degree: 2 };
            let mut m = MemorySystem::new(&cfg);
            let mut c = PerfCounters::default();
            let mut total = 0u64;
            for i in 0..512u64 {
                total += m.access(0, i * 64, AccessKind::Load, &mut c);
            }
            (total, c.hw_prefetches)
        };
        let (without, hw0) = stream_cost(false);
        let (with, hw1) = stream_cost(true);
        assert_eq!(hw0, 0);
        assert!(hw1 > 0);
        assert!(
            with < without / 2,
            "next-line prefetching should hide most stream misses: {with} vs {without}"
        );
    }

    #[test]
    fn prefetcher_does_not_fire_for_nt_accesses() {
        let mut cfg = MachineConfig::small();
        cfg.prefetcher = crate::config::PrefetcherConfig {
            enabled: true,
            degree: 2,
        };
        let mut m = MemorySystem::new(&cfg);
        let mut c = PerfCounters::default();
        m.access(0, 0x8000, AccessKind::NonTemporalPrefetch, &mut c);
        assert_eq!(
            c.hw_prefetches, 0,
            "software NT hints suppress the next-line prefetcher"
        );
    }

    #[test]
    fn l2_hit_latency() {
        let (mut m, mut c) = sys();
        // Fill enough distinct lines mapping to the same L1 set to evict
        // from L1 but stay in L2. L1 small(): 8 sets, 2 ways.
        for i in 0..4u64 {
            m.access(0, i * 64 * 8, AccessKind::Load, &mut c); // same L1 set 0
        }
        // First line now out of L1 (2 ways) but in L2.
        let stall = m.access(0, 0, AccessKind::Load, &mut c);
        assert_eq!(stall, 8, "should be an L2 hit");
    }
}
