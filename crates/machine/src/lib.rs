#![warn(missing_docs)]

//! # `machine` — the simulated multicore server
//!
//! An execution-driven timing simulator for VISA code, standing in for the
//! paper's quad-core AMD Phenom II X4 testbed. It models what the paper's
//! experiments depend on:
//!
//! * **In-order cores** with a simple additive timing model (1 cycle per
//!   instruction plus memory-stall cycles), one hardware context per core.
//! * **A three-level cache hierarchy**: private L1/L2 per core and a
//!   **shared, inclusive-free LLC** — the contended resource PC3D manages.
//!   Non-temporal fills ([`visa::Op::PrefetchNta`]) bypass the LLC or
//!   insert at LRU position, per [`NtPolicy`].
//! * **Hardware performance counters** per context: cycles, instructions,
//!   branches, cache hits/misses — everything the protean runtime's
//!   introspection/extrospection reads.
//! * **A binary-translation execution mode** ([`BtState`]) reproducing the
//!   DynamoRIO baseline of Figure 4: all execution flows from a translation
//!   cache, paying per-block translation and per-branch dispatch costs.
//!
//! The `simos` crate owns processes and scheduling; it calls
//! [`exec::run`] to advance one context by a cycle budget.
//!
//! # Example
//!
//! ```
//! use machine::{AccessKind, MachineConfig, MemorySystem, PerfCounters};
//!
//! let config = MachineConfig::scaled();
//! let mut mem = MemorySystem::new(&config);
//! let mut counters = PerfCounters::default();
//! // A cold miss pays the full memory latency; a re-access hits L1.
//! let cold = mem.access(0, 0x4000, AccessKind::Load, &mut counters);
//! let warm = mem.access(0, 0x4000, AccessKind::Load, &mut counters);
//! assert_eq!(cold, config.mem_latency);
//! assert_eq!(warm, 0);
//! // Non-temporal prefetches never pollute the shared LLC (Bypass policy).
//! mem.access(1, 0x8000, AccessKind::NonTemporalPrefetch, &mut counters);
//! assert_eq!(mem.llc_occupancy_where(|line| line == 0x8000 >> 6), 0);
//! ```

pub mod cache;
pub mod config;
pub mod counters;
pub mod exec;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats, InsertPos};
pub use config::{BtConfig, CostModel, MachineConfig, NtPolicy, PrefetcherConfig};
pub use counters::PerfCounters;
pub use exec::{
    BlockCache, BtState, DecodeStats, ExecContext, ExecEnv, ExecStatus, RunResult, StopReason,
};
pub use hierarchy::{AccessKind, MemorySystem};

/// Composes a per-process physical address from a small address-space id
/// and a virtual address, so distinct processes never alias in the shared
/// LLC.
///
/// # Panics
///
/// Debug-asserts that `vaddr` fits in 40 bits.
#[inline]
pub fn phys_addr(space: u16, vaddr: u64) -> u64 {
    debug_assert!(
        vaddr < (1 << 40),
        "virtual address {vaddr:#x} exceeds 40 bits"
    );
    (u64::from(space) << 40) | vaddr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_separates_spaces() {
        assert_ne!(phys_addr(1, 0x100), phys_addr(2, 0x100));
        assert_eq!(phys_addr(0, 0x100), 0x100);
        assert_eq!(phys_addr(3, 0) >> 40, 3);
    }
}
