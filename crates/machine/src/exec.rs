//! The VISA interpreter with its timing model.
//!
//! [`run`] advances one execution context by a cycle budget. The context
//! owns the architectural state (PC, register-window stack); the caller
//! (the simulated OS) owns text, data, the memory hierarchy, and the
//! counters, passing them in via [`ExecEnv`]. This split is what lets the
//! protean runtime patch a process's EVT or append to its code cache while
//! the process is between quanta — exactly the asynchrony the paper's
//! mechanism relies on.

use std::collections::HashSet;

use visa::{Op, PReg, FRAME_REGS};

use crate::config::{BtConfig, CostModel};
use crate::counters::PerfCounters;
use crate::hierarchy::{AccessKind, MemorySystem};
use crate::phys_addr;

/// Why a [`run`] call stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The cycle budget was exhausted; the context is still runnable.
    BudgetExhausted,
    /// The context executed [`Op::Wait`] and is parked until new work.
    Waiting,
    /// The context executed [`Op::Halt`] or returned from its entry frame.
    Halted,
    /// The context performed an out-of-bounds memory or text access.
    Faulted,
}

/// Liveness of an execution context.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExecStatus {
    /// Eligible to run.
    Running,
    /// Parked on [`Op::Wait`]; resumes after [`ExecContext::wake`].
    Waiting,
    /// Finished.
    Halted,
    /// Dead after a memory fault at the contained data address.
    Faulted(u64),
}

/// Result of one [`run`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunResult {
    /// Cycles actually consumed (may slightly exceed the budget when the
    /// final instruction stalls).
    pub cycles: u64,
    /// Why execution stopped.
    pub stop: StopReason,
}

#[derive(Clone, Debug)]
struct Frame {
    base: usize,
    ret_pc: u32,
    ret_dst: Option<PReg>,
}

/// Binary-translation execution mode (the DynamoRIO-style baseline of
/// Figure 4). When attached to a context, every first-executed basic
/// block pays a translation cost and every branch pays dispatch overhead.
#[derive(Clone, Debug)]
pub struct BtState {
    config: BtConfig,
    translated: HashSet<u32>,
    inst_counter: u8,
    /// Total extra cycles charged so far (for reporting).
    pub overhead_cycles: u64,
}

impl BtState {
    /// Creates a fresh translation cache with the given cost parameters.
    pub fn new(config: BtConfig) -> Self {
        BtState {
            config,
            translated: HashSet::new(),
            inst_counter: 0,
            overhead_cycles: 0,
        }
    }

    /// Charges for reaching `target`: translation if unseen, plus branch
    /// dispatch. Returns cycles.
    fn charge_branch(&mut self, target: u32, indirect: bool) -> u64 {
        let mut cost = if indirect {
            self.config.indirect_dispatch
        } else {
            self.config.branch_dispatch
        };
        if self.translated.insert(target) {
            cost += self.config.translate_block;
        }
        self.overhead_cycles += cost;
        cost
    }

    /// Diffuse per-instruction tax, charged every 16 retired
    /// instructions. Returns cycles for this instruction.
    fn charge_inst(&mut self) -> u64 {
        self.inst_counter = self.inst_counter.wrapping_add(1);
        if self.inst_counter & 15 == 0 {
            self.overhead_cycles += self.config.per_16_insts;
            self.config.per_16_insts
        } else {
            0
        }
    }
}

/// Architectural state of one running program.
#[derive(Clone, Debug)]
pub struct ExecContext {
    pc: u32,
    regs: Vec<i64>,
    frames: Vec<Frame>,
    status: ExecStatus,
    space: u16,
    evt_base: u64,
    bt: Option<BtState>,
    /// Application-metric samples published via [`Op::Report`], drained by
    /// the OS.
    pub reports: Vec<(u8, i64)>,
}

impl ExecContext {
    /// Creates a context starting at `entry` in address space `space`.
    ///
    /// `evt_base` is the data address of EVT slot 0 (0 for non-protean
    /// binaries, which contain no `CallVirt`).
    pub fn new(entry: u32, space: u16, evt_base: u64) -> Self {
        let mut ctx = ExecContext {
            pc: entry,
            regs: Vec::with_capacity(FRAME_REGS * 16),
            frames: Vec::with_capacity(16),
            status: ExecStatus::Running,
            space,
            evt_base,
            bt: None,
            reports: Vec::new(),
        };
        ctx.push_frame(entry, 0, None, &[]);
        ctx.pc = entry;
        ctx
    }

    /// Attaches binary-translation mode (Figure 4 baseline). The entry
    /// block is marked translated up front (its one-time cost happens
    /// before timing starts, as when DynamoRIO takes over a process).
    pub fn with_binary_translation(mut self, config: BtConfig) -> Self {
        let mut bt = BtState::new(config);
        bt.translated.insert(self.pc);
        self.bt = Some(bt);
        self
    }

    /// The current program counter (a PC sample, as the runtime's ptrace
    /// polling would obtain).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Current liveness.
    pub fn status(&self) -> ExecStatus {
        self.status
    }

    /// The address-space id.
    pub fn space(&self) -> u16 {
        self.space
    }

    /// Total binary-translation overhead charged, if in BT mode.
    pub fn bt_overhead(&self) -> Option<u64> {
        self.bt.as_ref().map(|b| b.overhead_cycles)
    }

    /// Wakes a [`ExecStatus::Waiting`] context. No-op otherwise.
    pub fn wake(&mut self) {
        if self.status == ExecStatus::Waiting {
            self.status = ExecStatus::Running;
        }
    }

    /// True if the context can execute.
    pub fn is_running(&self) -> bool {
        self.status == ExecStatus::Running
    }

    /// Call depth (entry frame = 1).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn push_frame(&mut self, target: u32, ret_pc: u32, ret_dst: Option<PReg>, args: &[i64]) {
        let base = self.frames.len() * FRAME_REGS;
        self.regs.resize(base + FRAME_REGS, 0);
        // Zero the new window (resize only zeroes growth; reused capacity
        // after a pop must be cleared).
        for r in &mut self.regs[base..base + FRAME_REGS] {
            *r = 0;
        }
        for (i, a) in args.iter().enumerate() {
            self.regs[base + i] = *a;
        }
        self.frames.push(Frame {
            base,
            ret_pc,
            ret_dst,
        });
        self.pc = target;
    }

    #[inline]
    fn reg(&self, r: PReg) -> i64 {
        self.regs[self.frames.last().expect("live frame").base + r.index()]
    }

    #[inline]
    fn set_reg(&mut self, r: PReg, v: i64) {
        let base = self.frames.last().expect("live frame").base;
        self.regs[base + r.index()] = v;
    }
}

/// Everything outside the context that one quantum of execution touches.
pub struct ExecEnv<'a> {
    /// Program text: loaded image plus any appended code-cache variants.
    pub text: &'a [Op],
    /// The process data segment.
    pub data: &'a mut [u8],
    /// The machine's cache hierarchy.
    pub mem: &'a mut MemorySystem,
    /// Core the context is scheduled on.
    pub core: usize,
    /// The context's hardware counters.
    pub counters: &'a mut PerfCounters,
    /// Instruction base costs.
    pub costs: CostModel,
}

fn fault(ctx: &mut ExecContext, addr: u64) -> StopReason {
    ctx.status = ExecStatus::Faulted(addr);
    StopReason::Faulted
}

/// True if an 8-byte access at `addr` stays inside `len` bytes
/// (overflow-safe: `addr + 8` must not wrap).
#[inline]
fn in_bounds(addr: u64, len: usize) -> bool {
    addr.checked_add(8).is_some_and(|end| end <= len as u64)
}

/// Runs `ctx` for up to `budget` cycles, returning how many cycles were
/// consumed and why execution stopped.
///
/// Memory accesses outside the data segment fault the context rather than
/// panicking, so buggy generated programs surface as [`StopReason::Faulted`].
pub fn run(ctx: &mut ExecContext, env: &mut ExecEnv<'_>, budget: u64) -> RunResult {
    let mut used: u64 = 0;
    if ctx.status != ExecStatus::Running {
        let stop = match ctx.status {
            ExecStatus::Waiting => StopReason::Waiting,
            ExecStatus::Faulted(_) => StopReason::Faulted,
            _ => StopReason::Halted,
        };
        return RunResult { cycles: 0, stop };
    }
    while used < budget {
        let Some(op) = env.text.get(ctx.pc as usize) else {
            let bad = u64::from(ctx.pc);
            let stop = fault(ctx, bad);
            return RunResult { cycles: used, stop };
        };
        env.counters.instructions += 1;
        let mut cost;
        let mut next_pc = ctx.pc + 1;
        let bt_inst_tax = match &mut ctx.bt {
            Some(bt) => bt.charge_inst(),
            None => 0,
        };
        match op {
            Op::Movi { dst, imm } => {
                cost = env.costs.alu;
                ctx.set_reg(*dst, *imm);
            }
            Op::Alu { op, dst, a, b } => {
                cost = env.costs.alu;
                let v = op.eval(ctx.reg(*a), ctx.reg(*b));
                ctx.set_reg(*dst, v);
            }
            Op::AluImm { op, dst, a, imm } => {
                cost = env.costs.alu;
                let v = op.eval(ctx.reg(*a), *imm);
                ctx.set_reg(*dst, v);
            }
            Op::Load { dst, base, offset } => {
                cost = env.costs.alu;
                let addr = ctx.reg(*base).wrapping_add(*offset) as u64;
                if !in_bounds(addr, env.data.len()) {
                    let stop = fault(ctx, addr);
                    return RunResult { cycles: used, stop };
                }
                cost += env.mem.access(
                    env.core,
                    phys_addr(ctx.space, addr),
                    AccessKind::Load,
                    env.counters,
                );
                let a = addr as usize;
                let v = i64::from_le_bytes(env.data[a..a + 8].try_into().expect("8 bytes"));
                ctx.set_reg(*dst, v);
            }
            Op::Store { base, offset, src } => {
                cost = env.costs.alu;
                let addr = ctx.reg(*base).wrapping_add(*offset) as u64;
                if !in_bounds(addr, env.data.len()) {
                    let stop = fault(ctx, addr);
                    return RunResult { cycles: used, stop };
                }
                cost += env.mem.access(
                    env.core,
                    phys_addr(ctx.space, addr),
                    AccessKind::Store,
                    env.counters,
                );
                let v = ctx.reg(*src);
                let a = addr as usize;
                env.data[a..a + 8].copy_from_slice(&v.to_le_bytes());
            }
            Op::PrefetchNta { base, offset } => {
                cost = env.costs.prefetch;
                let addr = ctx.reg(*base).wrapping_add(*offset) as u64;
                // Prefetches to invalid addresses are silently dropped, as
                // on real hardware.
                if in_bounds(addr, env.data.len()) {
                    cost += env.mem.access(
                        env.core,
                        phys_addr(ctx.space, addr),
                        AccessKind::NonTemporalPrefetch,
                        env.counters,
                    );
                }
            }
            Op::Jmp { target } => {
                cost = env.costs.branch;
                env.counters.branches += 1;
                if let Some(bt) = &mut ctx.bt {
                    cost += bt.charge_branch(*target, false);
                }
                next_pc = *target;
            }
            Op::Bnz { cond, target } => {
                cost = env.costs.branch;
                env.counters.branches += 1;
                if ctx.reg(*cond) != 0 {
                    if let Some(bt) = &mut ctx.bt {
                        cost += bt.charge_branch(*target, false);
                    }
                    next_pc = *target;
                }
            }
            Op::Bz { cond, target } => {
                cost = env.costs.branch;
                env.counters.branches += 1;
                if ctx.reg(*cond) == 0 {
                    if let Some(bt) = &mut ctx.bt {
                        cost += bt.charge_branch(*target, false);
                    }
                    next_pc = *target;
                }
            }
            Op::Call { target, dst, args } => {
                cost = env.costs.call;
                env.counters.branches += 1;
                if let Some(bt) = &mut ctx.bt {
                    cost += bt.charge_branch(*target, false);
                }
                let mut vals = [0i64; visa::MAX_ARGS];
                for (i, a) in args.iter().enumerate() {
                    vals[i] = ctx.reg(*a);
                }
                let ret_pc = ctx.pc + 1;
                ctx.push_frame(*target, ret_pc, *dst, &vals[..args.len()]);
                next_pc = *target;
            }
            Op::CallVirt { slot, dst, args } => {
                cost = env.costs.call + env.costs.indirect_penalty;
                env.counters.branches += 1;
                let cell = ctx
                    .evt_base
                    .wrapping_add(8u64.wrapping_mul(u64::from(*slot)));
                if !in_bounds(cell, env.data.len()) {
                    let stop = fault(ctx, cell);
                    return RunResult { cycles: used, stop };
                }
                // The EVT read is an ordinary cached memory access; this
                // is where the (tiny) cost of edge virtualization lives.
                cost += env.mem.access(
                    env.core,
                    phys_addr(ctx.space, cell),
                    AccessKind::Load,
                    env.counters,
                );
                let c = cell as usize;
                let target =
                    u64::from_le_bytes(env.data[c..c + 8].try_into().expect("8 bytes")) as u32;
                if let Some(bt) = &mut ctx.bt {
                    cost += bt.charge_branch(target, true);
                }
                let mut vals = [0i64; visa::MAX_ARGS];
                for (i, a) in args.iter().enumerate() {
                    vals[i] = ctx.reg(*a);
                }
                let ret_pc = ctx.pc + 1;
                ctx.push_frame(target, ret_pc, *dst, &vals[..args.len()]);
                next_pc = target;
            }
            Op::Ret { src } => {
                cost = env.costs.call;
                env.counters.branches += 1;
                let val = src.map(|r| ctx.reg(r));
                let frame = ctx.frames.pop().expect("ret with live frame");
                ctx.regs.truncate(frame.base);
                if ctx.frames.is_empty() {
                    // Returned from the entry frame: program finished.
                    env.counters.cycles += cost;
                    used += cost;
                    ctx.status = ExecStatus::Halted;
                    return RunResult {
                        cycles: used,
                        stop: StopReason::Halted,
                    };
                }
                if let Some(bt) = &mut ctx.bt {
                    cost += bt.charge_branch(frame.ret_pc, true);
                }
                if let (Some(dst), Some(v)) = (frame.ret_dst, val) {
                    ctx.set_reg(dst, v);
                }
                next_pc = frame.ret_pc;
            }
            Op::Report { channel, src } => {
                cost = env.costs.alu;
                let v = ctx.reg(*src);
                ctx.reports.push((*channel, v));
            }
            Op::Wait => {
                cost = env.costs.alu;
                env.counters.cycles += cost;
                used += cost;
                ctx.pc = next_pc;
                ctx.status = ExecStatus::Waiting;
                return RunResult {
                    cycles: used,
                    stop: StopReason::Waiting,
                };
            }
            Op::Halt => {
                cost = env.costs.alu;
                env.counters.cycles += cost;
                used += cost;
                ctx.status = ExecStatus::Halted;
                return RunResult {
                    cycles: used,
                    stop: StopReason::Halted,
                };
            }
        }
        cost += bt_inst_tax;
        env.counters.cycles += cost;
        used += cost;
        ctx.pc = next_pc;
    }
    RunResult {
        cycles: used,
        stop: StopReason::BudgetExhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use pir::BinOp;

    fn env_parts() -> (MemorySystem, Vec<u8>, PerfCounters) {
        let cfg = MachineConfig::small();
        (
            MemorySystem::new(&cfg),
            vec![0u8; 4096],
            PerfCounters::default(),
        )
    }

    fn run_to_end(text: &[Op], data: &mut Vec<u8>, evt_base: u64) -> (ExecContext, PerfCounters) {
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut ctx = ExecContext::new(0, 1, evt_base);
        let mut env = ExecEnv {
            text,
            data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_ne!(
            res.stop,
            StopReason::BudgetExhausted,
            "program should finish"
        );
        (ctx, counters)
    }

    #[test]
    fn arithmetic_and_halt() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 6,
            },
            Op::AluImm {
                op: BinOp::Mul,
                dst: PReg(1),
                a: PReg(0),
                imm: 7,
            },
            Op::Store {
                base: PReg(2),
                offset: 100,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (ctx, counters) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
        assert_eq!(i64::from_le_bytes(data[100..108].try_into().unwrap()), 42);
        assert_eq!(counters.instructions, 4);
    }

    #[test]
    fn load_store_roundtrip() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 256,
            },
            Op::Movi {
                dst: PReg(1),
                imm: -99,
            },
            Op::Store {
                base: PReg(0),
                offset: 0,
                src: PReg(1),
            },
            Op::Load {
                dst: PReg(2),
                base: PReg(0),
                offset: 0,
            },
            Op::Store {
                base: PReg(0),
                offset: 8,
                src: PReg(2),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (_, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(i64::from_le_bytes(data[264..272].try_into().unwrap()), -99);
    }

    #[test]
    fn call_and_ret_with_register_windows() {
        // f(a, b) = a + b at addr 0; main at 2.
        let text = vec![
            Op::Alu {
                op: BinOp::Add,
                dst: PReg(2),
                a: PReg(0),
                b: PReg(1),
            },
            Op::Ret { src: Some(PReg(2)) },
            // main:
            Op::Movi {
                dst: PReg(5),
                imm: 30,
            },
            Op::Movi {
                dst: PReg(6),
                imm: 12,
            },
            Op::Call {
                target: 0,
                dst: Some(PReg(7)),
                args: vec![PReg(5), PReg(6)],
            },
            Op::Store {
                base: PReg(0),
                offset: 64,
                src: PReg(7),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut ctx = ExecContext::new(2, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(i64::from_le_bytes(data[64..72].try_into().unwrap()), 42);
    }

    #[test]
    fn callee_registers_start_zeroed_after_frame_reuse() {
        // dirty(x): writes r3 = 77, returns; probe(): returns r3 (should
        // be 0 even after dirty() polluted the same window).
        let text = vec![
            // dirty at 0:
            Op::Movi {
                dst: PReg(3),
                imm: 77,
            },
            Op::Ret { src: None },
            // probe at 2:
            Op::Ret { src: Some(PReg(3)) },
            // main at 3:
            Op::Call {
                target: 0,
                dst: None,
                args: vec![],
            },
            Op::Call {
                target: 2,
                dst: Some(PReg(0)),
                args: vec![],
            },
            Op::Store {
                base: PReg(1),
                offset: 128,
                src: PReg(0),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut ctx = ExecContext::new(3, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(i64::from_le_bytes(data[128..136].try_into().unwrap()), 0);
    }

    #[test]
    fn recursion_via_entry_return_halts() {
        // main: ret -> returning from entry frame halts the program.
        let text = vec![Op::Ret { src: None }];
        let mut data = vec![0u8; 64];
        let (ctx, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
    }

    #[test]
    fn loop_respects_budget() {
        // Infinite loop; ensure budget exhaustion returns control.
        let text = vec![Op::Jmp { target: 0 }];
        let (mut mem, mut data, mut counters) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::BudgetExhausted);
        assert!(res.cycles >= 1000);
        assert!(ctx.is_running());
        assert_eq!(counters.branches, counters.instructions);
    }

    #[test]
    fn wait_parks_and_wake_resumes() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1,
            },
            Op::Wait,
            Op::Movi {
                dst: PReg(0),
                imm: 2,
            },
            Op::Halt,
        ];
        let (mut mem, mut data, mut counters) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Waiting);
        assert_eq!(ctx.status(), ExecStatus::Waiting);
        // Running while parked consumes nothing.
        let res2 = run(&mut ctx, &mut env, 1000);
        assert_eq!(res2.cycles, 0);
        assert_eq!(res2.stop, StopReason::Waiting);
        ctx.wake();
        let res3 = run(&mut ctx, &mut env, 1000);
        assert_eq!(res3.stop, StopReason::Halted);
    }

    #[test]
    fn out_of_bounds_load_faults() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1 << 20,
            },
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::Halt,
        ];
        let (mut mem, mut data, mut counters) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Faulted);
        assert!(matches!(ctx.status(), ExecStatus::Faulted(_)));
    }

    #[test]
    fn pc_past_text_faults() {
        let text = vec![Op::Jmp { target: 7 }];
        let (mut mem, mut data, mut counters) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Faulted);
    }

    #[test]
    fn callvirt_reads_evt_and_redirect_takes_effect() {
        // Two variants of a leaf function; EVT slot 0 selects.
        let text = vec![
            // variant A at 0: returns 1
            Op::Movi {
                dst: PReg(0),
                imm: 1,
            },
            Op::Ret { src: Some(PReg(0)) },
            // variant B at 2: returns 2
            Op::Movi {
                dst: PReg(0),
                imm: 2,
            },
            Op::Ret { src: Some(PReg(0)) },
            // main at 4: callv [evt+0]; store result; callv again after
            // the "runtime" patches the EVT (simulated by a store here? —
            // no: the test patches data directly between runs).
            Op::CallVirt {
                slot: 0,
                dst: Some(PReg(1)),
                args: vec![],
            },
            Op::Store {
                base: PReg(2),
                offset: 512,
                src: PReg(1),
            },
            Op::Wait,
            Op::CallVirt {
                slot: 0,
                dst: Some(PReg(1)),
                args: vec![],
            },
            Op::Store {
                base: PReg(2),
                offset: 520,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let evt_base = 64u64;
        let (mut mem, mut data, mut counters) = env_parts();
        data[64..72].copy_from_slice(&0u64.to_le_bytes()); // slot 0 -> variant A
        let mut ctx = ExecContext::new(4, 1, evt_base);
        let mut env = ExecEnv {
            text: &text,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Waiting);
        // "EVT manager" patches the slot with a single 8-byte write while
        // the program is parked.
        env.data[64..72].copy_from_slice(&2u64.to_le_bytes());
        ctx.wake();
        let res2 = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res2.stop, StopReason::Halted);
        assert_eq!(
            i64::from_le_bytes(env.data[512..520].try_into().unwrap()),
            1
        );
        assert_eq!(
            i64::from_le_bytes(env.data[520..528].try_into().unwrap()),
            2
        );
    }

    #[test]
    fn binary_translation_charges_overhead() {
        // A loop executing 1000 iterations: BT mode must be slower and
        // report overhead.
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1000,
            },
            // loop: dec, bnz
            Op::AluImm {
                op: BinOp::Sub,
                dst: PReg(0),
                a: PReg(0),
                imm: 1,
            },
            Op::Bnz {
                cond: PReg(0),
                target: 1,
            },
            Op::Halt,
        ];
        let time = |bt: bool| {
            let (mut mem, mut data, mut counters) = env_parts();
            let mut ctx = ExecContext::new(0, 1, 0);
            if bt {
                ctx = ctx.with_binary_translation(BtConfig::default());
            }
            let mut env = ExecEnv {
                text: &text,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let res = run(&mut ctx, &mut env, u64::MAX / 2);
            assert_eq!(res.stop, StopReason::Halted);
            (res.cycles, ctx.bt_overhead())
        };
        let (plain, none) = time(false);
        let (translated, overhead) = time(true);
        assert_eq!(none, None);
        let oh = overhead.unwrap();
        assert!(oh > 0);
        assert_eq!(translated, plain + oh);
    }

    #[test]
    fn bz_branches_on_zero() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            Op::Bz {
                cond: PReg(0),
                target: 4,
            }, // taken: r0 == 0
            Op::Movi {
                dst: PReg(1),
                imm: 111,
            }, // skipped
            Op::Halt,
            Op::Movi {
                dst: PReg(1),
                imm: 7,
            },
            Op::Bz {
                cond: PReg(1),
                target: 0,
            }, // not taken: r1 != 0
            Op::Store {
                base: PReg(2),
                offset: 64,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 256];
        let (ctx, counters) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
        assert_eq!(i64::from_le_bytes(data[64..72].try_into().unwrap()), 7);
        assert_eq!(counters.branches, 2);
    }

    #[test]
    fn report_samples_collected() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 5,
            },
            Op::Report {
                channel: 2,
                src: PReg(0),
            },
            Op::Movi {
                dst: PReg(0),
                imm: 9,
            },
            Op::Report {
                channel: 2,
                src: PReg(0),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 64];
        let (ctx, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.reports, vec![(2, 5), (2, 9)]);
    }

    #[test]
    fn counters_track_memory_hierarchy() {
        // Stream 64 distinct lines: all LLC misses the first pass.
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            // loop:
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::AluImm {
                op: BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::AluImm {
                op: BinOp::Lt,
                dst: PReg(2),
                a: PReg(0),
                imm: 64 * 64,
            },
            Op::Bnz {
                cond: PReg(2),
                target: 1,
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 64 * 64 + 64];
        let (_, counters) = run_to_end(&text, &mut data, 0);
        assert_eq!(counters.llc_misses, 64);
        assert!(counters.cycles > 64 * 180);
    }
}
