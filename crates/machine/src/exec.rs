//! The VISA interpreter with its timing model.
//!
//! [`run`] advances one execution context by a cycle budget. The context
//! owns the architectural state (PC, register-window stack); the caller
//! (the simulated OS) owns text, data, the memory hierarchy, and the
//! counters, passing them in via [`ExecEnv`]. This split is what lets the
//! protean runtime patch a process's EVT or append to its code cache while
//! the process is between quanta — exactly the asynchrony the paper's
//! mechanism relies on.
//!
//! # Decoded-block dispatch
//!
//! The interpreter executes *pre-decoded basic blocks*, not single ops: a
//! [`BlockCache`] (owned by the caller, alongside text) maps every entry
//! PC to a `Vec<DecodedOp>` decoded once on first dispatch. A decoded op
//! is operand-resolved — register numbers extracted, immediates widened,
//! call arguments copied out of the text op's heap `Vec` into an inline
//! array — so replay never touches the `Op` encoding again. During decode,
//! dominant adjacent pairs (compare+branch, load+ALU) are fused into
//! superops, halving dispatch iterations on loop-shaped code. A fused pair
//! still charges and budget-checks **per constituent instruction**, so
//! quantum boundaries, instruction counts, PC samples, and OSR park points
//! are bit-identical to unfused execution (the same preservation argument
//! block dispatch makes for its per-instruction budget gate).
//!
//! Unlike the earlier range-based cache, decoded blocks are *copies* of
//! the ops, so staleness would mean executing stale instructions — not
//! merely misjudging a block boundary. The invalidation contract is
//! therefore load-bearing: callers bump [`ExecEnv::text_gen`] on every
//! text mutation (code-cache append, corruption), and [`BlockCache`]
//! discards all decoded blocks when the generation *or the text length*
//! moves. The length resync closes the append-without-bump window: a
//! block whose shape changes because text grew past its old end can never
//! replay its stale decoded vector, even if the caller forgot the bump.
//! In-place mutation without a bump or length change remains a contract
//! violation (every mutation site in `simos` bumps). EVT patches need no
//! invalidation at all, because `CallVirt` reads its target cell from
//! data memory on every dispatch.
//!
//! Retired decoded vectors are recycled through a pool across
//! invalidations, so a recompilation storm (append + bump per variant)
//! re-decodes into warm allocations instead of re-allocating per block.
//!
//! For differential testing, [`BlockCache::set_fallback`] forces an
//! *always-decode* path: every dispatch decodes the block fresh, without
//! caching and without fusion. The fallback exercises identical op
//! semantics through the same replay loop, so a decoded-tier bug shows up
//! as a bit-level divergence in `tests/fastpath.rs`'s A/B suites.

use std::collections::HashSet;

use visa::{Op, PReg, FRAME_REGS};

use crate::config::{BtConfig, CostModel};
use crate::counters::PerfCounters;
use crate::hierarchy::{AccessKind, MemorySystem};
use crate::phys_addr;

/// Longest straight-line run decoded as one block. Bounds the decode
/// cost of cold code.
const MAX_BLOCK_OPS: usize = 64;

/// Why a [`run`] call stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The cycle budget was exhausted; the context is still runnable.
    BudgetExhausted,
    /// The context executed [`Op::Wait`] and is parked until new work.
    Waiting,
    /// The context executed [`Op::Halt`] or returned from its entry frame.
    Halted,
    /// The context performed an out-of-bounds memory or text access.
    Faulted,
    /// The context reached an armed OSR park point (see
    /// [`ExecContext::osr_arm`]) and stopped immediately before executing
    /// the block at that PC.
    OsrParked,
}

/// Liveness of an execution context.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExecStatus {
    /// Eligible to run.
    Running,
    /// Parked on [`Op::Wait`]; resumes after [`ExecContext::wake`].
    Waiting,
    /// Finished.
    Halted,
    /// Dead after a memory fault at the contained data address.
    Faulted(u64),
    /// Stopped at an armed OSR park point, awaiting a frame transfer
    /// ([`ExecContext::osr_apply`] + [`ExecContext::osr_resume`]) or a
    /// cancellation ([`ExecContext::osr_disarm`]).
    OsrParked,
}

/// Result of one [`run`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunResult {
    /// Cycles actually consumed. The budget is checked before every
    /// instruction (fused superops included, per constituent), so the
    /// overshoot is bounded by one instruction's cost.
    pub cycles: u64,
    /// Why execution stopped.
    pub stop: StopReason,
}

/// Decode-cache effectiveness counters, cumulative for one
/// [`BlockCache`]'s lifetime. Surfaced by the simulated OS per process
/// and by `protean::metrics` as the `machine.decoded_*` counter group.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct DecodeStats {
    /// Dispatches served from an already-decoded block.
    pub hits: u64,
    /// Blocks decoded (first dispatch, always-decode fallback, and OSR
    /// park-clamped re-decodes).
    pub misses: u64,
    /// Wholesale discards of the decoded set (generation or text-length
    /// resync that actually dropped blocks).
    pub invalidations: u64,
    /// Superops formed during decode (each replaces two text ops).
    pub fused_ops: u64,
}

/// Call arguments resolved at decode time: the text op's heap `Vec` is
/// copied into an inline array so replay is pointer-chase free.
#[derive(Copy, Clone, Debug)]
struct ArgList {
    regs: [PReg; visa::MAX_ARGS],
    len: u8,
}

impl ArgList {
    fn new(args: &[PReg]) -> ArgList {
        let mut regs = [PReg(0); visa::MAX_ARGS];
        regs[..args.len()].copy_from_slice(args);
        ArgList {
            regs,
            len: args.len() as u8,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[PReg] {
        &self.regs[..self.len as usize]
    }
}

/// One operand-resolved instruction, plus the fused superops. Superop
/// variants cover exactly two text ops and execute their constituents in
/// original order with per-constituent cycle charging.
#[derive(Copy, Clone, Debug)]
enum DecodedOp {
    Movi {
        dst: PReg,
        imm: i64,
    },
    Alu {
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        b: PReg,
    },
    AluImm {
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        imm: i64,
    },
    Load {
        dst: PReg,
        base: PReg,
        offset: i64,
    },
    Store {
        base: PReg,
        offset: i64,
        src: PReg,
    },
    PrefetchNta {
        base: PReg,
        offset: i64,
    },
    Jmp {
        target: u32,
    },
    Bnz {
        cond: PReg,
        target: u32,
    },
    Bz {
        cond: PReg,
        target: u32,
    },
    Call {
        target: u32,
        dst: Option<PReg>,
        args: ArgList,
    },
    CallVirt {
        slot: u32,
        dst: Option<PReg>,
        args: ArgList,
    },
    Ret {
        src: Option<PReg>,
    },
    Report {
        channel: u8,
        src: PReg,
    },
    Wait,
    Halt,
    /// `AluImm` (typically a loop-exit compare) fused with `Bnz`.
    AluImmBnz {
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        imm: i64,
        cond: PReg,
        target: u32,
    },
    /// `AluImm` fused with `Bz`.
    AluImmBz {
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        imm: i64,
        cond: PReg,
        target: u32,
    },
    /// Register-register `Alu` fused with `Bnz`.
    AluBnz {
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        b: PReg,
        cond: PReg,
        target: u32,
    },
    /// Register-register `Alu` fused with `Bz`.
    AluBz {
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        b: PReg,
        cond: PReg,
        target: u32,
    },
    /// `Load` fused with a following `AluImm` (pointer bump / strided
    /// index update).
    LoadAluImm {
        ldst: PReg,
        base: PReg,
        offset: i64,
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        imm: i64,
    },
    /// `Load` fused with a following register-register `Alu`
    /// (load + accumulate).
    LoadAlu {
        ldst: PReg,
        base: PReg,
        offset: i64,
        op: pir::BinOp,
        dst: PReg,
        a: PReg,
        b: PReg,
    },
    /// Two adjacent `Load`s (unrolled streaming reads — the dominant
    /// adjacent pair in the array workloads).
    LoadLoad {
        dst1: PReg,
        base1: PReg,
        off1: i64,
        dst2: PReg,
        base2: PReg,
        off2: i64,
    },
    /// Two adjacent `AluImm`s (index bump + address compute).
    AluImmAluImm {
        op1: pir::BinOp,
        dst1: PReg,
        a1: PReg,
        imm1: i64,
        op2: pir::BinOp,
        dst2: PReg,
        a2: PReg,
        imm2: i64,
    },
    /// `AluImm` followed by a register-register `Alu`.
    AluImmAlu {
        op1: pir::BinOp,
        dst1: PReg,
        a1: PReg,
        imm1: i64,
        op2: pir::BinOp,
        dst2: PReg,
        a2: PReg,
        b2: PReg,
    },
}

/// One decoded block: the superop vector plus the number of *text* ops it
/// covers (straight-line run + terminator; fusion makes `ops.len()`
/// smaller than `text_len`).
#[derive(Clone, Debug, Default)]
struct DecodedBlock {
    ops: Vec<DecodedOp>,
    text_len: u32,
}

/// Handle marking the scratch (uncached) decode slot.
const SCRATCH: u32 = u32::MAX;

/// Decoded-block cache for one text space.
///
/// Maps entry PC → a pre-decoded op vector for the basic block starting
/// there (straight-line ops plus the terminating control-flow op, capped
/// at `MAX_BLOCK_OPS` text ops). Blocks are decoded lazily on first
/// dispatch and discarded wholesale when the text generation or length
/// moves; retired vectors are pooled for reuse across invalidations.
#[derive(Clone, Debug, Default)]
pub struct BlockCache {
    /// Generation of the text the current entries were decoded against.
    gen: u64,
    /// Decoded-block handle + 1 keyed by entry PC; 0 = not yet decoded.
    idx_at: Vec<u32>,
    /// Decoded blocks, indexed by handle.
    blocks: Vec<DecodedBlock>,
    /// Retired op vectors (capacity kept), reused by later decodes so a
    /// patch storm re-decodes into warm allocations.
    pool: Vec<Vec<DecodedOp>>,
    /// Uncached decode slot for the always-decode fallback and for OSR
    /// park-clamped dispatches.
    scratch: DecodedBlock,
    /// Forced always-decode mode: every dispatch decodes fresh, unfused
    /// and uncached (differential-testing reference path).
    fallback: bool,
    stats: DecodeStats,
}

impl BlockCache {
    /// An empty cache; decodes lazily on first use.
    pub fn new() -> Self {
        BlockCache::default()
    }

    /// Forces (or releases) the always-decode fallback path: no caching,
    /// no fusion, every dispatch decodes the block fresh. Simulated
    /// results are bit-identical in either mode; only wall-clock and the
    /// [`DecodeStats`] mix change.
    pub fn set_fallback(&mut self, on: bool) {
        self.fallback = on;
    }

    /// True when the always-decode fallback is forced.
    pub fn fallback(&self) -> bool {
        self.fallback
    }

    /// Decode-cache effectiveness counters so far.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Aligns the cache with `text_len` ops at generation `gen`, dropping
    /// every decoded block if either moved. A length change without a
    /// generation bump is treated as a mutation too, so the append-resync
    /// path can never replay a stale decoded vector.
    fn sync(&mut self, text_len: usize, gen: u64) {
        if gen != self.gen || self.idx_at.len() != text_len {
            if !self.blocks.is_empty() {
                self.stats.invalidations += 1;
            }
            self.idx_at.clear();
            self.idx_at.resize(text_len, 0);
            for mut b in self.blocks.drain(..) {
                b.ops.clear();
                self.pool.push(b.ops);
            }
            self.gen = gen;
        }
    }

    /// Resolves the decoded block entered at `pc`, decoding (with fusion)
    /// and caching it if unseen. Returns `(handle, text_len)`; `None`
    /// when `pc` is outside text.
    #[inline]
    fn ensure(&mut self, pc: u32, text: &[Op]) -> Option<(u32, u32)> {
        let start = pc as usize;
        let slot = *self.idx_at.get(start)?;
        if slot != 0 {
            self.stats.hits += 1;
            let handle = slot - 1;
            return Some((handle, self.blocks[handle as usize].text_len));
        }
        self.stats.misses += 1;
        let mut ops = self.pool.pop().unwrap_or_default();
        let (text_len, fused) = decode_block(text, start, MAX_BLOCK_OPS, true, &mut ops);
        self.stats.fused_ops += fused;
        let handle = self.blocks.len() as u32;
        self.blocks.push(DecodedBlock { ops, text_len });
        self.idx_at[start] = handle + 1;
        Some((handle, text_len))
    }

    /// Decodes the block at `pc` into the scratch slot: unfused, uncached,
    /// covering at most `max_ops` text ops. Used by the always-decode
    /// fallback and by OSR park-clamped dispatches (the clamp cuts at an
    /// arbitrary text offset, which only a 1:1 decode can honor).
    fn decode_scratch(&mut self, pc: u32, max_ops: usize, text: &[Op]) -> Option<(u32, u32)> {
        let start = pc as usize;
        if start >= text.len() {
            return None;
        }
        self.stats.misses += 1;
        let mut ops = std::mem::take(&mut self.scratch.ops);
        let (text_len, _) = decode_block(text, start, max_ops, false, &mut ops);
        self.scratch = DecodedBlock { ops, text_len };
        Some((SCRATCH, text_len))
    }

    /// The op vector behind a handle returned by [`Self::ensure`] or
    /// [`Self::decode_scratch`].
    #[inline]
    fn ops_of(&self, handle: u32) -> &[DecodedOp] {
        if handle == SCRATCH {
            &self.scratch.ops
        } else {
            &self.blocks[handle as usize].ops
        }
    }
}

/// True for ops that never redirect control flow (block non-terminators).
#[inline]
fn is_straight(op: &Op) -> bool {
    matches!(
        op,
        Op::Movi { .. }
            | Op::Alu { .. }
            | Op::AluImm { .. }
            | Op::Load { .. }
            | Op::Store { .. }
            | Op::PrefetchNta { .. }
            | Op::Report { .. }
    )
}

/// Decodes the basic block at `start` (straight-line run plus terminator,
/// capped at `max_ops` text ops) into `out`, optionally fusing adjacent
/// pairs. Returns the number of text ops covered and the superops formed.
fn decode_block(
    text: &[Op],
    start: usize,
    max_ops: usize,
    fuse: bool,
    out: &mut Vec<DecodedOp>,
) -> (u32, u64) {
    out.clear();
    let cap = text.len().min(start.saturating_add(max_ops));
    let mut end = start;
    while end < cap {
        let straight = is_straight(&text[end]);
        end += 1;
        if !straight {
            break;
        }
    }
    let mut fused = 0u64;
    let mut i = start;
    while i < end {
        if fuse && i + 1 < end {
            if let Some(sop) = fuse_pair(&text[i], &text[i + 1]) {
                out.push(sop);
                fused += 1;
                i += 2;
                continue;
            }
        }
        out.push(decode_one(&text[i]));
        i += 1;
    }
    ((end - start) as u32, fused)
}

/// 1:1 decode of a single text op.
fn decode_one(op: &Op) -> DecodedOp {
    match op {
        Op::Movi { dst, imm } => DecodedOp::Movi {
            dst: *dst,
            imm: *imm,
        },
        Op::Alu { op, dst, a, b } => DecodedOp::Alu {
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
        },
        Op::AluImm { op, dst, a, imm } => DecodedOp::AluImm {
            op: *op,
            dst: *dst,
            a: *a,
            imm: *imm,
        },
        Op::Load { dst, base, offset } => DecodedOp::Load {
            dst: *dst,
            base: *base,
            offset: *offset,
        },
        Op::Store { base, offset, src } => DecodedOp::Store {
            base: *base,
            offset: *offset,
            src: *src,
        },
        Op::PrefetchNta { base, offset } => DecodedOp::PrefetchNta {
            base: *base,
            offset: *offset,
        },
        Op::Jmp { target } => DecodedOp::Jmp { target: *target },
        Op::Bnz { cond, target } => DecodedOp::Bnz {
            cond: *cond,
            target: *target,
        },
        Op::Bz { cond, target } => DecodedOp::Bz {
            cond: *cond,
            target: *target,
        },
        Op::Call { target, dst, args } => DecodedOp::Call {
            target: *target,
            dst: *dst,
            args: ArgList::new(args),
        },
        Op::CallVirt { slot, dst, args } => DecodedOp::CallVirt {
            slot: *slot,
            dst: *dst,
            args: ArgList::new(args),
        },
        Op::Ret { src } => DecodedOp::Ret { src: *src },
        Op::Report { channel, src } => DecodedOp::Report {
            channel: *channel,
            src: *src,
        },
        Op::Wait => DecodedOp::Wait,
        Op::Halt => DecodedOp::Halt,
    }
}

/// Fuses the dominant adjacent pairs: compare+branch (`AluImm`/`Alu`
/// followed by `Bnz`/`Bz`) and load+ALU (`Load` followed by
/// `AluImm`/`Alu`). Any pair shape not listed decodes 1:1.
fn fuse_pair(first: &Op, second: &Op) -> Option<DecodedOp> {
    match (first, second) {
        (Op::AluImm { op, dst, a, imm }, Op::Bnz { cond, target }) => Some(DecodedOp::AluImmBnz {
            op: *op,
            dst: *dst,
            a: *a,
            imm: *imm,
            cond: *cond,
            target: *target,
        }),
        (Op::AluImm { op, dst, a, imm }, Op::Bz { cond, target }) => Some(DecodedOp::AluImmBz {
            op: *op,
            dst: *dst,
            a: *a,
            imm: *imm,
            cond: *cond,
            target: *target,
        }),
        (Op::Alu { op, dst, a, b }, Op::Bnz { cond, target }) => Some(DecodedOp::AluBnz {
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
            cond: *cond,
            target: *target,
        }),
        (Op::Alu { op, dst, a, b }, Op::Bz { cond, target }) => Some(DecodedOp::AluBz {
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
            cond: *cond,
            target: *target,
        }),
        (
            Op::Load { dst, base, offset },
            Op::AluImm {
                op,
                dst: adst,
                a,
                imm,
            },
        ) => Some(DecodedOp::LoadAluImm {
            ldst: *dst,
            base: *base,
            offset: *offset,
            op: *op,
            dst: *adst,
            a: *a,
            imm: *imm,
        }),
        (
            Op::Load { dst, base, offset },
            Op::Alu {
                op,
                dst: adst,
                a,
                b,
            },
        ) => Some(DecodedOp::LoadAlu {
            ldst: *dst,
            base: *base,
            offset: *offset,
            op: *op,
            dst: *adst,
            a: *a,
            b: *b,
        }),
        (
            Op::Load { dst, base, offset },
            Op::Load {
                dst: dst2,
                base: base2,
                offset: off2,
            },
        ) => Some(DecodedOp::LoadLoad {
            dst1: *dst,
            base1: *base,
            off1: *offset,
            dst2: *dst2,
            base2: *base2,
            off2: *off2,
        }),
        (
            Op::AluImm { op, dst, a, imm },
            Op::AluImm {
                op: op2,
                dst: dst2,
                a: a2,
                imm: imm2,
            },
        ) => Some(DecodedOp::AluImmAluImm {
            op1: *op,
            dst1: *dst,
            a1: *a,
            imm1: *imm,
            op2: *op2,
            dst2: *dst2,
            a2: *a2,
            imm2: *imm2,
        }),
        (
            Op::AluImm { op, dst, a, imm },
            Op::Alu {
                op: op2,
                dst: dst2,
                a: a2,
                b,
            },
        ) => Some(DecodedOp::AluImmAlu {
            op1: *op,
            dst1: *dst,
            a1: *a,
            imm1: *imm,
            op2: *op2,
            dst2: *dst2,
            a2: *a2,
            b2: *b,
        }),
        _ => None,
    }
}

#[derive(Clone, Debug)]
struct Frame {
    base: usize,
    ret_pc: u32,
    ret_dst: Option<PReg>,
}

/// An armed OSR park request: stop the context immediately before the
/// `remaining`-th remaining entry into the block at `pc`.
#[derive(Clone, Copy, Debug)]
struct OsrPark {
    pc: u32,
    remaining: u64,
    hits: u64,
}

/// Translation-cache targets below this bound live in a dense bitset (one
/// bit per text address); rarer far targets (garbage indirect branches)
/// spill to a hash set so a wild `CallVirt` cannot force a huge
/// allocation.
const BT_DENSE_LIMIT: u32 = 1 << 22;

/// Binary-translation execution mode (the DynamoRIO-style baseline of
/// Figure 4). When attached to a context, every first-executed basic
/// block pays a translation cost and every branch pays dispatch overhead.
#[derive(Clone, Debug)]
pub struct BtState {
    config: BtConfig,
    /// Dense seen-target bitset over text addresses below
    /// [`BT_DENSE_LIMIT`], grown on demand.
    translated: Vec<u64>,
    /// Spillover for targets at or above [`BT_DENSE_LIMIT`].
    translated_far: HashSet<u32>,
    inst_counter: u8,
    /// Total extra cycles charged so far (for reporting).
    pub overhead_cycles: u64,
}

impl BtState {
    /// Creates a fresh translation cache with the given cost parameters.
    pub fn new(config: BtConfig) -> Self {
        BtState {
            config,
            translated: Vec::new(),
            translated_far: HashSet::new(),
            inst_counter: 0,
            overhead_cycles: 0,
        }
    }

    /// Records `target` as translated; true if it was new.
    #[inline]
    fn mark_translated(&mut self, target: u32) -> bool {
        if target < BT_DENSE_LIMIT {
            let word = (target >> 6) as usize;
            if word >= self.translated.len() {
                self.translated.resize(word + 1, 0);
            }
            let mask = 1u64 << (target & 63);
            let fresh = self.translated[word] & mask == 0;
            self.translated[word] |= mask;
            fresh
        } else {
            self.translated_far.insert(target)
        }
    }

    /// Charges for reaching `target`: translation if unseen, plus branch
    /// dispatch. Returns cycles.
    fn charge_branch(&mut self, target: u32, indirect: bool) -> u64 {
        let mut cost = if indirect {
            self.config.indirect_dispatch
        } else {
            self.config.branch_dispatch
        };
        if self.mark_translated(target) {
            cost += self.config.translate_block;
        }
        self.overhead_cycles += cost;
        cost
    }

    /// Diffuse per-instruction tax, charged every 16 retired
    /// instructions. Returns cycles for this instruction.
    fn charge_inst(&mut self) -> u64 {
        self.inst_counter = self.inst_counter.wrapping_add(1);
        if self.inst_counter & 15 == 0 {
            self.overhead_cycles += self.config.per_16_insts;
            self.config.per_16_insts
        } else {
            0
        }
    }
}

/// Architectural state of one running program.
#[derive(Clone, Debug)]
pub struct ExecContext {
    pc: u32,
    regs: Vec<i64>,
    frames: Vec<Frame>,
    /// Register-window base of the innermost frame, cached so register
    /// accesses skip the `frames.last()` indirection on the hot path.
    base: usize,
    status: ExecStatus,
    space: u16,
    evt_base: u64,
    bt: Option<BtState>,
    osr: Option<OsrPark>,
    /// Application-metric samples published via [`Op::Report`], drained by
    /// the OS.
    pub reports: Vec<(u8, i64)>,
}

impl ExecContext {
    /// Creates a context starting at `entry` in address space `space`.
    ///
    /// `evt_base` is the data address of EVT slot 0 (0 for non-protean
    /// binaries, which contain no `CallVirt`).
    pub fn new(entry: u32, space: u16, evt_base: u64) -> Self {
        let mut ctx = ExecContext {
            pc: entry,
            regs: Vec::with_capacity(FRAME_REGS * 16),
            frames: Vec::with_capacity(16),
            base: 0,
            status: ExecStatus::Running,
            space,
            evt_base,
            bt: None,
            osr: None,
            reports: Vec::new(),
        };
        ctx.push_frame(entry, 0, None, &[]);
        ctx.pc = entry;
        ctx
    }

    /// Attaches binary-translation mode (Figure 4 baseline). The entry
    /// block is marked translated up front (its one-time cost happens
    /// before timing starts, as when DynamoRIO takes over a process).
    pub fn with_binary_translation(mut self, config: BtConfig) -> Self {
        let mut bt = BtState::new(config);
        bt.mark_translated(self.pc);
        self.bt = Some(bt);
        self
    }

    /// The current program counter (a PC sample, as the runtime's ptrace
    /// polling would obtain).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Current liveness.
    pub fn status(&self) -> ExecStatus {
        self.status
    }

    /// The address-space id.
    pub fn space(&self) -> u16 {
        self.space
    }

    /// Total binary-translation overhead charged, if in BT mode.
    pub fn bt_overhead(&self) -> Option<u64> {
        self.bt.as_ref().map(|b| b.overhead_cycles)
    }

    /// Wakes a [`ExecStatus::Waiting`] context. No-op otherwise.
    pub fn wake(&mut self) {
        if self.status == ExecStatus::Waiting {
            self.status = ExecStatus::Running;
        }
    }

    /// True if the context can execute.
    pub fn is_running(&self) -> bool {
        self.status == ExecStatus::Running
    }

    /// Call depth (entry frame = 1).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Arms an OSR park request: the context stops with
    /// [`ExecStatus::OsrParked`] immediately *before* executing the
    /// `hit`-th entry (1-based; 0 is treated as 1) into the block at
    /// `pc`, counted from this call. Re-arming replaces any previous
    /// request. Parking is precise: the block at `pc` has not started
    /// executing when the context stops, so the register window is
    /// exactly the block-entry state the OSR certificate describes.
    pub fn osr_arm(&mut self, pc: u32, hit: u64) {
        self.osr = Some(OsrPark {
            pc,
            remaining: hit.max(1),
            hits: 0,
        });
    }

    /// Cancels any armed park request. A context currently
    /// [`ExecStatus::OsrParked`] resumes at the park PC (in the original
    /// code, frame untouched) on the next run — cancellation is always
    /// clean.
    pub fn osr_disarm(&mut self) {
        self.osr = None;
        if self.status == ExecStatus::OsrParked {
            self.status = ExecStatus::Running;
        }
    }

    /// PC of the armed park request, if one is pending or parked.
    pub fn osr_armed(&self) -> Option<u32> {
        self.osr.map(|p| p.pc)
    }

    /// Entries into the armed PC observed since arming (the parking
    /// entry included). 0 when nothing is armed.
    pub fn osr_hits(&self) -> u64 {
        self.osr.map_or(0, |p| p.hits)
    }

    /// True if the context is stopped at an OSR park point.
    pub fn is_osr_parked(&self) -> bool {
        self.status == ExecStatus::OsrParked
    }

    /// The innermost frame's register window (always [`FRAME_REGS`]
    /// slots). Callers snapshot this before [`Self::osr_apply`] so a
    /// detected misapply can restore the exact pre-transfer frame.
    pub fn frame_regs(&self) -> &[i64] {
        &self.regs[self.base..self.base + FRAME_REGS]
    }

    /// Rebuilds the innermost frame window from a transfer recipe, in
    /// the interpreter's transfer order (`pir::interp::run_with_transfer`
    /// is the reference semantics): zero-fill the whole window, then
    /// `moves` copy `dst ← src` from the *old* window, then `consts`
    /// patch immediates. Only legal while parked; the context stays
    /// parked so the caller can verify the result before
    /// [`Self::osr_resume`]. Returns false (frame untouched) if the
    /// context is not parked.
    pub fn osr_apply(&mut self, moves: &[(PReg, PReg)], consts: &[(PReg, i64)]) -> bool {
        if self.status != ExecStatus::OsrParked {
            return false;
        }
        let old: [i64; FRAME_REGS] = self.regs[self.base..self.base + FRAME_REGS]
            .try_into()
            .expect("frame window");
        for r in &mut self.regs[self.base..self.base + FRAME_REGS] {
            *r = 0;
        }
        for &(dst, src) in moves {
            self.regs[self.base + dst.index()] = old[src.index()];
        }
        for &(dst, v) in consts {
            self.regs[self.base + dst.index()] = v;
        }
        true
    }

    /// Overwrites the innermost frame window with a saved snapshot (the
    /// deopt path after a detected misapply). Only legal while parked;
    /// `window` must hold exactly [`FRAME_REGS`] values. Returns false
    /// (frame untouched) otherwise.
    pub fn osr_restore(&mut self, window: &[i64]) -> bool {
        if self.status != ExecStatus::OsrParked || window.len() != FRAME_REGS {
            return false;
        }
        self.regs[self.base..self.base + FRAME_REGS].copy_from_slice(window);
        true
    }

    /// Resumes a parked context at `target` and disarms the request.
    /// No text is mutated on this path, so the caller's block cache
    /// generation contract is untouched — resuming needs no decode
    /// invalidation, exactly like an EVT patch. Returns false if the
    /// context is not parked.
    pub fn osr_resume(&mut self, target: u32) -> bool {
        if self.status != ExecStatus::OsrParked {
            return false;
        }
        self.pc = target;
        self.status = ExecStatus::Running;
        self.osr = None;
        true
    }

    fn push_frame(&mut self, target: u32, ret_pc: u32, ret_dst: Option<PReg>, args: &[i64]) {
        let base = self.frames.len() * FRAME_REGS;
        self.regs.resize(base + FRAME_REGS, 0);
        // Zero the new window (resize only zeroes growth; reused capacity
        // after a pop must be cleared).
        for r in &mut self.regs[base..base + FRAME_REGS] {
            *r = 0;
        }
        for (i, a) in args.iter().enumerate() {
            self.regs[base + i] = *a;
        }
        self.frames.push(Frame {
            base,
            ret_pc,
            ret_dst,
        });
        self.base = base;
        self.pc = target;
    }

    #[inline]
    fn reg(&self, r: PReg) -> i64 {
        self.regs[self.base + r.index()]
    }

    #[inline]
    fn set_reg(&mut self, r: PReg, v: i64) {
        self.regs[self.base + r.index()] = v;
    }
}

/// Everything outside the context that one quantum of execution touches.
pub struct ExecEnv<'a> {
    /// Program text: loaded image plus any appended code-cache variants.
    pub text: &'a [Op],
    /// Monotonic generation of `text`. Callers bump it on every text
    /// mutation (code-cache append, corruption); `blocks` entries decoded
    /// under a different generation are discarded. EVT patches are data
    /// writes and need no bump.
    pub text_gen: u64,
    /// Decoded-block cache for `text`, owned by the caller and reused
    /// across quanta.
    pub blocks: &'a mut BlockCache,
    /// The process data segment.
    pub data: &'a mut [u8],
    /// The machine's cache hierarchy.
    pub mem: &'a mut MemorySystem,
    /// Core the context is scheduled on.
    pub core: usize,
    /// The context's hardware counters.
    pub counters: &'a mut PerfCounters,
    /// Instruction base costs.
    pub costs: CostModel,
}

fn fault(ctx: &mut ExecContext, addr: u64) -> StopReason {
    ctx.status = ExecStatus::Faulted(addr);
    StopReason::Faulted
}

/// True if an 8-byte access at `addr` stays inside `len` bytes
/// (overflow-safe: `addr + 8` must not wrap).
#[inline]
fn in_bounds(addr: u64, len: usize) -> bool {
    addr.checked_add(8).is_some_and(|end| end <= len as u64)
}

/// The PC after the op at `op_pc`, or `None` when the increment would
/// leave u32 — the caller faults instead of wrapping to address 0.
#[inline]
fn checked_next_pc(op_pc: usize) -> Option<u32> {
    u32::try_from(op_pc as u64 + 1).ok()
}

/// Runs `ctx` for up to `budget` cycles, returning how many cycles were
/// consumed and why execution stopped.
///
/// Memory accesses outside the data segment fault the context rather than
/// panicking, so buggy generated programs surface as [`StopReason::Faulted`].
/// PC arithmetic that would wrap past `u32::MAX` (fall-through or return
/// address past the end of a 4Gi-op text, an EVT target wider than u32)
/// faults the same way instead of silently wrapping or truncating.
pub fn run(ctx: &mut ExecContext, env: &mut ExecEnv<'_>, budget: u64) -> RunResult {
    if ctx.status != ExecStatus::Running {
        let stop = match ctx.status {
            ExecStatus::Waiting => StopReason::Waiting,
            ExecStatus::Faulted(_) => StopReason::Faulted,
            ExecStatus::OsrParked => StopReason::OsrParked,
            _ => StopReason::Halted,
        };
        return RunResult { cycles: 0, stop };
    }
    // Monomorphize over BT mode once per quantum: the common no-BT path
    // carries no per-instruction translation-tax checks at all.
    if ctx.bt.is_some() {
        run_impl::<true>(ctx, env, budget)
    } else {
        run_impl::<false>(ctx, env, budget)
    }
}

fn run_impl<const BT: bool>(
    ctx: &mut ExecContext,
    env: &mut ExecEnv<'_>,
    budget: u64,
) -> RunResult {
    let text = env.text;
    env.blocks.sync(text.len(), env.text_gen);
    let costs = env.costs;
    let data_len = env.data.len();
    let fallback = env.blocks.fallback;
    // Hot counters accumulate in locals and flush once on exit.
    let mut used: u64 = 0;
    let mut insts: u64 = 0;
    let mut branches: u64 = 0;
    let mut pc = ctx.pc;
    let stop = 'dispatch: loop {
        if used >= budget {
            break StopReason::BudgetExhausted;
        }
        // OSR park gate: fires at block entry, *after* the budget check
        // (a quantum that ends exactly at the header has not counted the
        // entry yet, so the next quantum counts it exactly once) and
        // *before* any op of the block executes. Charges no cycles, so
        // an unarmed context is bit-identical to a pre-OSR build.
        if let Some(park) = ctx.osr.as_mut() {
            if pc == park.pc {
                park.hits += 1;
                park.remaining -= 1;
                if park.remaining == 0 {
                    ctx.status = ExecStatus::OsrParked;
                    break StopReason::OsrParked;
                }
            }
        }
        let resolved = if fallback {
            env.blocks.decode_scratch(pc, MAX_BLOCK_OPS, text)
        } else {
            env.blocks.ensure(pc, text)
        };
        let Some((mut handle, mut tlen)) = resolved else {
            break fault(ctx, u64::from(pc));
        };
        // An armed park PC acts as a block boundary: a header entered by
        // fall-through may be fused into its predecessor's straight-line
        // decoding, so re-decode a clamped 1:1 run (the cached block is
        // untouched — a superop may straddle the cut, which only an
        // unfused decode can honor) to make the next loop-top entry land
        // exactly on the park PC. Execution order, cycle charges, and
        // quantum boundaries are identical either way — only the gate's
        // visibility changes.
        if let Some(park) = ctx.osr {
            if park.pc > pc && u64::from(park.pc) < u64::from(pc) + u64::from(tlen) {
                let clamped = env
                    .blocks
                    .decode_scratch(pc, (park.pc - pc) as usize, text)
                    .expect("clamped block starts inside text");
                handle = clamped.0;
                tlen = clamped.1;
            }
        }
        let start = pc as usize;
        let ops = env.blocks.ops_of(handle);
        // `tpc` is the text address of the op being executed; superops
        // advance it past their first constituent inside the arm.
        let mut tpc = start;
        for dop in ops {
            // The budget gate is per instruction, exactly as per-op
            // dispatch (superop constituents included, below): quantum
            // boundaries land on the same instruction, so
            // schedule-sensitive simulations are unchanged.
            if used >= budget {
                pc = tpc as u32;
                break 'dispatch StopReason::BudgetExhausted;
            }
            insts += 1;
            let bt_inst_tax = if BT {
                ctx.bt.as_mut().expect("BT mode").charge_inst()
            } else {
                0
            };
            match *dop {
                DecodedOp::Movi { dst, imm } => {
                    used += costs.alu + bt_inst_tax;
                    ctx.set_reg(dst, imm);
                }
                DecodedOp::Alu { op, dst, a, b } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op.eval(ctx.reg(a), ctx.reg(b));
                    ctx.set_reg(dst, v);
                }
                DecodedOp::AluImm { op, dst, a, imm } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op.eval(ctx.reg(a), imm);
                    ctx.set_reg(dst, v);
                }
                DecodedOp::Load { dst, base, offset } => {
                    let addr = ctx.reg(base).wrapping_add(offset) as u64;
                    if !in_bounds(addr, data_len) {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, addr);
                    }
                    used += costs.alu
                        + bt_inst_tax
                        + env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr),
                            AccessKind::Load,
                            env.counters,
                        );
                    let a = addr as usize;
                    let v = i64::from_le_bytes(env.data[a..a + 8].try_into().expect("8 bytes"));
                    ctx.set_reg(dst, v);
                }
                DecodedOp::Store { base, offset, src } => {
                    let addr = ctx.reg(base).wrapping_add(offset) as u64;
                    if !in_bounds(addr, data_len) {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, addr);
                    }
                    used += costs.alu
                        + bt_inst_tax
                        + env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr),
                            AccessKind::Store,
                            env.counters,
                        );
                    let v = ctx.reg(src);
                    let a = addr as usize;
                    env.data[a..a + 8].copy_from_slice(&v.to_le_bytes());
                }
                DecodedOp::PrefetchNta { base, offset } => {
                    let addr = ctx.reg(base).wrapping_add(offset) as u64;
                    used += costs.prefetch + bt_inst_tax;
                    // Prefetches to invalid addresses are silently dropped,
                    // as on real hardware.
                    if in_bounds(addr, data_len) {
                        used += env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr),
                            AccessKind::NonTemporalPrefetch,
                            env.counters,
                        );
                    }
                }
                DecodedOp::Jmp { target } => {
                    branches += 1;
                    let mut cost = costs.branch;
                    if BT {
                        cost += ctx
                            .bt
                            .as_mut()
                            .expect("BT mode")
                            .charge_branch(target, false);
                    }
                    used += cost + bt_inst_tax;
                    pc = target;
                    continue 'dispatch;
                }
                DecodedOp::Bnz { cond, target } => {
                    branches += 1;
                    let mut cost = costs.branch;
                    if ctx.reg(cond) != 0 {
                        if BT {
                            cost += ctx
                                .bt
                                .as_mut()
                                .expect("BT mode")
                                .charge_branch(target, false);
                        }
                        used += cost + bt_inst_tax;
                        pc = target;
                        continue 'dispatch;
                    }
                    used += cost + bt_inst_tax;
                }
                DecodedOp::Bz { cond, target } => {
                    branches += 1;
                    let mut cost = costs.branch;
                    if ctx.reg(cond) == 0 {
                        if BT {
                            cost += ctx
                                .bt
                                .as_mut()
                                .expect("BT mode")
                                .charge_branch(target, false);
                        }
                        used += cost + bt_inst_tax;
                        pc = target;
                        continue 'dispatch;
                    }
                    used += cost + bt_inst_tax;
                }
                DecodedOp::Call { target, dst, args } => {
                    branches += 1;
                    let mut cost = costs.call;
                    if BT {
                        cost += ctx
                            .bt
                            .as_mut()
                            .expect("BT mode")
                            .charge_branch(target, false);
                    }
                    let mut vals = [0i64; visa::MAX_ARGS];
                    for (k, a) in args.as_slice().iter().enumerate() {
                        vals[k] = ctx.reg(*a);
                    }
                    let Some(ret_pc) = checked_next_pc(tpc) else {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, tpc as u64 + 1);
                    };
                    ctx.push_frame(target, ret_pc, dst, &vals[..args.len as usize]);
                    used += cost + bt_inst_tax;
                    pc = target;
                    continue 'dispatch;
                }
                DecodedOp::CallVirt { slot, dst, args } => {
                    branches += 1;
                    let mut cost = costs.call + costs.indirect_penalty;
                    let cell = ctx
                        .evt_base
                        .wrapping_add(8u64.wrapping_mul(u64::from(slot)));
                    if !in_bounds(cell, data_len) {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, cell);
                    }
                    // The EVT read is an ordinary cached memory access; this
                    // is where the (tiny) cost of edge virtualization lives.
                    cost += env.mem.access(
                        env.core,
                        phys_addr(ctx.space, cell),
                        AccessKind::Load,
                        env.counters,
                    );
                    let c = cell as usize;
                    let raw = u64::from_le_bytes(env.data[c..c + 8].try_into().expect("8 bytes"));
                    let Ok(target) = u32::try_from(raw) else {
                        // A corrupted EVT cell wider than the PC space
                        // faults instead of silently truncating to a
                        // plausible (and wrong) text address.
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, raw);
                    };
                    if BT {
                        cost += ctx
                            .bt
                            .as_mut()
                            .expect("BT mode")
                            .charge_branch(target, true);
                    }
                    let mut vals = [0i64; visa::MAX_ARGS];
                    for (k, a) in args.as_slice().iter().enumerate() {
                        vals[k] = ctx.reg(*a);
                    }
                    let Some(ret_pc) = checked_next_pc(tpc) else {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, tpc as u64 + 1);
                    };
                    ctx.push_frame(target, ret_pc, dst, &vals[..args.len as usize]);
                    used += cost + bt_inst_tax;
                    pc = target;
                    continue 'dispatch;
                }
                DecodedOp::Ret { src } => {
                    branches += 1;
                    let mut cost = costs.call;
                    let val = src.map(|r| ctx.reg(r));
                    let frame = ctx.frames.pop().expect("ret with live frame");
                    ctx.regs.truncate(frame.base);
                    if ctx.frames.is_empty() {
                        // Returned from the entry frame: program finished.
                        ctx.base = 0;
                        used += cost;
                        pc = tpc as u32;
                        ctx.status = ExecStatus::Halted;
                        break 'dispatch StopReason::Halted;
                    }
                    ctx.base = ctx.frames.last().expect("caller frame").base;
                    if BT {
                        cost += ctx
                            .bt
                            .as_mut()
                            .expect("BT mode")
                            .charge_branch(frame.ret_pc, true);
                    }
                    if let (Some(dst), Some(v)) = (frame.ret_dst, val) {
                        ctx.set_reg(dst, v);
                    }
                    used += cost + bt_inst_tax;
                    pc = frame.ret_pc;
                    continue 'dispatch;
                }
                DecodedOp::Report { channel, src } => {
                    used += costs.alu + bt_inst_tax;
                    let v = ctx.reg(src);
                    ctx.reports.push((channel, v));
                }
                DecodedOp::Wait => {
                    used += costs.alu;
                    let Some(next) = checked_next_pc(tpc) else {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, tpc as u64 + 1);
                    };
                    pc = next;
                    ctx.status = ExecStatus::Waiting;
                    break 'dispatch StopReason::Waiting;
                }
                DecodedOp::Halt => {
                    used += costs.alu;
                    pc = tpc as u32;
                    ctx.status = ExecStatus::Halted;
                    break 'dispatch StopReason::Halted;
                }
                // Superops. Each constituent charges cycles, counts as an
                // instruction, pays its own BT tax, and re-checks the
                // budget exactly as the unfused pair would, so quantum
                // boundaries and PC samples are bit-identical.
                DecodedOp::AluImmBnz {
                    op,
                    dst,
                    a,
                    imm,
                    cond,
                    target,
                } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op.eval(ctx.reg(a), imm);
                    ctx.set_reg(dst, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    branches += 1;
                    let mut cost = costs.branch;
                    if ctx.reg(cond) != 0 {
                        if BT {
                            cost += ctx
                                .bt
                                .as_mut()
                                .expect("BT mode")
                                .charge_branch(target, false);
                        }
                        used += cost + tax2;
                        pc = target;
                        continue 'dispatch;
                    }
                    used += cost + tax2;
                    tpc += 1;
                }
                DecodedOp::AluImmBz {
                    op,
                    dst,
                    a,
                    imm,
                    cond,
                    target,
                } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op.eval(ctx.reg(a), imm);
                    ctx.set_reg(dst, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    branches += 1;
                    let mut cost = costs.branch;
                    if ctx.reg(cond) == 0 {
                        if BT {
                            cost += ctx
                                .bt
                                .as_mut()
                                .expect("BT mode")
                                .charge_branch(target, false);
                        }
                        used += cost + tax2;
                        pc = target;
                        continue 'dispatch;
                    }
                    used += cost + tax2;
                    tpc += 1;
                }
                DecodedOp::AluBnz {
                    op,
                    dst,
                    a,
                    b,
                    cond,
                    target,
                } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op.eval(ctx.reg(a), ctx.reg(b));
                    ctx.set_reg(dst, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    branches += 1;
                    let mut cost = costs.branch;
                    if ctx.reg(cond) != 0 {
                        if BT {
                            cost += ctx
                                .bt
                                .as_mut()
                                .expect("BT mode")
                                .charge_branch(target, false);
                        }
                        used += cost + tax2;
                        pc = target;
                        continue 'dispatch;
                    }
                    used += cost + tax2;
                    tpc += 1;
                }
                DecodedOp::AluBz {
                    op,
                    dst,
                    a,
                    b,
                    cond,
                    target,
                } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op.eval(ctx.reg(a), ctx.reg(b));
                    ctx.set_reg(dst, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    branches += 1;
                    let mut cost = costs.branch;
                    if ctx.reg(cond) == 0 {
                        if BT {
                            cost += ctx
                                .bt
                                .as_mut()
                                .expect("BT mode")
                                .charge_branch(target, false);
                        }
                        used += cost + tax2;
                        pc = target;
                        continue 'dispatch;
                    }
                    used += cost + tax2;
                    tpc += 1;
                }
                DecodedOp::LoadAluImm {
                    ldst,
                    base,
                    offset,
                    op,
                    dst,
                    a,
                    imm,
                } => {
                    let addr = ctx.reg(base).wrapping_add(offset) as u64;
                    if !in_bounds(addr, data_len) {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, addr);
                    }
                    used += costs.alu
                        + bt_inst_tax
                        + env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr),
                            AccessKind::Load,
                            env.counters,
                        );
                    let ad = addr as usize;
                    let v = i64::from_le_bytes(env.data[ad..ad + 8].try_into().expect("8 bytes"));
                    ctx.set_reg(ldst, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    used += costs.alu + tax2;
                    let v2 = op.eval(ctx.reg(a), imm);
                    ctx.set_reg(dst, v2);
                    tpc += 1;
                }
                DecodedOp::LoadAlu {
                    ldst,
                    base,
                    offset,
                    op,
                    dst,
                    a,
                    b,
                } => {
                    let addr = ctx.reg(base).wrapping_add(offset) as u64;
                    if !in_bounds(addr, data_len) {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, addr);
                    }
                    used += costs.alu
                        + bt_inst_tax
                        + env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr),
                            AccessKind::Load,
                            env.counters,
                        );
                    let ad = addr as usize;
                    let v = i64::from_le_bytes(env.data[ad..ad + 8].try_into().expect("8 bytes"));
                    ctx.set_reg(ldst, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    used += costs.alu + tax2;
                    let v2 = op.eval(ctx.reg(a), ctx.reg(b));
                    ctx.set_reg(dst, v2);
                    tpc += 1;
                }
                DecodedOp::LoadLoad {
                    dst1,
                    base1,
                    off1,
                    dst2,
                    base2,
                    off2,
                } => {
                    let addr = ctx.reg(base1).wrapping_add(off1) as u64;
                    if !in_bounds(addr, data_len) {
                        pc = tpc as u32;
                        break 'dispatch fault(ctx, addr);
                    }
                    used += costs.alu
                        + bt_inst_tax
                        + env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr),
                            AccessKind::Load,
                            env.counters,
                        );
                    let ad = addr as usize;
                    let v = i64::from_le_bytes(env.data[ad..ad + 8].try_into().expect("8 bytes"));
                    ctx.set_reg(dst1, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    let addr2 = ctx.reg(base2).wrapping_add(off2) as u64;
                    if !in_bounds(addr2, data_len) {
                        pc = (tpc + 1) as u32;
                        break 'dispatch fault(ctx, addr2);
                    }
                    used += costs.alu
                        + tax2
                        + env.mem.access(
                            env.core,
                            phys_addr(ctx.space, addr2),
                            AccessKind::Load,
                            env.counters,
                        );
                    let ad2 = addr2 as usize;
                    let v2 =
                        i64::from_le_bytes(env.data[ad2..ad2 + 8].try_into().expect("8 bytes"));
                    ctx.set_reg(dst2, v2);
                    tpc += 1;
                }
                DecodedOp::AluImmAluImm {
                    op1,
                    dst1,
                    a1,
                    imm1,
                    op2,
                    dst2,
                    a2,
                    imm2,
                } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op1.eval(ctx.reg(a1), imm1);
                    ctx.set_reg(dst1, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    used += costs.alu + tax2;
                    let v2 = op2.eval(ctx.reg(a2), imm2);
                    ctx.set_reg(dst2, v2);
                    tpc += 1;
                }
                DecodedOp::AluImmAlu {
                    op1,
                    dst1,
                    a1,
                    imm1,
                    op2,
                    dst2,
                    a2,
                    b2,
                } => {
                    used += costs.alu + bt_inst_tax;
                    let v = op1.eval(ctx.reg(a1), imm1);
                    ctx.set_reg(dst1, v);
                    if used >= budget {
                        pc = (tpc + 1) as u32;
                        break 'dispatch StopReason::BudgetExhausted;
                    }
                    insts += 1;
                    let tax2 = if BT {
                        ctx.bt.as_mut().expect("BT mode").charge_inst()
                    } else {
                        0
                    };
                    used += costs.alu + tax2;
                    let v2 = op2.eval(ctx.reg(a2), ctx.reg(b2));
                    ctx.set_reg(dst2, v2);
                    tpc += 1;
                }
            }
            tpc += 1;
        }
        // Fall through past the block's end to the next sequential block.
        let next = start as u64 + u64::from(tlen);
        match u32::try_from(next) {
            Ok(next_pc) => pc = next_pc,
            Err(_) => {
                pc = (start + tlen as usize - 1) as u32;
                break fault(ctx, next);
            }
        }
    };
    ctx.pc = pc;
    env.counters.instructions += insts;
    env.counters.branches += branches;
    env.counters.cycles += used;
    RunResult { cycles: used, stop }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use pir::BinOp;

    fn env_parts() -> (MemorySystem, Vec<u8>, PerfCounters, BlockCache) {
        let cfg = MachineConfig::small();
        (
            MemorySystem::new(&cfg),
            vec![0u8; 4096],
            PerfCounters::default(),
            BlockCache::new(),
        )
    }

    fn run_to_end(text: &[Op], data: &mut Vec<u8>, evt_base: u64) -> (ExecContext, PerfCounters) {
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut blocks = BlockCache::new();
        let mut ctx = ExecContext::new(0, 1, evt_base);
        let mut env = ExecEnv {
            text,
            text_gen: 0,
            blocks: &mut blocks,
            data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_ne!(
            res.stop,
            StopReason::BudgetExhausted,
            "program should finish"
        );
        (ctx, counters)
    }

    #[test]
    fn arithmetic_and_halt() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 6,
            },
            Op::AluImm {
                op: BinOp::Mul,
                dst: PReg(1),
                a: PReg(0),
                imm: 7,
            },
            Op::Store {
                base: PReg(2),
                offset: 100,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (ctx, counters) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
        assert_eq!(i64::from_le_bytes(data[100..108].try_into().unwrap()), 42);
        assert_eq!(counters.instructions, 4);
    }

    #[test]
    fn load_store_roundtrip() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 256,
            },
            Op::Movi {
                dst: PReg(1),
                imm: -99,
            },
            Op::Store {
                base: PReg(0),
                offset: 0,
                src: PReg(1),
            },
            Op::Load {
                dst: PReg(2),
                base: PReg(0),
                offset: 0,
            },
            Op::Store {
                base: PReg(0),
                offset: 8,
                src: PReg(2),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (_, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(i64::from_le_bytes(data[264..272].try_into().unwrap()), -99);
    }

    #[test]
    fn call_and_ret_with_register_windows() {
        // f(a, b) = a + b at addr 0; main at 2.
        let text = vec![
            Op::Alu {
                op: BinOp::Add,
                dst: PReg(2),
                a: PReg(0),
                b: PReg(1),
            },
            Op::Ret { src: Some(PReg(2)) },
            // main:
            Op::Movi {
                dst: PReg(5),
                imm: 30,
            },
            Op::Movi {
                dst: PReg(6),
                imm: 12,
            },
            Op::Call {
                target: 0,
                dst: Some(PReg(7)),
                args: vec![PReg(5), PReg(6)],
            },
            Op::Store {
                base: PReg(0),
                offset: 64,
                src: PReg(7),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (mut mem, _, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(2, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(i64::from_le_bytes(data[64..72].try_into().unwrap()), 42);
    }

    #[test]
    fn callee_registers_start_zeroed_after_frame_reuse() {
        // dirty(x): writes r3 = 77, returns; probe(): returns r3 (should
        // be 0 even after dirty() polluted the same window).
        let text = vec![
            // dirty at 0:
            Op::Movi {
                dst: PReg(3),
                imm: 77,
            },
            Op::Ret { src: None },
            // probe at 2:
            Op::Ret { src: Some(PReg(3)) },
            // main at 3:
            Op::Call {
                target: 0,
                dst: None,
                args: vec![],
            },
            Op::Call {
                target: 2,
                dst: Some(PReg(0)),
                args: vec![],
            },
            Op::Store {
                base: PReg(1),
                offset: 128,
                src: PReg(0),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (mut mem, _, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(3, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(i64::from_le_bytes(data[128..136].try_into().unwrap()), 0);
    }

    #[test]
    fn recursion_via_entry_return_halts() {
        // main: ret -> returning from entry frame halts the program.
        let text = vec![Op::Ret { src: None }];
        let mut data = vec![0u8; 64];
        let (ctx, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
    }

    #[test]
    fn loop_respects_budget() {
        // Infinite loop; ensure budget exhaustion returns control.
        let text = vec![Op::Jmp { target: 0 }];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::BudgetExhausted);
        assert!(res.cycles >= 1000);
        assert!(ctx.is_running());
        assert_eq!(counters.branches, counters.instructions);
    }

    #[test]
    fn budget_overshoot_is_bounded_by_one_instruction() {
        // A long straight-line run: the per-instruction budget gate must
        // stop within one instruction's cost of the budget.
        let mut text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1,
            };
            4 * MAX_BLOCK_OPS
        ];
        text.push(Op::Jmp { target: 0 });
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let budget = 1_000;
        let max_inst_cost = env.costs.branch.max(env.costs.alu);
        let res = run(&mut ctx, &mut env, budget);
        assert_eq!(res.stop, StopReason::BudgetExhausted);
        assert!(res.cycles >= budget);
        assert!(
            res.cycles <= budget + max_inst_cost,
            "overshoot too large: {} vs budget {budget}",
            res.cycles
        );
    }

    #[test]
    fn wait_parks_and_wake_resumes() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1,
            },
            Op::Wait,
            Op::Movi {
                dst: PReg(0),
                imm: 2,
            },
            Op::Halt,
        ];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Waiting);
        assert_eq!(ctx.status(), ExecStatus::Waiting);
        // Running while parked consumes nothing.
        let res2 = run(&mut ctx, &mut env, 1000);
        assert_eq!(res2.cycles, 0);
        assert_eq!(res2.stop, StopReason::Waiting);
        ctx.wake();
        let res3 = run(&mut ctx, &mut env, 1000);
        assert_eq!(res3.stop, StopReason::Halted);
    }

    /// A counted loop: r0 counts up to 5, storing the count each
    /// iteration; header (the count/branch block) at 1, body fall-through.
    fn counted_loop_text() -> Vec<Op> {
        vec![
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            // header at 1:
            Op::AluImm {
                op: BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 1,
            },
            Op::Store {
                base: PReg(3),
                offset: 64,
                src: PReg(0),
            },
            Op::AluImm {
                op: BinOp::Lt,
                dst: PReg(1),
                a: PReg(0),
                imm: 5,
            },
            Op::Bnz {
                cond: PReg(1),
                target: 1,
            },
            Op::Halt,
        ]
    }

    #[test]
    fn osr_park_stops_at_exact_hit_with_block_entry_state() {
        let text = counted_loop_text();
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        // Park on the 3rd entry into the header: two full iterations have
        // stored 1 and 2, and r0 == 2 at block entry (the increment of
        // the 3rd iteration has not executed).
        ctx.osr_arm(1, 3);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::OsrParked);
        assert_eq!(ctx.status(), ExecStatus::OsrParked);
        assert!(ctx.is_osr_parked());
        assert_eq!(ctx.pc(), 1);
        assert_eq!(ctx.osr_hits(), 3);
        assert_eq!(ctx.frame_regs()[0], 2);
        assert_eq!(i64::from_le_bytes(env.data[64..72].try_into().unwrap()), 2);
        // A parked context consumes nothing.
        let res2 = run(&mut ctx, &mut env, 1000);
        assert_eq!(res2.cycles, 0);
        assert_eq!(res2.stop, StopReason::OsrParked);
    }

    #[test]
    fn osr_disarm_resumes_in_place_bit_identically() {
        let text = counted_loop_text();
        let run_with = |park: bool| {
            let (mut mem, mut data, mut counters, mut blocks) = env_parts();
            let mut ctx = ExecContext::new(0, 1, 0);
            if park {
                ctx.osr_arm(1, 2);
            }
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let mut res = run(&mut ctx, &mut env, 1_000_000);
            if res.stop == StopReason::OsrParked {
                ctx.osr_disarm();
                let more = run(&mut ctx, &mut env, 1_000_000);
                res = RunResult {
                    cycles: res.cycles + more.cycles,
                    stop: more.stop,
                };
            }
            (res, data, counters.instructions)
        };
        let (plain, plain_data, plain_insts) = run_with(false);
        let (parked, parked_data, parked_insts) = run_with(true);
        assert_eq!(plain.stop, StopReason::Halted);
        assert_eq!(parked.stop, StopReason::Halted);
        // Park + cancel charges nothing and perturbs nothing: identical
        // cycles, instructions, and final memory.
        assert_eq!(plain.cycles, parked.cycles);
        assert_eq!(plain_insts, parked_insts);
        assert_eq!(plain_data, parked_data);
    }

    #[test]
    fn osr_apply_rebuilds_frame_in_transfer_order_and_resume_continues() {
        let text = counted_loop_text();
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        ctx.osr_arm(1, 4); // r0 == 3 at block entry
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        assert_eq!(
            run(&mut ctx, &mut env, 1_000_000).stop,
            StopReason::OsrParked
        );
        // Apply is refused while running (checked via a fresh context).
        let mut fresh = ExecContext::new(0, 1, 0);
        assert!(!fresh.osr_apply(&[], &[]));
        assert!(!fresh.osr_restore(&[0; FRAME_REGS]));
        assert!(!fresh.osr_resume(1));
        // Transfer order: zero-fill, then moves from the OLD window, then
        // consts. r2 ← old r0 (3), r0 ← old r0 (3), then const r0 = 4;
        // a move reading a reg another move already wrote must still see
        // the old value (r1 ← old r0, not the freshly-written r0).
        let snapshot: Vec<i64> = ctx.frame_regs().to_vec();
        assert!(ctx.osr_apply(
            &[(PReg(2), PReg(0)), (PReg(0), PReg(0)), (PReg(1), PReg(0))],
            &[(PReg(0), 4)],
        ));
        assert_eq!(ctx.frame_regs()[0], 4, "const patches after moves");
        assert_eq!(ctx.frame_regs()[1], 3, "move reads the old window");
        assert_eq!(ctx.frame_regs()[2], 3);
        assert_eq!(ctx.frame_regs()[3], 0, "unmentioned regs zero-filled");
        // Restore the pre-transfer frame (the misapply deopt path), then
        // re-apply the real transfer and resume at the header: the loop
        // continues from r0 == 3 as if never interrupted.
        assert!(ctx.osr_restore(&snapshot));
        assert_eq!(ctx.frame_regs()[0], 3);
        assert!(ctx.osr_apply(&[(PReg(0), PReg(0))], &[]));
        assert!(ctx.osr_resume(1));
        assert_eq!(ctx.status(), ExecStatus::Running);
        assert_eq!(ctx.osr_armed(), None);
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(i64::from_le_bytes(env.data[64..72].try_into().unwrap()), 5);
    }

    #[test]
    fn osr_park_does_not_recount_on_quantum_boundary() {
        // Drain the budget so quanta end at arbitrary points, including
        // block entries: every header entry must be counted exactly once.
        let text = counted_loop_text();
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        ctx.osr_arm(1, 5);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let mut stop = StopReason::BudgetExhausted;
        for _ in 0..10_000 {
            stop = run(&mut ctx, &mut env, 1).stop;
            if stop != StopReason::BudgetExhausted {
                break;
            }
        }
        assert_eq!(stop, StopReason::OsrParked);
        assert_eq!(ctx.osr_hits(), 5);
        assert_eq!(ctx.frame_regs()[0], 4, "parked at entry of the 5th pass");
    }

    #[test]
    fn out_of_bounds_load_faults() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1 << 20,
            },
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::Halt,
        ];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Faulted);
        assert!(matches!(ctx.status(), ExecStatus::Faulted(_)));
    }

    #[test]
    fn pc_past_text_faults() {
        let text = vec![Op::Jmp { target: 7 }];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Faulted);
    }

    #[test]
    fn any_encodable_register_is_valid() {
        // PReg is a byte and the frame holds 256 slots, so even registers
        // the compiler never allocates (240..=255) must read and write a
        // real slot instead of panicking the simulator.
        let text = vec![
            Op::Movi {
                dst: PReg(255),
                imm: 7,
            },
            Op::Alu {
                op: BinOp::Add,
                dst: PReg(254),
                a: PReg(255),
                b: PReg(240),
            },
            Op::Store {
                base: PReg(2),
                offset: 64,
                src: PReg(254),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 4096];
        let (ctx, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
        assert_eq!(i64::from_le_bytes(data[64..72].try_into().unwrap()), 7);
    }

    #[test]
    fn next_pc_overflow_is_a_fault_not_a_wrap() {
        // The guard itself: a return address or fall-through past
        // u32::MAX must refuse to wrap to text address 0.
        assert_eq!(checked_next_pc(10), Some(11));
        assert_eq!(checked_next_pc(u32::MAX as usize - 1), Some(u32::MAX));
        assert_eq!(checked_next_pc(u32::MAX as usize), None);
    }

    #[test]
    fn callvirt_target_wider_than_u32_faults_instead_of_truncating() {
        // EVT slot holds (1 << 32) | 1: truncation would "call" the valid
        // text address 1 and silently run the wrong code.
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            Op::Halt,
            // main at 2:
            Op::CallVirt {
                slot: 0,
                dst: None,
                args: vec![],
            },
            Op::Halt,
        ];
        let evt_base = 64u64;
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let bad = (1u64 << 32) | 1;
        data[64..72].copy_from_slice(&bad.to_le_bytes());
        let mut ctx = ExecContext::new(2, 1, evt_base);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1000);
        assert_eq!(res.stop, StopReason::Faulted);
        assert_eq!(ctx.status(), ExecStatus::Faulted(bad));
        assert_eq!(ctx.pc(), 2, "fault reported at the CallVirt itself");
    }

    #[test]
    fn callvirt_reads_evt_and_redirect_takes_effect() {
        // Two variants of a leaf function; EVT slot 0 selects.
        let text = vec![
            // variant A at 0: returns 1
            Op::Movi {
                dst: PReg(0),
                imm: 1,
            },
            Op::Ret { src: Some(PReg(0)) },
            // variant B at 2: returns 2
            Op::Movi {
                dst: PReg(0),
                imm: 2,
            },
            Op::Ret { src: Some(PReg(0)) },
            // main at 4: callv [evt+0]; store result; callv again after
            // the "runtime" patches the EVT (simulated by a store here? —
            // no: the test patches data directly between runs).
            Op::CallVirt {
                slot: 0,
                dst: Some(PReg(1)),
                args: vec![],
            },
            Op::Store {
                base: PReg(2),
                offset: 512,
                src: PReg(1),
            },
            Op::Wait,
            Op::CallVirt {
                slot: 0,
                dst: Some(PReg(1)),
                args: vec![],
            },
            Op::Store {
                base: PReg(2),
                offset: 520,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let evt_base = 64u64;
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        data[64..72].copy_from_slice(&0u64.to_le_bytes()); // slot 0 -> variant A
        let mut ctx = ExecContext::new(4, 1, evt_base);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Waiting);
        // "EVT manager" patches the slot with a single 8-byte write while
        // the program is parked. No text mutation, so no generation bump:
        // the decoded blocks stay valid and the redirect must still land.
        env.data[64..72].copy_from_slice(&2u64.to_le_bytes());
        ctx.wake();
        let res2 = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res2.stop, StopReason::Halted);
        assert_eq!(
            i64::from_le_bytes(env.data[512..520].try_into().unwrap()),
            1
        );
        assert_eq!(
            i64::from_le_bytes(env.data[520..528].try_into().unwrap()),
            2
        );
    }

    #[test]
    fn text_mutation_with_gen_bump_executes_fresh_code() {
        // A loop whose body block is decoded on the first run, then
        // patched in place (as `corrupt_text` / a code-cache write would)
        // while the context is parked. After the generation bump the next
        // pass must execute the new op, not any stale decoding.
        let mut text = vec![
            Op::Movi {
                dst: PReg(3),
                imm: 5,
            },
            Op::Store {
                base: PReg(2),
                offset: 64,
                src: PReg(3),
            },
            Op::Wait,
            Op::Jmp { target: 0 },
        ];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        {
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let res = run(&mut ctx, &mut env, 1_000_000);
            assert_eq!(res.stop, StopReason::Waiting);
        }
        assert_eq!(i64::from_le_bytes(data[64..72].try_into().unwrap()), 5);
        // In-place patch of the already-decoded block, plus the bump.
        text[0] = Op::Movi {
            dst: PReg(3),
            imm: 9,
        };
        ctx.wake();
        let mut env = ExecEnv {
            text: &text,
            text_gen: 1,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Waiting);
        assert_eq!(i64::from_le_bytes(env.data[64..72].try_into().unwrap()), 9);
    }

    #[test]
    fn text_append_is_visible_even_without_gen_bump() {
        // Appends change text length; the cache resyncs on the length
        // mismatch alone, so a caller that forgot the bump still cannot
        // run off the old end.
        let mut text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1,
            },
            Op::Wait,
            Op::Jmp { target: 3 },
        ];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        {
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            assert_eq!(run(&mut ctx, &mut env, 1_000_000).stop, StopReason::Waiting);
        }
        // Code-cache append: a variant at addr 3 that proves it ran.
        text.push(Op::Movi {
            dst: PReg(1),
            imm: 42,
        });
        text.push(Op::Store {
            base: PReg(2),
            offset: 72,
            src: PReg(1),
        });
        text.push(Op::Halt);
        ctx.wake();
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(i64::from_le_bytes(env.data[72..80].try_into().unwrap()), 42);
    }

    #[test]
    fn binary_translation_charges_overhead() {
        // A loop executing 1000 iterations: BT mode must be slower and
        // report overhead.
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 1000,
            },
            // loop: dec, bnz
            Op::AluImm {
                op: BinOp::Sub,
                dst: PReg(0),
                a: PReg(0),
                imm: 1,
            },
            Op::Bnz {
                cond: PReg(0),
                target: 1,
            },
            Op::Halt,
        ];
        let time = |bt: bool| {
            let (mut mem, mut data, mut counters, mut blocks) = env_parts();
            let mut ctx = ExecContext::new(0, 1, 0);
            if bt {
                ctx = ctx.with_binary_translation(BtConfig::default());
            }
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let res = run(&mut ctx, &mut env, u64::MAX / 2);
            assert_eq!(res.stop, StopReason::Halted);
            (res.cycles, ctx.bt_overhead())
        };
        let (plain, none) = time(false);
        let (translated, overhead) = time(true);
        assert_eq!(none, None);
        let oh = overhead.unwrap();
        assert!(oh > 0);
        assert_eq!(translated, plain + oh);
    }

    #[test]
    fn bt_translation_cache_spills_far_targets() {
        // Targets beyond the dense bitset limit still deduplicate, and the
        // dense part never grows to cover them.
        let mut bt = BtState::new(BtConfig::default());
        let far = BT_DENSE_LIMIT + 123;
        assert!(bt.mark_translated(far));
        assert!(!bt.mark_translated(far));
        assert!(bt.mark_translated(7));
        assert!(!bt.mark_translated(7));
        assert!(bt.translated.len() <= 1, "near target stays dense");
        assert_eq!(bt.translated_far.len(), 1);
    }

    #[test]
    fn bz_branches_on_zero() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            Op::Bz {
                cond: PReg(0),
                target: 4,
            }, // taken: r0 == 0
            Op::Movi {
                dst: PReg(1),
                imm: 111,
            }, // skipped
            Op::Halt,
            Op::Movi {
                dst: PReg(1),
                imm: 7,
            },
            Op::Bz {
                cond: PReg(1),
                target: 0,
            }, // not taken: r1 != 0
            Op::Store {
                base: PReg(2),
                offset: 64,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 256];
        let (ctx, counters) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.status(), ExecStatus::Halted);
        assert_eq!(i64::from_le_bytes(data[64..72].try_into().unwrap()), 7);
        assert_eq!(counters.branches, 2);
    }

    #[test]
    fn report_samples_collected() {
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 5,
            },
            Op::Report {
                channel: 2,
                src: PReg(0),
            },
            Op::Movi {
                dst: PReg(0),
                imm: 9,
            },
            Op::Report {
                channel: 2,
                src: PReg(0),
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 64];
        let (ctx, _) = run_to_end(&text, &mut data, 0);
        assert_eq!(ctx.reports, vec![(2, 5), (2, 9)]);
    }

    #[test]
    fn counters_track_memory_hierarchy() {
        // Stream 64 distinct lines: all LLC misses the first pass.
        let text = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            // loop:
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::AluImm {
                op: BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::AluImm {
                op: BinOp::Lt,
                dst: PReg(2),
                a: PReg(0),
                imm: 64 * 64,
            },
            Op::Bnz {
                cond: PReg(2),
                target: 1,
            },
            Op::Halt,
        ];
        let mut data = vec![0u8; 64 * 64 + 64];
        let (_, counters) = run_to_end(&text, &mut data, 0);
        assert_eq!(counters.llc_misses, 64);
        assert!(counters.cycles > 64 * 180);
    }
    /// A fusion-rich program exercising every superop shape: loop 1
    /// pairs Load+Alu and AluImm+AluImm, loop 2 pairs Load+AluImm and
    /// AluImm+Alu, loop 3 pairs Alu+Bnz, and the epilogue takes a fused
    /// AluImm+Bz over a poison op it must skip, then issues an adjacent
    /// Load+Load pair before the stores.
    fn fused_shapes_text() -> Vec<Op> {
        vec![
            // 0:
            Op::Movi {
                dst: PReg(0),
                imm: 0,
            },
            Op::Movi {
                dst: PReg(7),
                imm: 0,
            },
            // loop1 at 2: sum 16 lines into r5, bump r0 by a line.
            Op::Load {
                dst: PReg(1),
                base: PReg(0),
                offset: 0,
            },
            Op::Alu {
                op: BinOp::Add,
                dst: PReg(5),
                a: PReg(5),
                b: PReg(1),
            },
            Op::AluImm {
                op: BinOp::Add,
                dst: PReg(0),
                a: PReg(0),
                imm: 64,
            },
            Op::AluImm {
                op: BinOp::Lt,
                dst: PReg(2),
                a: PReg(0),
                imm: 1024,
            },
            Op::Bnz {
                cond: PReg(2),
                target: 2,
            },
            // 7: loop2 preamble, then 5 iterations of r4 += 3.
            Op::Movi {
                dst: PReg(6),
                imm: 5,
            },
            // loop2 at 8:
            Op::Load {
                dst: PReg(1),
                base: PReg(7),
                offset: 0,
            },
            Op::AluImm {
                op: BinOp::Add,
                dst: PReg(4),
                a: PReg(4),
                imm: 3,
            },
            Op::AluImm {
                op: BinOp::Sub,
                dst: PReg(6),
                a: PReg(6),
                imm: 1,
            },
            Op::Alu {
                op: BinOp::Eq,
                dst: PReg(2),
                a: PReg(6),
                b: PReg(7),
            },
            Op::Bz {
                cond: PReg(2),
                target: 8,
            },
            // 13: loop3 preamble, count r6 from 3 to 0.
            Op::Movi {
                dst: PReg(8),
                imm: 1,
            },
            Op::Movi {
                dst: PReg(6),
                imm: 3,
            },
            // loop3 at 15:
            Op::Alu {
                op: BinOp::Sub,
                dst: PReg(6),
                a: PReg(6),
                b: PReg(8),
            },
            Op::Bnz {
                cond: PReg(6),
                target: 15,
            },
            // 17: fused compare+Bz skips the poison op.
            Op::AluImm {
                op: BinOp::Lt,
                dst: PReg(2),
                a: PReg(6),
                imm: 0,
            },
            Op::Bz {
                cond: PReg(2),
                target: 20,
            },
            // 19: poison; executing it means a fused branch went wrong.
            Op::Movi {
                dst: PReg(5),
                imm: -777,
            },
            // 20: epilogue; the adjacent loads fuse into a LoadLoad.
            Op::Load {
                dst: PReg(1),
                base: PReg(7),
                offset: 0,
            },
            Op::Load {
                dst: PReg(3),
                base: PReg(7),
                offset: 8,
            },
            Op::Store {
                base: PReg(7),
                offset: 4096,
                src: PReg(5),
            },
            Op::Store {
                base: PReg(7),
                offset: 4104,
                src: PReg(4),
            },
            Op::Report {
                channel: 1,
                src: PReg(4),
            },
            Op::Halt,
        ]
    }

    /// Runs `text` to completion in fixed-size quanta, optionally forcing
    /// the always-decode fallback, and returns everything an observer can
    /// see: the per-quantum (pc, cycles) trajectory, final counters,
    /// final data image, reports, and status.
    #[allow(clippy::type_complexity)]
    fn run_quantized(
        text: &[Op],
        quantum: u64,
        fallback: bool,
    ) -> (
        Vec<(u32, u64)>,
        PerfCounters,
        Vec<u8>,
        Vec<(u8, i64)>,
        ExecStatus,
    ) {
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut data = vec![0u8; 8192];
        let mut counters = PerfCounters::default();
        let mut blocks = BlockCache::new();
        blocks.set_fallback(fallback);
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut traj = Vec::new();
        loop {
            let mut env = ExecEnv {
                text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let res = run(&mut ctx, &mut env, quantum);
            traj.push((ctx.pc(), res.cycles));
            if res.stop != StopReason::BudgetExhausted {
                break;
            }
            assert!(traj.len() < 5_000_000, "program did not finish");
        }
        let reports = ctx.reports.clone();
        (traj, counters, data, reports, ctx.status())
    }

    #[test]
    fn decoded_and_fallback_are_bit_identical_across_quanta() {
        let text = fused_shapes_text();
        // Quantum 1 forces a boundary before every instruction, so every
        // fused pair gets split mid-pair at least once; 7 lands the
        // boundary at rotating offsets; the large quantum never splits.
        for quantum in [1u64, 7, 1_000_000] {
            let decoded = run_quantized(&text, quantum, false);
            let fallback = run_quantized(&text, quantum, true);
            assert_eq!(decoded, fallback, "quantum {quantum} diverged");
            let (_, counters, data, reports, status) = decoded;
            assert_eq!(status, ExecStatus::Halted);
            // r5 untouched by the poison op, r4 == 5 iterations * 3.
            assert_eq!(i64::from_le_bytes(data[4096..4104].try_into().unwrap()), 0);
            assert_eq!(i64::from_le_bytes(data[4104..4112].try_into().unwrap()), 15);
            assert_eq!(reports, vec![(1, 15)]);
            assert!(counters.instructions > 0);
        }
    }

    #[test]
    fn decode_stats_track_hits_misses_and_fusion() {
        let text = fused_shapes_text();
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        data.resize(8192, 0);
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        let stats = blocks.stats();
        // Eight distinct blocks are entered (0, 2, 7, 8, 13, 15, 17, 20);
        // the poison block at 19 is never decoded. Superops: two each in
        // the blocks at 0/2/7/8 (LoadAlu + AluImmAluImm, LoadAluImm +
        // AluImmAlu), one each at 13/15/17, and the LoadLoad at 20.
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.fused_ops, 12);
        assert_eq!(stats.invalidations, 0);
        // Every loop back-edge re-dispatch is a hit.
        assert!(stats.hits > stats.misses);

        // The fallback path never caches and never fuses.
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        data.resize(8192, 0);
        blocks.set_fallback(true);
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        let stats = blocks.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.fused_ops, 0);
        assert!(stats.misses > 8, "every dispatch should decode fresh");
    }

    #[test]
    fn length_change_without_gen_bump_never_replays_stale_block() {
        // Regression for the stale-shape window: the decoded tier copies
        // ops out of text, so a length change with a forgotten generation
        // bump must still invalidate. Decode against the short text, then
        // present a longer text that also rewrites an op *in place* at
        // the same generation; the stale decoded vector must not replay.
        let short = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 5,
            },
            Op::Halt,
        ];
        let long = vec![
            Op::Movi {
                dst: PReg(0),
                imm: 5,
            },
            // In-place change at index 1 (was Halt), plus appended ops.
            Op::Movi {
                dst: PReg(1),
                imm: 9,
            },
            Op::Store {
                base: PReg(2),
                offset: 128,
                src: PReg(1),
            },
            Op::Halt,
        ];
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        {
            let mut ctx = ExecContext::new(0, 1, 0);
            let mut env = ExecEnv {
                text: &short,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let res = run(&mut ctx, &mut env, 1_000_000);
            assert_eq!(res.stop, StopReason::Halted);
        }
        assert_eq!(blocks.stats().misses, 1);
        // Same generation, longer text: a fresh context must execute the
        // new ops, not the stale [Movi, Halt] vector.
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &long,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(
            i64::from_le_bytes(env.data[128..136].try_into().unwrap()),
            9
        );
        assert_eq!(blocks.stats().invalidations, 1);
    }

    #[test]
    fn invalidation_recycles_decoded_vectors_through_pool() {
        let text_a = counted_loop_text();
        let (mut mem, mut data, mut counters, mut blocks) = env_parts();
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text_a,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        let decoded_blocks = blocks.blocks.len();
        assert!(decoded_blocks >= 2);
        // Bump the generation: the decoded set drops, every retired
        // vector lands in the pool, and the next decode drains it.
        blocks.sync(text_a.len(), 1);
        assert_eq!(blocks.blocks.len(), 0);
        assert_eq!(blocks.pool.len(), decoded_blocks);
        assert_eq!(blocks.stats().invalidations, 1);
        let mut ctx = ExecContext::new(0, 1, 0);
        let mut env = ExecEnv {
            text: &text_a,
            text_gen: 1,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        let res = run(&mut ctx, &mut env, 1_000_000);
        assert_eq!(res.stop, StopReason::Halted);
        assert!(
            blocks.pool.len() < decoded_blocks,
            "decode should reuse pooled vectors"
        );
    }

    #[test]
    fn osr_park_inside_fused_pair_is_bit_exact() {
        // counted_loop_text's header block fuses its AluImm compare (pc 3)
        // with the Bnz (pc 4). Parking at pc 4 cuts through the middle of
        // that superop; the clamped dispatch must stop exactly there with
        // the same state the unfused fallback produces.
        let text = counted_loop_text();
        let run_mode = |fallback: bool| {
            let (mut mem, mut data, mut counters, mut blocks) = env_parts();
            blocks.set_fallback(fallback);
            let mut ctx = ExecContext::new(0, 1, 0);
            ctx.osr_arm(4, 2);
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let res = run(&mut ctx, &mut env, 1_000_000);
            assert_eq!(res.stop, StopReason::OsrParked);
            assert_eq!(ctx.pc(), 4);
            assert_eq!(ctx.osr_hits(), 2);
            let parked_regs = ctx.frame_regs().to_vec();
            ctx.osr_disarm();
            let more = run(&mut ctx, &mut env, 1_000_000);
            assert_eq!(more.stop, StopReason::Halted);
            (res.cycles + more.cycles, parked_regs, data, counters)
        };
        let decoded = run_mode(false);
        let fallback = run_mode(true);
        assert_eq!(decoded, fallback);
        // r0 == 2: two increments have run when the 2nd hit at pc 4 fires.
        assert_eq!(decoded.1[0], 2);
    }

    #[test]
    fn budget_boundary_lands_on_second_constituent_of_fused_pair() {
        // Block of [AluImm Lt, Bnz, Halt]: the pair fuses, yet a budget
        // of exactly one ALU cost must stop *between* the constituents
        // with the PC on the Bnz — quantum boundaries are per
        // instruction, never per superop.
        let text = vec![
            Op::AluImm {
                op: BinOp::Lt,
                dst: PReg(1),
                a: PReg(0),
                imm: 0,
            },
            Op::Bnz {
                cond: PReg(1),
                target: 0,
            },
            Op::Halt,
        ];
        for fallback in [false, true] {
            let (mut mem, mut data, mut counters, mut blocks) = env_parts();
            blocks.set_fallback(fallback);
            let mut ctx = ExecContext::new(0, 1, 0);
            let mut env = ExecEnv {
                text: &text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            let costs = CostModel::default();
            let res = run(&mut ctx, &mut env, costs.alu);
            assert_eq!(res.stop, StopReason::BudgetExhausted, "fallback {fallback}");
            assert_eq!(res.cycles, costs.alu);
            assert_eq!(ctx.pc(), 1, "PC must sit on the fused pair's branch");
            assert_eq!(env.counters.instructions, 1);
            let res2 = run(&mut ctx, &mut env, 1_000_000);
            assert_eq!(res2.stop, StopReason::Halted);
            assert_eq!(env.counters.instructions, 3);
        }
    }
}
