//! Per-context hardware performance counters.
//!
//! These are the quantities the protean runtime's monitoring reads: the
//! paper tracks "progress rate of the running applications using metrics
//! such as instructions per cycle (IPC) or branches retired per cycle
//! (BPC)" and "microarchitectural status ... such as cache misses or
//! bandwidth usage".

use std::ops::{Add, Sub};

/// A snapshot of one context's counters. Supports differencing
/// (`end - start`) for windowed measurements.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PerfCounters {
    /// Cycles this context has executed (excluding time descheduled).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Branches retired (jumps, conditional branches, calls, returns).
    pub branches: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Shared-LLC hits.
    pub llc_hits: u64,
    /// Shared-LLC misses (memory accesses).
    pub llc_misses: u64,
    /// Non-temporal prefetches issued.
    pub nt_prefetches: u64,
    /// Hardware (next-line) prefetches issued by the memory system.
    pub hw_prefetches: u64,
}

impl PerfCounters {
    /// Instructions per cycle; 0 if no cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branches per cycle; 0 if no cycles.
    pub fn bpc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.branches as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction; 0 if no instructions.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;

    fn add(self, rhs: PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles + rhs.cycles,
            instructions: self.instructions + rhs.instructions,
            branches: self.branches + rhs.branches,
            l1_misses: self.l1_misses + rhs.l1_misses,
            l2_misses: self.l2_misses + rhs.l2_misses,
            llc_hits: self.llc_hits + rhs.llc_hits,
            llc_misses: self.llc_misses + rhs.llc_misses,
            nt_prefetches: self.nt_prefetches + rhs.nt_prefetches,
            hw_prefetches: self.hw_prefetches + rhs.hw_prefetches,
        }
    }
}

impl Sub for PerfCounters {
    type Output = PerfCounters;

    /// Windowed delta. Saturating: a perf read can come back perturbed
    /// (see `simos::ObsFaults`), so a snapshot is not guaranteed to be
    /// monotonically ≥ the previous one; a monitor computing a delta must
    /// see an empty window, not an underflow panic.
    fn sub(self, rhs: PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles.saturating_sub(rhs.cycles),
            instructions: self.instructions.saturating_sub(rhs.instructions),
            branches: self.branches.saturating_sub(rhs.branches),
            l1_misses: self.l1_misses.saturating_sub(rhs.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(rhs.l2_misses),
            llc_hits: self.llc_hits.saturating_sub(rhs.llc_hits),
            llc_misses: self.llc_misses.saturating_sub(rhs.llc_misses),
            nt_prefetches: self.nt_prefetches.saturating_sub(rhs.nt_prefetches),
            hw_prefetches: self.hw_prefetches.saturating_sub(rhs.hw_prefetches),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let c = PerfCounters {
            cycles: 1000,
            instructions: 800,
            branches: 100,
            llc_misses: 8,
            ..Default::default()
        };
        assert!((c.ipc() - 0.8).abs() < 1e-12);
        assert!((c.bpc() - 0.1).abs() < 1e-12);
        assert!((c.llc_mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_safe_rates() {
        let c = PerfCounters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.bpc(), 0.0);
        assert_eq!(c.llc_mpki(), 0.0);
    }

    #[test]
    fn windowed_difference() {
        let start = PerfCounters {
            cycles: 100,
            instructions: 50,
            ..Default::default()
        };
        let end = PerfCounters {
            cycles: 300,
            instructions: 250,
            ..Default::default()
        };
        let win = end - start;
        assert_eq!(win.cycles, 200);
        assert_eq!(win.instructions, 200);
        assert_eq!((start + win), end);
    }
}
