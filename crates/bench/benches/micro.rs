//! Criterion micro-benchmarks for the substrate itself: cache-simulator
//! throughput, interpreter speed, runtime-compiler latency, EVT patch
//! latency, verifier/lint/dataflow/abstract-interpretation throughput,
//! equivalence
//! checker throughput (proved fast path vs refuted slow path), and IR
//! codec/compressor throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use machine::{
    AccessKind, Cache, CacheConfig, InsertPos, MachineConfig, MemorySystem, PerfCounters,
};
use pcc::{compile_function_variant, Compiler, NtAssignment, Options};
use protean::{HealthConfig, HealthMonitor, OsrConfig, OsrController, Runtime, RuntimeConfig};
use protean_bench::report::{self, Json};
use simos::{Os, OsConfig};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let mut cache = Cache::new(CacheConfig {
        sets: 4096,
        ways: 16,
        hit_latency: 0,
    });
    for line in 0..65536u64 {
        cache.fill(line, InsertPos::Mru);
    }
    let mut line = 0u64;
    group.bench_function("lookup_hit", |b| {
        b.iter(|| {
            line = (line + 97) & 0xffff;
            std::hint::black_box(cache.lookup(line))
        })
    });
    group.bench_function("miss_and_fill", |b| {
        let mut far = 1u64 << 32;
        b.iter(|| {
            far += 1;
            if !cache.lookup(far) {
                cache.fill(far, InsertPos::Mru);
            }
        })
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let mut mem = MemorySystem::new(&cfg);
    let mut counters = PerfCounters::default();
    let mut addr = 0u64;
    c.bench_function("hierarchy_access_stream", |b| {
        b.iter(|| {
            addr = (addr + 64) & 0xff_ffff;
            std::hint::black_box(mem.access(0, addr, AccessKind::Load, &mut counters))
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    // The dispatch-path headline window, on the experiment machine (the
    // config every real sweep runs; `OsConfig::default`'s paper-scale
    // cache metadata only measures host cache misses on tag arrays).
    // Decoded-tier mode (the default) is the tracked number; the
    // `_fallback` sibling forces the always-decode path for the A/B.
    let cfg = protean_bench::experiment_os();
    let img = protean_bench::compile_plain("milc", &cfg);
    let mut group = c.benchmark_group("interpreter");
    group.bench_function("advance_100k_cycles", |b| {
        let mut os = Os::new(cfg.clone());
        os.spawn(&img, 0);
        b.iter(|| os.advance(100_000));
    });
    group.bench_function("advance_100k_cycles_fallback", |b| {
        let mut os = Os::new(cfg.clone());
        let pid = os.spawn(&img, 0);
        os.set_decode_fallback(pid, true);
        b.iter(|| os.advance(100_000));
    });
    group.finish();
    // Same-session A/B: advance two identical processes (one per decode
    // mode) in strictly alternating windows, so host frequency drift
    // lands on both sides equally and cancels out of the ratio. Both
    // simulations are bit-identical; only the host wall-clock differs.
    let mk = |fallback: bool| {
        let mut os = Os::new(cfg.clone());
        let pid = os.spawn(&img, 0);
        os.set_decode_fallback(pid, fallback);
        for _ in 0..50 {
            os.advance(100_000); // warm simulated caches + block cache
        }
        os
    };
    let mut os_dec = mk(false);
    let mut os_fb = mk(true);
    let windows = 1500u32;
    let (mut wall_dec, mut wall_fb) = (0.0f64, 0.0f64);
    for _ in 0..windows {
        let t = std::time::Instant::now();
        os_dec.advance(100_000);
        wall_dec += t.elapsed().as_secs_f64();
        let t = std::time::Instant::now();
        os_fb.advance(100_000);
        wall_fb += t.elapsed().as_secs_f64();
    }
    let dec_us = wall_dec * 1e6 / f64::from(windows);
    let fb_us = wall_fb * 1e6 / f64::from(windows);
    let speedup = fb_us / dec_us;
    println!(
        "interpreter/advance_100k_cycles A/B (same session, {windows} alternating windows): \
         decoded {dec_us:.1} us vs fallback {fb_us:.1} us = {speedup:.2}x"
    );
    if let Some(dir) = protean_bench::report::report_dir() {
        let entry = Json::obj([
            ("decoded_us_per_window", Json::F64(dec_us)),
            ("fallback_us_per_window", Json::F64(fb_us)),
            ("speedup", Json::F64(speedup)),
        ]);
        report::update_json_map(&dir.join("BENCH_interp.json"), "advance_100k_ab", &entry)
            .expect("write BENCH_interp.json");
    }
}

/// Long-window interpreter throughput in M instr/s, the headline number
/// for the fast-path work. Scaled by `PROTEAN_SCALE` (400M simulated
/// cycles per window at the default scale) and written to
/// `BENCH_interp.json` when `PROTEAN_BENCH_JSON` names a directory.
fn bench_interp_throughput(_c: &mut Criterion) {
    let scale = protean_bench::Scale::from_env();
    let cycles = protean_bench::interp_cycles(scale);
    let reps = if scale == protean_bench::Scale::Quick {
        1
    } else {
        3
    };
    println!("interp-throughput ({cycles} simulated cycles per window, best of {reps})");
    for workload in ["milc", "libquantum", "bst"] {
        let m = protean_bench::interp_throughput(workload, cycles, reps);
        println!(
            "  {workload:<12} {:>8.1} M instr/s  ({} insts in {:.3}s)",
            m.m_instr_per_s, m.insts, m.wall_secs
        );
        if let Some(dir) = protean_bench::report::report_dir() {
            let entry = Json::obj([
                ("m_instr_per_s", Json::F64(m.m_instr_per_s)),
                ("insts", Json::U64(m.insts)),
                ("cycles", Json::U64(m.cycles)),
                ("wall_secs", Json::F64(m.wall_secs)),
            ]);
            report::update_json_map(&dir.join("BENCH_interp.json"), workload, &entry)
                .expect("write BENCH_interp.json");
        }
    }
}

/// Decoded-tier A/B: the same throughput window with the decoded-block
/// cache on vs the forced always-decode fallback. The ratio is the
/// speedup the tier buys on this host; it lands in `BENCH_interp.json`
/// under `decoded_tier@<workload>` so the trajectory survives later
/// baseline raises.
fn bench_decoded_tier(_c: &mut Criterion) {
    let scale = protean_bench::Scale::from_env();
    // A/B windows at a fraction of the headline budget: two runs per
    // workload, and the ratio converges fast. Exactly one rep per mode:
    // best-of-N could pick different (phase-shifted) windows for the two
    // modes, which would break the retired-instruction identity check.
    let cycles = protean_bench::interp_cycles(scale) / 4;
    let reps = 1;
    println!("interp-decoded-tier ({cycles} simulated cycles per window, best of {reps})");
    for workload in ["milc", "libquantum", "bst"] {
        let on = protean_bench::interp_throughput_mode(workload, cycles, reps, false);
        let off = protean_bench::interp_throughput_mode(workload, cycles, reps, true);
        assert_eq!(
            on.insts, off.insts,
            "decoded tier changed simulated results for {workload}"
        );
        let speedup = on.m_instr_per_s / off.m_instr_per_s;
        println!(
            "  {workload:<12} decoded {:>7.1} vs fallback {:>7.1} M instr/s  ({speedup:.2}x)",
            on.m_instr_per_s, off.m_instr_per_s
        );
        if let Some(dir) = protean_bench::report::report_dir() {
            let entry = Json::obj([
                ("decoded_m_instr_per_s", Json::F64(on.m_instr_per_s)),
                ("fallback_m_instr_per_s", Json::F64(off.m_instr_per_s)),
                ("speedup", Json::F64(speedup)),
                ("insts", Json::U64(on.insts)),
            ]);
            report::update_json_map(
                &dir.join("BENCH_interp.json"),
                &format!("decoded_tier@{workload}"),
                &entry,
            )
            .expect("write BENCH_interp.json");
        }
    }
}

fn bench_runtime_compiler(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("sphinx3", llc).expect("workload");
    let out = Compiler::new(Options::protean())
        .compile(&m)
        .expect("compile");
    let meta = out.meta.expect("meta");
    let fid = m.function_by_name("hot0").expect("hot0");
    let sites: Vec<_> = pir::load_sites(&m)
        .iter()
        .filter(|s| s.site.func == fid)
        .map(|s| s.site)
        .collect();
    let nt = NtAssignment::all(sites);
    c.bench_function("compile_function_variant", |b| {
        b.iter(|| std::hint::black_box(compile_function_variant(&m, fid, &nt, &meta.link, 1 << 20)))
    });
    c.bench_function("whole_module_compile_sphinx3", |b| {
        b.iter_batched(
            || m.clone(),
            |m| std::hint::black_box(Compiler::new(Options::protean()).compile(&m).unwrap()),
            BatchSize::LargeInput,
        )
    });
}

fn bench_evt_patch(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("libquantum", llc).expect("workload");
    let img = Compiler::new(Options::protean())
        .compile(&m)
        .expect("compile")
        .image;
    let mut os = Os::new(OsConfig::default());
    let pid = os.spawn(&img, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).expect("attach");
    let func = rt.virtualized_funcs()[0];
    let v = rt
        .compile_variant(&mut os, func, &NtAssignment::none())
        .expect("variant");
    rt.dispatch(&mut os, v)
        .expect("variant passes the safety gate");
    c.bench_function("evt_dispatch", |b| {
        b.iter(|| rt.dispatch(&mut os, v).unwrap());
    });
}

fn bench_analysis(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("soplex", llc).expect("workload");
    let insts: usize = m.functions().iter().map(|f| f.inst_count()).sum();
    let mut group = c.benchmark_group("analysis");
    group.throughput(Throughput::Elements(insts as u64));
    group.bench_function("verify_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::verify::verify_module(&m).is_ok()))
    });
    group.bench_function("lint_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::lint::lint_module(&m).error_count()))
    });
    group.finish();
    let hot = m
        .functions()
        .iter()
        .max_by_key(|f| f.inst_count())
        .expect("nonempty");
    let cfg = pir::dataflow::Cfg::new(hot);
    let mut group = c.benchmark_group("dataflow");
    group.throughput(Throughput::Elements(hot.inst_count() as u64));
    group.bench_function("liveness_hot_fn", |b| {
        let liveness = pir::dataflow::Liveness::new(hot);
        b.iter(|| std::hint::black_box(liveness.solve(&cfg).ins.len()))
    });
    group.bench_function("reaching_defs_hot_fn", |b| {
        let rd = pir::dataflow::ReachingDefs::new(hot);
        b.iter(|| std::hint::black_box(rd.solve(&cfg).ins.len()))
    });
    group.bench_function("dominators_hot_fn", |b| {
        b.iter(|| std::hint::black_box(pir::dataflow::Dominators::compute(&cfg)))
    });
    group.finish();
}

fn bench_absint(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("soplex", llc).expect("workload");
    let insts: u64 = m.functions().iter().map(|f| f.inst_count() as u64).sum();
    let mut group = c.benchmark_group("absint");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("analyze_soplex", |b| {
        b.iter(|| {
            for f in m.functions() {
                std::hint::black_box(pir::absint::analyze_function(f).reg_table_size());
            }
        })
    });
    group.bench_function("certify_osr_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::absint::certify_module(&m).len()))
    });
    group.bench_function("analyze_cached_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::absint::analyze_function_cached(&m, pir::FuncId(0))))
    });
    group.finish();
    // Headline analysis throughput plus certified OSR-point counts for the
    // CI trend file.
    if let Some(dir) = report::report_dir() {
        for workload in ["soplex", "sphinx3", "web-search"] {
            let m = workloads::catalog::build(workload, llc).expect("workload");
            let insts: u64 = m.functions().iter().map(|f| f.inst_count() as u64).sum();
            let reps = 16u32;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                for f in m.functions() {
                    std::hint::black_box(pir::absint::analyze_function(f).reg_table_size());
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let certified = pir::absint::certify_module(&m)
                .iter()
                .filter(|d| d.certificate().is_some())
                .count() as u64;
            let m_insts_per_s = (insts * u64::from(reps)) as f64 / wall / 1e6;
            let entry = Json::obj([
                ("m_insts_per_s", Json::F64(m_insts_per_s)),
                ("insts", Json::U64(insts)),
                ("certified_osr_points", Json::U64(certified)),
                ("wall_secs", Json::F64(wall)),
            ]);
            report::update_json_map(&dir.join("BENCH_absint.json"), workload, &entry)
                .expect("write BENCH_absint.json");
        }
    }
}

fn bench_equiv(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("soplex", llc).expect("workload");
    let insts: u64 = m.functions().iter().map(|f| f.inst_count() as u64).sum();
    let mut optimized = m.clone();
    pcc::optimize_module(&mut optimized);
    // A miscompiled module: one constant nudged, which the checker must
    // chase down to a concrete counterexample (the slow path: symbolic
    // mismatch plus interpreter confirmation).
    let mut corrupt = m.clone();
    'outer: for func in corrupt.functions_mut() {
        for block in func.blocks_mut() {
            for inst in &mut block.insts {
                if let pir::Inst::Const { value, .. } = inst {
                    *value = value.wrapping_add(1);
                    break 'outer;
                }
            }
        }
    }
    let opts = pir::equiv::EquivOptions::default();
    let mut group = c.benchmark_group("equiv");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("prove_identity_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::equiv::check_module(&m, &m, &opts).all_proved()))
    });
    group.bench_function("prove_optimized_soplex", |b| {
        b.iter(|| {
            std::hint::black_box(pir::equiv::check_module(&m, &optimized, &opts).all_proved())
        })
    });
    group.bench_function("refute_corrupted_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::equiv::check_module(&m, &corrupt, &opts).all_proved()))
    });
    group.finish();
}

fn bench_osr_transfer(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("soplex", llc).expect("workload");
    let certs: Vec<pir::absint::OsrCertificate> = pir::absint::certify_module(&m)
        .into_iter()
        .filter_map(|d| d.certificate().cloned())
        .collect();
    // The gate's shape-changed path: transfer into the all-NT variant.
    let mut nt = m.clone();
    for func in nt.functions_mut() {
        for block in func.blocks_mut() {
            for inst in &mut block.insts {
                if let pir::Inst::Load { locality, .. } = inst {
                    *locality = pir::Locality::NonTemporal;
                }
            }
        }
    }
    let opts = pir::equiv::EquivOptions::default();
    let mut group = c.benchmark_group("osr_transfer");
    group.throughput(Throughput::Elements(certs.len() as u64));
    group.bench_function("prove_self_soplex", |b| {
        b.iter(|| {
            let proved = certs
                .iter()
                .filter(|cert| {
                    pir::prove_osr_transfer(&m, &m, cert.func, cert, &opts)
                        .recipe()
                        .is_some()
                })
                .count();
            std::hint::black_box(proved)
        })
    });
    group.bench_function("prove_nt_variant_soplex", |b| {
        b.iter(|| {
            let proved = certs
                .iter()
                .filter(|cert| {
                    pir::prove_osr_transfer(&m, &nt, cert.func, cert, &opts)
                        .recipe()
                        .is_some()
                })
                .count();
            std::hint::black_box(proved)
        })
    });
    group.finish();
    // Per-workload transfer provability and proof throughput for the CI
    // trend file: how many certified headers the runtime could actually
    // switch mid-loop, and what a full re-proof sweep costs.
    if let Some(dir) = report::report_dir() {
        for workload in ["soplex", "sphinx3", "web-search"] {
            let m = workloads::catalog::build(workload, llc).expect("workload");
            let certs: Vec<pir::absint::OsrCertificate> = pir::absint::certify_module(&m)
                .into_iter()
                .filter_map(|d| d.certificate().cloned())
                .collect();
            let t0 = std::time::Instant::now();
            let proved = certs
                .iter()
                .filter(|cert| {
                    pir::prove_osr_transfer(&m, &m, cert.func, cert, &opts)
                        .recipe()
                        .is_some()
                })
                .count() as u64;
            let wall = t0.elapsed().as_secs_f64();
            let entry = Json::obj([
                ("certified_headers", Json::U64(certs.len() as u64)),
                ("proved_transfers", Json::U64(proved)),
                (
                    "proofs_per_s",
                    Json::F64(certs.len() as f64 / wall.max(1e-9)),
                ),
                ("wall_secs", Json::F64(wall)),
            ]);
            report::update_json_map(&dir.join("BENCH_osr.json"), workload, &entry)
                .expect("write BENCH_osr.json");
        }
    }
}

/// The live OSR engine on the single-long-loop workload, measured in
/// simulated cycles: park-to-resume transfer latency, and first-exec lag
/// (dispatch decision to first variant instruction) for a mid-loop OSR
/// switch vs the call-edge-only baseline that must wait out the rest of
/// the call. Written to `BENCH_osr.json` under `long-loop-runtime`.
fn bench_osr_runtime(_c: &mut Criterion) {
    let scale = protean_bench::Scale::from_env();
    let iters_per_call: i64 = if scale == protean_bench::Scale::Quick {
        20_000
    } else {
        40_000
    };
    let rig = || {
        let cfg = OsConfig::small();
        let llc = cfg.machine.llc_bytes() / cfg.machine.line_bytes;
        let m = workloads::build_long_loop_spec(
            &workloads::LongLoopSpec {
                iters_per_call,
                ..workloads::LongLoopSpec::default()
            },
            llc,
        );
        let out = Compiler::new(Options::protean())
            .compile(&m)
            .expect("compile");
        let mut os = Os::new(cfg);
        let pid = os.spawn(&out.image, 0);
        let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).expect("attach");
        let spin = rt.module().function_by_name("spin").unwrap();
        let nt: NtAssignment = pir::load_sites(rt.module())
            .iter()
            .map(|s| s.site)
            .filter(|s| s.func == spin)
            .collect();
        let idx = rt.compile_variant(&mut os, spin, &nt).expect("variant");
        os.advance(100_000);
        (os, pid, rt, spin, idx)
    };
    let first_exec_lag = |os: &mut Os, pid, rt: &mut Runtime| -> u64 {
        for _ in 0..200_000 {
            os.advance(1_000);
            let pc = os.proc(pid).ctx().pc();
            rt.note_pc_sample(os.now(), pc);
            if let Some(h) = rt.metrics().histogram("dispatch.first_exec_lag_cycles") {
                if h.count() >= 1 {
                    return h.max();
                }
            }
        }
        panic!("variant never observed executing");
    };

    // Live OSR: park at the certified header mid-call and transfer.
    let (mut os, pid, mut rt, spin, idx) = rig();
    let mut health = HealthMonitor::new(HealthConfig::default());
    let mut ctl = OsrController::new(OsrConfig::default());
    ctl.arm(&mut os, &mut rt, &mut health, spin, idx)
        .expect("arm");
    while rt.metrics().counter("osr.applied") == 0 {
        os.advance(1_000);
        if let Some(e) = ctl.tick(&mut os, &mut rt, &mut health) {
            panic!("OSR failed: {e}");
        }
    }
    let park_to_resume = rt
        .metrics()
        .histogram("osr.park_to_resume_cycles")
        .map_or(0, |h| h.max());
    let lag_osr = first_exec_lag(&mut os, pid, &mut rt);

    // Call-edge only: the EVT write lands immediately, the effect waits
    // for the current call to return.
    let (mut os, pid, mut rt, _spin, idx) = rig();
    rt.dispatch(&mut os, idx).expect("dispatch");
    let lag_call_edge = first_exec_lag(&mut os, pid, &mut rt);

    println!(
        "osr-runtime (long-loop, {iters_per_call} iters/call): park-to-resume \
         {park_to_resume} cycles; first-exec lag {lag_osr} (OSR) vs {lag_call_edge} (call-edge)"
    );
    assert!(
        lag_osr < lag_call_edge,
        "OSR must take effect before the loop exits"
    );
    if let Some(dir) = report::report_dir() {
        let entry = Json::obj([
            ("park_to_resume_cycles", Json::U64(park_to_resume)),
            ("first_exec_lag_osr_cycles", Json::U64(lag_osr)),
            ("first_exec_lag_call_edge_cycles", Json::U64(lag_call_edge)),
            (
                "lag_improvement",
                Json::F64(lag_call_edge as f64 / lag_osr.max(1) as f64),
            ),
        ]);
        report::update_json_map(&dir.join("BENCH_osr.json"), "long-loop-runtime", &entry)
            .expect("write BENCH_osr.json");
    }
}

fn bench_codec(c: &mut Criterion) {
    let llc = 98304;
    let m = workloads::catalog::build("soplex", llc).expect("workload");
    let bytes = pir::encode::encode_module(&m);
    let compressed = pir::compress::compress(&bytes);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::encode::encode_module(&m)))
    });
    group.bench_function("decode_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::encode::decode_module(&bytes).unwrap()))
    });
    group.bench_function("compress_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::compress::compress(&bytes)))
    });
    group.bench_function("decompress_soplex", |b| {
        b.iter(|| std::hint::black_box(pir::compress::decompress(&compressed).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_hierarchy,
    bench_interpreter,
    bench_interp_throughput,
    bench_decoded_tier,
    bench_runtime_compiler,
    bench_evt_patch,
    bench_analysis,
    bench_absint,
    bench_equiv,
    bench_osr_transfer,
    bench_osr_runtime,
    bench_codec
);
criterion_main!(benches);
