//! Figure 2: the set of non-temporal hint variants for a small two-load
//! code region (the paper shows the four x86 variants of a libquantum
//! region; we show the four VISA variants).

use pcc::{compile_function_variant, Compiler, NtAssignment, Options};
use pir::{FunctionBuilder, Locality, Module};

fn main() {
    // The paper's region: two dependent loads inside libquantum's hot
    // loop (m1 = load of the state vector pointer, m2 = indexed load).
    let mut m = Module::new("libquantum-region");
    let g = m.add_global("state", 1 << 16);
    let mut b = FunctionBuilder::new("toffoli_region", 0);
    let base = b.global_addr(g);
    b.counted_loop(0, 64, 1, |b, i| {
        let vec_ptr = b.load(base, 0, Locality::Normal); // m1
        let off = b.shl_imm(i, 4);
        let addr = b.add(vec_ptr, off);
        let _ = b.load(addr, 0, Locality::Normal); // m2
    });
    b.ret(None);
    let f = m.add_function(b.finish());
    let mut main_fn = FunctionBuilder::new("main", 0);
    main_fn.call_void(f, &[]);
    main_fn.ret(None);
    let e = m.add_function(main_fn.finish());
    m.set_entry(e);

    let out = Compiler::new(Options::protean())
        .compile(&m)
        .expect("compile");
    let meta = out.meta.expect("protean metadata");
    let sites: Vec<_> = pir::load_sites(&m).iter().map(|s| s.site).collect();
    assert_eq!(sites.len(), 2, "the region has exactly two loads");

    protean_bench::header("Figure 2 — variants of a two-load region (N = 2)");
    let cases = [
        ("<m1, m2> = <1, 1>", vec![sites[0], sites[1]]),
        ("<m1, m2> = <1, 0>", vec![sites[0]]),
        ("<m1, m2> = <0, 1>", vec![sites[1]]),
        ("<m1, m2> = <0, 0>", vec![]),
    ];
    for (label, hinted) in cases {
        let nt: NtAssignment = hinted.into_iter().collect();
        let ops = compile_function_variant(&m, f, &nt, &meta.link, 0);
        println!("\n({label})");
        print!("{}", visa::disasm::disasm_ops(&ops, 0));
    }
    println!(
        "\nNon-temporal hints appear as explicit `prefetchnta` instructions, as on x86;\n\
         variants change instruction counts but not branch counts (hence the BPS metric)."
    );
}
