//! Figure 4: dynamic compiler overhead when making no code modifications
//! (normalized to native execution) — protean code's edge virtualization
//! vs a DynamoRIO-style binary translator.

use machine::BtConfig;
use protean_bench::{compile_plain, compile_protean, experiment_os, Scale};
use simos::Os;
use workloads::catalog;

/// Instructions per second over a measured window, after warmup.
fn measure_ips(mut os: Os, pid: simos::Pid, warm: f64, secs: f64) -> f64 {
    os.advance_seconds(warm);
    let c0 = os.counters(pid).instructions;
    let t0 = os.now_seconds();
    os.advance_seconds(secs);
    (os.counters(pid).instructions - c0) as f64 / (os.now_seconds() - t0)
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(5.0);
    let warm = scale.secs(1.0);
    protean_bench::header(
        "Figure 4 — virtualization overhead with no code modification (slowdown vs native)",
    );
    println!("{:<14}{:>14}{:>14}", "benchmark", "protean", "DynamoRIO");

    let mut sum_p = 0.0;
    let mut sum_d = 0.0;
    let names = catalog::spec_overhead_names();
    for name in names {
        let cfg = experiment_os();
        let native = {
            let img = compile_plain(name, &cfg);
            let mut os = Os::new(cfg.clone());
            let pid = os.spawn(&img, 0);
            measure_ips(os, pid, warm, secs)
        };
        let protean = {
            let img = compile_protean(name, &cfg);
            let mut os = Os::new(cfg.clone());
            let pid = os.spawn(&img, 0);
            measure_ips(os, pid, warm, secs)
        };
        let dynamorio = {
            let img = compile_plain(name, &cfg);
            let mut os = Os::new(cfg.clone());
            let pid = os.spawn_with_bt(&img, 0, BtConfig::default());
            measure_ips(os, pid, warm, secs)
        };
        let sp = native / protean;
        let sd = native / dynamorio;
        sum_p += sp;
        sum_d += sd;
        println!("{name:<14}{sp:>13.3}x{sd:>13.3}x");
    }
    let n = names.len() as f64;
    println!("{:-<42}", "");
    println!("{:<14}{:>13.3}x{:>13.3}x", "Mean", sum_p / n, sum_d / n);
    println!(
        "\nPaper: protean code <1% average overhead; DynamoRIO ~18% average.\n\
         Protean overhead comes only from indirect (EVT) calls; the binary\n\
         translator pays block translation + dispatch on every branch."
    );
}
