//! Figure 6: recompilation stress on the SAME core as the host vs a
//! separate core, across code-generation intervals. Same-core
//! compilation steals host cycles and becomes visible at short intervals;
//! separate-core stays flat; both converge to negligible at long
//! intervals (the paper notes ~800ms).

use protean::{Runtime, RuntimeConfig, StressEngine};
use protean_bench::{compile_plain, compile_protean, experiment_os, Scale};
use simos::Os;
use workloads::catalog;

fn run_stressed(name: &str, interval_ms: f64, secs: f64, runtime_core: usize) -> f64 {
    let cfg = experiment_os();
    let img = compile_protean(name, &cfg);
    let cps = cfg.machine.cycles_per_second as f64;
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(runtime_core)).expect("attach");
    let interval_cycles = ((interval_ms / 1000.0 * cps) as u64).max(1);
    let mut engine = StressEngine::new(&rt, interval_cycles, 0xBEEF);
    os.advance_seconds(secs * 0.2);
    let c0 = os.counters(pid).instructions;
    let t0 = os.now_seconds();
    while os.now_seconds() - t0 < secs {
        os.advance_seconds(0.002);
        engine.step(&mut os, &mut rt);
    }
    (os.counters(pid).instructions - c0) as f64 / (os.now_seconds() - t0)
}

fn native_ips(name: &str, secs: f64) -> f64 {
    let cfg = experiment_os();
    let img = compile_plain(name, &cfg);
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    os.advance_seconds(secs * 0.2);
    let c0 = os.counters(pid).instructions;
    let t0 = os.now_seconds();
    os.advance_seconds(secs);
    (os.counters(pid).instructions - c0) as f64 / (os.now_seconds() - t0)
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(3.0);
    let intervals_ms = [5.0, 10.0, 50.0, 200.0, 800.0, 1000.0, 5000.0];
    let names = catalog::spec_overhead_names();
    protean_bench::header(
        "Figure 6 — recompilation stress: same core vs separate core (mean slowdown vs native)",
    );
    println!(
        "{:<16}{:>12}{:>14}",
        "interval (ms)", "same core", "separate core"
    );
    for interval in intervals_ms {
        let mut same = 0.0;
        let mut sep = 0.0;
        for name in names {
            let base = native_ips(name, secs);
            same += base / run_stressed(name, interval, secs, 0);
            sep += base / run_stressed(name, interval, secs, 1);
        }
        let n = names.len() as f64;
        println!("{interval:<16}{:>11.3}x{:>13.3}x", same / n, sep / n);
    }
    println!(
        "\nPaper: separate-core overhead is flat and negligible; same-core overhead\n\
         grows as the interval shrinks (compilation steals host cycles) and\n\
         becomes negligible again by ~800ms."
    );
}
