//! Figure 5: dynamic compilation stress tests — recompilation of random
//! functions at a range of intervals, with the runtime (including the
//! dynamic compiler) on a **separate core** from the host application.
//! Slowdown vs native should be negligible at every interval.

use protean::{Runtime, RuntimeConfig, StressEngine};
use protean_bench::{compile_plain, compile_protean, experiment_os, Scale};
use simos::Os;
use workloads::catalog;

/// Runs `name` with a stress engine recompiling at `interval_ms` (None =
/// edge virtualization only; the runtime is attached but idle), returning
/// instructions per second.
pub fn run_stressed(name: &str, interval_ms: Option<f64>, secs: f64, runtime_core: usize) -> f64 {
    let cfg = experiment_os();
    let img = compile_protean(name, &cfg);
    let cps = cfg.machine.cycles_per_second as f64;
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    let mut rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(runtime_core)).expect("attach");
    let mut engine = interval_ms.map(|ms| {
        let interval_cycles = (ms / 1000.0 * cps) as u64;
        StressEngine::new(&rt, interval_cycles.max(1), 0xC0FFEE)
    });
    // Warmup.
    os.advance_seconds(secs * 0.2);
    let c0 = os.counters(pid).instructions;
    let t0 = os.now_seconds();
    let step = 0.005;
    while os.now_seconds() - t0 < secs {
        os.advance_seconds(step);
        if let Some(e) = engine.as_mut() {
            e.step(&mut os, &mut rt);
        }
    }
    (os.counters(pid).instructions - c0) as f64 / (os.now_seconds() - t0)
}

/// Native (plain binary) IPS.
pub fn native_ips(name: &str, secs: f64) -> f64 {
    let cfg = experiment_os();
    let img = compile_plain(name, &cfg);
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    os.advance_seconds(secs * 0.2);
    let c0 = os.counters(pid).instructions;
    let t0 = os.now_seconds();
    os.advance_seconds(secs);
    (os.counters(pid).instructions - c0) as f64 / (os.now_seconds() - t0)
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(4.0);
    let intervals: [Option<f64>; 5] = [None, Some(5000.0), Some(500.0), Some(50.0), Some(5.0)];
    protean_bench::header(
        "Figure 5 — recompilation stress, runtime on a SEPARATE core (slowdown vs native)",
    );
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "benchmark", "edge-virt", "5000ms", "500ms", "50ms", "5ms"
    );
    let names = catalog::spec_overhead_names();
    let mut sums = [0.0f64; 5];
    for name in names {
        let base = native_ips(name, secs);
        print!("{name:<14}");
        for (i, interval) in intervals.iter().enumerate() {
            let ips = run_stressed(name, *interval, secs, 1);
            let slowdown = base / ips;
            sums[i] += slowdown;
            print!("{slowdown:>9.3}x");
        }
        println!();
    }
    let n = names.len() as f64;
    println!("{:-<64}", "");
    print!("{:<14}", "Mean");
    for s in sums {
        print!("{:>9.3}x", s / n);
    }
    println!();
    println!(
        "\nPaper: negligible overhead at every interval, even at 5ms where the\n\
         compiler is active almost continuously — compilation is asynchronous."
    );
}
