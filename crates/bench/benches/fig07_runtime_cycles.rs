//! Figure 7: average fraction of server cycles consumed by the PC3D
//! runtime while managing each batch application (paper: <1% in all
//! cases).

use pc3d::{Pc3d, Pc3dConfig};
use protean::{Runtime, RuntimeConfig};
use protean_bench::{bar, compile_plain, compile_protean, experiment_os, operating_qps, Scale};
use simos::{LoadSchedule, Os};
use workloads::catalog;

fn runtime_fraction(batch: &str, secs: f64) -> f64 {
    let cfg = experiment_os();
    let ext_img = compile_plain("web-search", &cfg);
    let host_img = compile_protean(batch, &cfg);
    let mut os = Os::new(cfg);
    let ext = os.spawn(&ext_img, 0);
    let host = os.spawn(&host_img, 1);
    os.set_load(ext, LoadSchedule::constant(operating_qps("web-search")));
    let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).expect("attach");
    let mut ctl = Pc3d::new(
        &mut os,
        rt,
        ext,
        Pc3dConfig {
            qos_target: 0.95,
            ..Default::default()
        },
    );
    ctl.run_for(&mut os, secs);
    os.runtime_consumed_total() as f64 / os.server_cycles() as f64
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(30.0);
    protean_bench::header("Figure 7 — % of server cycles consumed by the PC3D runtime");
    let mut worst: f64 = 0.0;
    for name in catalog::batch_names() {
        let frac = runtime_fraction(name, secs) * 100.0;
        worst = worst.max(frac);
        println!("{}", bar(name, frac, 10.0, 40));
    }
    println!("\n(values are percentages; paper: <1% in all cases; worst here {worst:.2}%)");
}
