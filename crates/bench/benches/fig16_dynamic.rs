//! Figure 16: dynamic behaviour of libquantum running with web-search
//! under a fluctuating load (high → low → high), PC3D vs ReQoS:
//! (a) offered load, (b) libquantum BPS, (c) web-search QoS,
//! (d) cycles used by the PC3D runtime.

use pc3d::{Pc3d, Pc3dConfig};
use protean::{Runtime, RuntimeConfig};
use protean_bench::{compile_plain, compile_protean, experiment_os, operating_qps, Scale};
use reqos::{ReqosConfig, ReqosController};
use simos::{LoadSchedule, Os};

const QOS_TARGET: f64 = 0.95;

struct Timeline {
    /// (t, qps, host_bps, ext_qos, runtime_frac)
    rows: Vec<(f64, f64, f64, f64, f64)>,
}

fn schedule(duration: f64, high: f64, low: f64) -> LoadSchedule {
    LoadSchedule::fig16_shape(duration, high, low)
}

fn run_pc3d(duration: f64, bucket: f64, high: f64, low: f64) -> Timeline {
    let cfg = experiment_os();
    let host_img = compile_protean("libquantum", &cfg);
    let ext_img = compile_plain("web-search", &cfg);
    let mut os = Os::new(cfg);
    let ext = os.spawn(&ext_img, 0);
    let host = os.spawn(&host_img, 1);
    let sched = schedule(duration, high, low);
    os.set_load(ext, sched.clone());
    let rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).expect("attach");
    let mut ctl = Pc3d::new(
        &mut os,
        rt,
        ext,
        Pc3dConfig {
            qos_target: QOS_TARGET,
            ..Default::default()
        },
    );
    ctl.run_for(&mut os, duration);
    // Bucket the controller's window records.
    let mut rows = Vec::new();
    let mut t = bucket;
    while t <= duration + 1e-9 {
        let in_bucket: Vec<_> = ctl
            .history()
            .iter()
            .filter(|r| r.t > t - bucket && r.t <= t)
            .collect();
        if !in_bucket.is_empty() {
            let n = in_bucket.len() as f64;
            rows.push((
                t,
                sched.qps_at(t - bucket / 2.0),
                in_bucket.iter().map(|r| r.host_bps).sum::<f64>() / n,
                in_bucket.iter().map(|r| r.qos).sum::<f64>() / n,
                in_bucket.iter().map(|r| r.runtime_frac).sum::<f64>() / n,
            ));
        }
        t += bucket;
    }
    Timeline { rows }
}

fn run_reqos(duration: f64, bucket: f64, high: f64, low: f64) -> Timeline {
    let cfg = experiment_os();
    let host_img = compile_protean("libquantum", &cfg);
    let ext_img = compile_plain("web-search", &cfg);
    let mut os = Os::new(cfg);
    let ext = os.spawn(&ext_img, 0);
    let host = os.spawn(&host_img, 1);
    let sched = schedule(duration, high, low);
    os.set_load(ext, sched.clone());
    let mut ctl = ReqosController::new(
        &mut os,
        host,
        ext,
        ReqosConfig {
            qos_target: QOS_TARGET,
            ..Default::default()
        },
    );
    ctl.run_for(&mut os, duration);
    let mut rows = Vec::new();
    let mut t = bucket;
    while t <= duration + 1e-9 {
        let in_bucket: Vec<_> = ctl
            .history()
            .iter()
            .filter(|r| r.t > t - bucket && r.t <= t)
            .collect();
        if !in_bucket.is_empty() {
            let n = in_bucket.len() as f64;
            rows.push((
                t,
                sched.qps_at(t - bucket / 2.0),
                in_bucket.iter().map(|r| r.host_bps).sum::<f64>() / n,
                in_bucket.iter().map(|r| r.qos).sum::<f64>() / n,
                0.0,
            ));
        }
        t += bucket;
    }
    Timeline { rows }
}

fn main() {
    let scale = Scale::from_env();
    let duration = scale.secs(450.0);
    let bucket = duration / 15.0;
    let high = operating_qps("web-search");
    let low = high * 0.12;
    protean_bench::header(&format!(
        "Figure 16 — libquantum with web-search under fluctuating load \
         (high {high:.0} qps, low {low:.0} qps, {duration:.0}s; QoS target 95%)"
    ));
    let pc3d = run_pc3d(duration, bucket, high, low);
    let reqos = run_reqos(duration, bucket, high, low);
    println!(
        "{:>7}{:>8} |{:>14}{:>14} |{:>11}{:>11} |{:>12}",
        "t (s)", "qps", "PC3D bps", "ReQoS bps", "PC3D QoS", "ReQoS QoS", "runtime %"
    );
    for (p, r) in pc3d.rows.iter().zip(&reqos.rows) {
        println!(
            "{:>7.0}{:>8.0} |{:>14.0}{:>14.0} |{:>10.1}%{:>10.1}% |{:>11.2}%",
            p.0,
            p.1,
            p.2,
            r.2,
            p.3 * 100.0,
            r.3 * 100.0,
            p.4 * 100.0
        );
    }
    let csv_rows: Vec<String> = pc3d
        .rows
        .iter()
        .zip(&reqos.rows)
        .map(|(p, r)| {
            format!(
                "{:.0},{:.0},{:.0},{:.0},{:.4},{:.4},{:.5}",
                p.0, p.1, p.2, r.2, p.3, r.3, p.4
            )
        })
        .collect();
    protean_bench::maybe_csv(
        "fig16_dynamic",
        "t_s,qps,pc3d_bps,reqos_bps,pc3d_qos,reqos_qos,runtime_frac",
        &csv_rows,
    );
    let third = pc3d.rows.len() / 3;
    let mean = |rows: &[(f64, f64, f64, f64, f64)], lo: usize, hi: usize| {
        let s: f64 = rows[lo..hi].iter().map(|r| r.2).sum();
        s / (hi - lo) as f64
    };
    println!(
        "\nHigh-load phases: PC3D libquantum bps {:.0} vs ReQoS {:.0} ({:.2}x).",
        mean(&pc3d.rows, 0, third),
        mean(&reqos.rows, 0, third),
        mean(&pc3d.rows, 0, third) / mean(&reqos.rows, 0, third).max(1.0)
    );
    println!(
        "Low-load phase: both systems let libquantum run nearly unthrottled\n\
         (PC3D reverts to the original variant on the co-phase change).\n\
         Paper: PC3D finds an improved variant by ~t=20s, reverts at t=300,\n\
         re-searches at t=600; runtime cycles spike briefly to ~2% during\n\
         searches and stay <1% otherwise."
    );
}
