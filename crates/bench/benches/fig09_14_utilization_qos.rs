//! Figures 9-11 (utilization) and 12-14 (QoS): each batch application
//! co-located with each CloudSuite webservice under PC3D, at QoS targets
//! of 90%, 95%, and 98%. Also prints Table II (the application roster).
//!
//! The full (webservice, batch, target) grid fans out across
//! `protean_bench::pool` workers (`PROTEAN_JOBS`); results merge in input
//! order, so the printed tables match a serial run exactly.

use protean_bench::{pool, report, run_pc3d_pair, Scale};
use workloads::catalog;

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(45.0);
    let targets = [0.90, 0.95, 0.98];
    let t0 = std::time::Instant::now();

    protean_bench::header("Table II — applications used in datacenter experiments");
    for w in catalog::CATALOG.iter().take(17) {
        println!("  {:<18}{:<14}{:?}", w.name, w.suite, w.kind);
    }

    let cells: Vec<(&str, &str, f64)> = catalog::ls_names()
        .into_iter()
        .flat_map(|ls| {
            catalog::batch_names()
                .into_iter()
                .flat_map(move |batch| targets.into_iter().map(move |t| (ls, batch, t)))
        })
        .collect();
    let results = pool::map(&cells, |_, &(ls, batch, target)| {
        run_pc3d_pair(batch, ls, target, secs)
    });

    let mut next = results.iter();
    for ls in catalog::ls_names() {
        protean_bench::header(&format!(
            "Figures 9-11 / 12-14 — batch apps running with {ls} under PC3D"
        ));
        println!(
            "{:<14}{:>12}{:>12}{:>12}   |{:>10}{:>10}{:>10}",
            "batch", "util@90%", "util@95%", "util@98%", "QoS@90%", "QoS@95%", "QoS@98%"
        );
        let mut sums = [0.0f64; 3];
        for batch in catalog::batch_names() {
            let mut utils = [0.0f64; 3];
            let mut qoses = [0.0f64; 3];
            for i in 0..targets.len() {
                let r = next.next().expect("one result per cell");
                utils[i] = r.utilization;
                qoses[i] = r.qos;
                sums[i] += r.utilization;
            }
            println!(
                "{batch:<14}{:>11.0}%{:>11.0}%{:>11.0}%   |{:>9.1}%{:>9.1}%{:>9.1}%",
                utils[0] * 100.0,
                utils[1] * 100.0,
                utils[2] * 100.0,
                qoses[0] * 100.0,
                qoses[1] * 100.0,
                qoses[2] * 100.0,
            );
        }
        let n = catalog::batch_names().len() as f64;
        println!("{:-<86}", "");
        println!(
            "{:<14}{:>11.0}%{:>11.0}%{:>11.0}%",
            "Mean util",
            100.0 * sums[0] / n,
            100.0 * sums[1] / n,
            100.0 * sums[2] / n
        );
    }
    println!(
        "\nPaper (means): web-search 81/67/49%, graph-analytics 82/75/67%,\n\
         media-streaming 60/40/22% at 90/95/98% targets; QoS targets are met\n\
         throughout (Figures 12-14). Expect the same ordering: utilization\n\
         falls as the QoS target tightens, and media-streaming is the most\n\
         contention-sensitive service."
    );
    report::record_harness(
        "fig09_14_utilization_qos",
        t0.elapsed().as_millis() as u64,
        pool::jobs(),
        scale.name(),
    );
}
