//! Figures 17-18 (and Table III): datacenter-scale impact. Server counts
//! required to run each (webservice, batch-mix) pairing with PC3D
//! co-location vs no co-location at equal throughput, and the resulting
//! energy-efficiency ratio under a linear power model.
//!
//! Every (webservice, mix, batch) cell is an independent simulation, so
//! the grid fans out across `protean_bench::pool` workers
//! (`PROTEAN_JOBS`); results are merged in input order, making the
//! printed tables identical to a serial run.

use datacenter::{analyze, PairMeasurement, PowerModel, LS_APPS, MIXES};
use protean_bench::{pool, report, run_pc3d_pair, Scale};

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(40.0);
    let machines = 10_000.0;
    let cores = 4;
    let t0 = std::time::Instant::now();

    protean_bench::header("Table III — workload mixes for scale-out analysis");
    println!("  LS   {:?}", LS_APPS);
    for m in MIXES {
        println!("  {}  {:?}", m.name, m.batch_apps);
    }

    // Flatten the (ls, mix, batch) grid into one work list so the pool
    // keeps every worker busy across mix boundaries.
    let cells: Vec<(&str, &str)> = LS_APPS
        .iter()
        .flat_map(|&ls| {
            MIXES
                .iter()
                .flat_map(move |mix| mix.batch_apps.iter().map(move |&batch| (ls, batch)))
        })
        .collect();
    let measured = pool::map(&cells, |_, &(ls, batch)| {
        let r = run_pc3d_pair(batch, ls, 0.95, secs);
        PairMeasurement {
            batch_utilization: r.utilization.min(1.0),
            ls_core_util: r.ext_core_util.min(1.0),
            batch_core_util: r.batch_core_util.min(1.0),
        }
    });

    protean_bench::header(
        "Figures 17-18 — servers required and energy efficiency (10k machines, 95% QoS)",
    );
    println!(
        "{:<32}{:>12}{:>14}{:>14}",
        "mix", "PC3D srv", "no-colo srv", "energy eff."
    );
    let mut next = measured.iter();
    for ls in LS_APPS {
        for mix in MIXES {
            let pairs: Vec<PairMeasurement> = mix
                .batch_apps
                .iter()
                .map(|_| *next.next().expect("one measurement per cell"))
                .collect();
            let result = analyze(machines, cores, &pairs, PowerModel::default());
            println!(
                "{:<32}{:>12.0}{:>14.0}{:>13.2}x",
                format!("{}/{}", ls, mix.name),
                result.servers_pc3d,
                result.servers_no_colo,
                result.efficiency_ratio
            );
        }
    }
    println!(
        "\nPaper: 3.5k-8k extra servers needed without co-location; PC3D improves\n\
         datacenter energy efficiency by 18-34% across the mixes."
    );
    report::record_harness(
        "fig17_18_scaleout",
        t0.elapsed().as_millis() as u64,
        pool::jobs(),
        scale.name(),
    );
}
