//! Figures 17-18 (and Table III): datacenter-scale impact, re-derived
//! from discrete-event simulation. Two warehouses are simulated end to
//! end — the co-located fleet (every server hosting its LS service plus
//! a pinned batch stream under PC3D) and the segregated fleet (LS alone,
//! with the consolidating balancer parking idle servers through the
//! diurnal trough) — and the figures fall out of the event streams:
//! Fig. 17 from the batch-only servers the segregated fleet would need
//! to match the co-located fleet's simulated batch throughput, Fig. 18
//! from energies integrated over simulated per-server busy fractions.
//!
//! Per-server cycle boxes fan out across `protean_bench::pool` workers
//! (`PROTEAN_JOBS`) at epoch barriers; all cluster-level decisions stay
//! serial, so the printed tables are bit-identical to a serial run.

use datacenter::{fig17_18, LS_APPS, MIXES};
use protean_bench::dc::{fig17_18_json, pool_exec, scaleout_scenario};
use protean_bench::{pool, report, Scale};

fn main() {
    let scale = Scale::from_env();
    let scenario = scaleout_scenario(scale);
    let t0 = std::time::Instant::now();

    protean_bench::header("Table III — workload mixes for scale-out analysis");
    println!("  LS   {:?}", LS_APPS);
    for m in MIXES {
        println!("  {}  {:?}", m.name, m.batch_apps);
    }
    println!(
        "\n  simulating 2 fleets x {} servers for {:.0}s (seed {})",
        scenario.servers_per_group * LS_APPS.len() * MIXES.len(),
        scenario.duration_secs,
        scenario.seed
    );

    let fig = fig17_18(&scenario, &pool_exec());

    protean_bench::header(
        "Figures 17-18 — servers required and energy efficiency (simulated fleets)",
    );
    println!(
        "{:<32}{:>10}{:>12}{:>12}{:>14}",
        "mix", "PC3D srv", "no-colo srv", "extra/10k", "energy eff."
    );
    for row in &fig.rows {
        println!(
            "{:<32}{:>10.0}{:>12.1}{:>12.0}{:>13.2}x",
            row.name,
            row.result.servers_pc3d,
            row.result.servers_no_colo,
            row.extra_servers_10k,
            row.result.efficiency_ratio
        );
    }
    println!(
        "{:<32}{:>10.0}{:>12.1}{:>12}{:>13.2}x",
        "TOTAL",
        fig.totals.servers_pc3d,
        fig.totals.servers_no_colo,
        "",
        fig.totals.efficiency_ratio
    );
    println!(
        "\n  co-located fleet : {} events, {} queries, {} branches",
        fig.colo.events,
        fig.colo.queries,
        fig.rows.iter().map(|r| r.batch_branches).sum::<u64>()
    );
    println!(
        "  segregated fleet : {} events, {} queries, {} park transitions",
        fig.ls_only.events,
        fig.ls_only.queries,
        fig.ls_only.groups.iter().map(|g| g.parks).sum::<u64>()
    );
    println!(
        "\nPaper: 3.5k-8k extra servers needed without co-location; PC3D improves\n\
         datacenter energy efficiency by 18-34% across the mixes."
    );

    if let Some(dir) = report::report_dir() {
        report::update_json_map(
            &dir.join("BENCH_fig17_18_scaleout.json"),
            "fig17_18",
            &fig17_18_json(&fig),
        )
        .expect("write BENCH_fig17_18_scaleout.json");
    }
    report::record_harness(
        "fig17_18_scaleout",
        t0.elapsed().as_millis() as u64,
        pool::jobs(),
        scale.name(),
    );
}
