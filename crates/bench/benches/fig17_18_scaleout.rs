//! Figures 17-18 (and Table III): datacenter-scale impact. Server counts
//! required to run each (webservice, batch-mix) pairing with PC3D
//! co-location vs no co-location at equal throughput, and the resulting
//! energy-efficiency ratio under a linear power model.

use datacenter::{analyze, PairMeasurement, PowerModel, LS_APPS, MIXES};
use protean_bench::{run_pc3d_pair, Scale};

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(40.0);
    let machines = 10_000.0;
    let cores = 4;

    protean_bench::header("Table III — workload mixes for scale-out analysis");
    println!("  LS   {:?}", LS_APPS);
    for m in MIXES {
        println!("  {}  {:?}", m.name, m.batch_apps);
    }

    protean_bench::header(
        "Figures 17-18 — servers required and energy efficiency (10k machines, 95% QoS)",
    );
    println!(
        "{:<32}{:>12}{:>14}{:>14}",
        "mix", "PC3D srv", "no-colo srv", "energy eff."
    );
    for ls in LS_APPS {
        for mix in MIXES {
            let pairs: Vec<PairMeasurement> = mix
                .batch_apps
                .iter()
                .map(|batch| {
                    let r = run_pc3d_pair(batch, ls, 0.95, secs);
                    PairMeasurement {
                        batch_utilization: r.utilization.min(1.0),
                        ls_core_util: r.ext_core_util.min(1.0),
                        batch_core_util: r.batch_core_util.min(1.0),
                    }
                })
                .collect();
            let result = analyze(machines, cores, &pairs, PowerModel::default());
            println!(
                "{:<32}{:>12.0}{:>14.0}{:>13.2}x",
                format!("{}/{}", ls, mix.name),
                result.servers_pc3d,
                result.servers_no_colo,
                result.efficiency_ratio
            );
        }
    }
    println!(
        "\nPaper: 3.5k-8k extra servers needed without co-location; PC3D improves\n\
         datacenter energy efficiency by 18-34% across the mixes."
    );
}
