//! Table I: comparison between protean code and prior dynamic
//! compilation infrastructures.

fn main() {
    protean_bench::header("Table I — dynamic compilation infrastructure comparison");
    print!("{}", protean::systems::render_table());
    println!();
    println!("(x = capability present; see protean::systems for the encoded claims)");
}
