//! Figure 15: PC3D vs ReQoS — utilization improvement ratio and average
//! co-runner QoS for each batch application, averaged across the external
//! co-runner spectrum, at QoS targets of 90/95/98%.

use protean_bench::{run_pc3d_pair, run_reqos_pair, Scale};
use workloads::catalog;

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(40.0);
    let targets = [0.90, 0.95, 0.98];
    // The external co-runner spectrum (Table II right column). Use a
    // subset at quick scale.
    let externals: Vec<&str> = match scale {
        Scale::Quick => vec!["web-search", "mcf", "bst"],
        _ => catalog::external_names().to_vec(),
    };

    for (ti, target) in targets.iter().enumerate() {
        protean_bench::header(&format!(
            "Figure 15({}/{}) — PC3D vs ReQoS at {:.0}% QoS target (avg over {} co-runners)",
            ["a", "b", "c"][ti],
            ["d", "e", "f"][ti],
            target * 100.0,
            externals.len()
        ));
        println!(
            "{:<14}{:>12}{:>12}{:>12} |{:>12}{:>12}",
            "batch", "PC3D util", "ReQoS util", "improve", "PC3D QoS", "ReQoS QoS"
        );
        let mut ratio_sum = 0.0;
        let mut best_ratio: (f64, &str) = (0.0, "");
        for batch in catalog::batch_names() {
            let mut pu = 0.0;
            let mut ru = 0.0;
            let mut pq = 0.0;
            let mut rq = 0.0;
            for ext in &externals {
                let p = run_pc3d_pair(batch, ext, *target, secs);
                let r = run_reqos_pair(batch, ext, *target, secs);
                pu += p.utilization;
                ru += r.utilization;
                pq += p.qos;
                rq += r.qos;
            }
            let n = externals.len() as f64;
            pu /= n;
            ru /= n;
            pq /= n;
            rq /= n;
            let ratio = if ru > 1e-9 { pu / ru } else { f64::INFINITY };
            ratio_sum += ratio;
            if ratio > best_ratio.0 {
                best_ratio = (ratio, batch);
            }
            println!(
                "{batch:<14}{:>11.0}%{:>11.0}%{:>11.2}x |{:>11.1}%{:>11.1}%",
                pu * 100.0,
                ru * 100.0,
                ratio,
                pq * 100.0,
                rq * 100.0
            );
        }
        let n = catalog::batch_names().len() as f64;
        println!("{:-<78}", "");
        println!(
            "{:<14}{:>36.2}x   (best: {} at {:.2}x)",
            "Mean improvement",
            ratio_sum / n,
            best_ratio.1,
            best_ratio.0
        );
    }
    println!(
        "\nPaper: PC3D improves utilization over ReQoS by 1.25x / 1.45x / 1.52x on\n\
         average at 90/95/98% targets (peaks 2.31x / 2.57x / 2.84x), with both\n\
         systems meeting the QoS target. Expect the same shape: the advantage\n\
         grows as the QoS target tightens, and is largest for streaming hosts."
    );
}
