//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Edge-selection policy** — overhead and redirectable-function count
//!    for `Never` / `MultiBlockCallees` (paper default) / `AllCalls`.
//! 2. **Non-temporal fill policy** — LLC `Bypass` vs `LruInsert`: effect
//!    on a co-runner and on the host itself.
//! 3. **Search heuristics** — candidate-set sizes and projected search
//!    durations with each prune toggled.
//! 4. **Nap evaluation** — Algorithm 2's bisection vs a linear sweep:
//!    evaluation windows required.
//! 5. **Hardware prefetching** — does a next-line prefetcher change the
//!    effectiveness of software non-temporal hints?
//!
//! Independent configurations within each study fan out across
//! `protean_bench::pool` workers (`PROTEAN_JOBS`); rows are printed from
//! the merged results in input order, identical to a serial run.

use machine::{MachineConfig, NtPolicy};
use pc3d::{select_candidates_with, NapBisection};
use pcc::{Compiler, EdgePolicy, NtAssignment, Options};
use protean::{ExtMonitor, HostMonitor, Runtime, RuntimeConfig};
use protean_bench::{experiment_os, llc_lines, pool, report, Scale};
use simos::{Os, OsConfig};
use workloads::catalog;

fn ips_of(image: &visa::Image, secs: f64, cfg: &OsConfig) -> f64 {
    let mut os = Os::new(cfg.clone());
    let pid = os.spawn(image, 0);
    os.advance_seconds(secs * 0.2);
    let c0 = os.counters(pid).instructions;
    let t0 = os.now_seconds();
    os.advance_seconds(secs);
    (os.counters(pid).instructions - c0) as f64 / (os.now_seconds() - t0)
}

/// A call-heavy synthetic app: a hot loop calling a tiny single-block
/// leaf every iteration plus a multi-block worker occasionally — the
/// pattern where the paper's policy pays off.
fn leafy_app() -> pir::Module {
    use pir::{FunctionBuilder, Locality, Module};
    let mut m = Module::new("leafy");
    let g = m.add_global("buf", 1 << 16);
    let mut leaf = FunctionBuilder::new("leaf", 1);
    let p = leaf.param(0);
    let r = leaf.mul_imm(p, 3);
    leaf.ret(Some(r));
    let leaf_id = m.add_function(leaf.finish());
    let mut worker = FunctionBuilder::new("worker", 0);
    let base = worker.global_addr(g);
    worker.counted_loop(0, 64, 1, |b, i| {
        let off = b.shl_imm(i, 3);
        let a = b.add(base, off);
        let _ = b.load(a, 0, Locality::Normal);
    });
    worker.ret(None);
    let worker_id = m.add_function(worker.finish());
    let mut main_fn = FunctionBuilder::new("main", 0);
    let k = main_fn.const_(0);
    let header = main_fn.new_block();
    main_fn.br(header);
    main_fn.switch_to(header);
    // Tight loop: leaf call every iteration; worker every 64th.
    let _ = main_fn.call(leaf_id, &[k]);
    let sel = main_fn.rem_imm(k, 64);
    let skip = main_fn.new_block();
    let work = main_fn.new_block();
    main_fn.cond_br(sel, skip, work);
    main_fn.switch_to(work);
    main_fn.call_void(worker_id, &[]);
    main_fn.br(skip);
    main_fn.switch_to(skip);
    main_fn.bin_imm_into(pir::BinOp::Add, k, k, 1);
    main_fn.br(header);
    let main_id = m.add_function(main_fn.finish());
    m.set_entry(main_id);
    m
}

fn ablate_edge_policy(secs: f64) {
    protean_bench::header(
        "Ablation 1 — edge-selection policy on a call-heavy app (leaf call per iteration)",
    );
    println!("{:<22}{:>12}{:>16}", "policy", "EVT slots", "slowdown");
    let cfg = experiment_os();
    let m = leafy_app();
    let plain = Compiler::new(Options::plain()).compile(&m).unwrap().image;
    let base_ips = ips_of(&plain, secs, &cfg);
    let policies = [
        ("Never", EdgePolicy::Never),
        ("MultiBlockCallees", EdgePolicy::MultiBlockCallees),
        ("AllCalls", EdgePolicy::AllCalls),
    ];
    let rows = pool::map(&policies, |_, &(name, policy)| {
        let opts = Options {
            protean: true,
            edge_policy: policy,
            embed_ir: true,
            optimize: false,
            ..Options::protean()
        };
        let protean = Compiler::new(opts).compile(&m).unwrap().image;
        let slowdown = base_ips / ips_of(&protean, secs, &cfg);
        (name, protean.evt.len(), slowdown)
    });
    for (name, slots, slowdown) in rows {
        println!("{name:<22}{slots:>12}{slowdown:>15.4}x");
    }
    println!(
        "AllCalls virtualizes the per-iteration leaf call and pays for it on\n\
         every iteration; the paper's MultiBlockCallees policy hooks only the\n\
         worker (the code PC3D would ever want to transform) at near-zero cost."
    );
}

fn ablate_nt_policy(secs: f64) {
    protean_bench::header("Ablation 2 — non-temporal LLC policy: Bypass vs LruInsert");
    println!(
        "{:<12}{:>22}{:>22}",
        "policy", "co-runner QoS (hints)", "host slowdown (hints)"
    );
    let policies = [
        ("Bypass", NtPolicy::Bypass),
        ("LruInsert", NtPolicy::LruInsert),
    ];
    let rows = pool::map(&policies, |_, &(label, policy)| {
        let mut machine = MachineConfig::scaled();
        machine.nt_policy = policy;
        let cfg = OsConfig {
            machine,
            ..OsConfig::default()
        };
        let lines = llc_lines(&cfg);
        let host_m = catalog::build("libquantum", lines).unwrap();
        let ext_m = catalog::build("er-naive", lines).unwrap();
        let host_img = Compiler::new(Options::protean())
            .compile(&host_m)
            .unwrap()
            .image;
        let ext_img = Compiler::new(Options::plain())
            .compile(&ext_m)
            .unwrap()
            .image;

        // Solo baselines under this machine policy.
        let ext_solo = ips_of(&ext_img, secs, &cfg);
        let host_solo_bps = {
            let mut os = Os::new(cfg.clone());
            let pid = os.spawn(&host_img, 0);
            os.advance_seconds(secs * 0.2);
            let mut mon = ExtMonitor::new(&os, pid);
            os.advance_seconds(secs);
            mon.end_window(&os).bps
        };

        // Co-run with the all-hints variant dispatched.
        let mut os = Os::new(cfg.clone());
        let ext = os.spawn(&ext_img, 0);
        let host = os.spawn(&host_img, 1);
        let mut rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).unwrap();
        let nt = NtAssignment::all(
            pir::load_sites(rt.module())
                .iter()
                .filter(|s| s.at_max_depth())
                .map(|s| s.site),
        );
        for func in rt.virtualized_funcs() {
            let sub: NtAssignment = nt.sites_in(func).into_iter().collect();
            if !sub.is_empty() {
                let _ = rt.transform(&mut os, func, &sub);
            }
        }
        os.advance_seconds(secs * 0.3);
        let mut ext_mon = ExtMonitor::new(&os, ext);
        let mut host_mon = ExtMonitor::new(&os, host);
        os.advance_seconds(secs);
        let qos = ext_mon.end_window(&os).ips / ext_solo;
        let host_ratio = host_mon.end_window(&os).bps / host_solo_bps;
        (label, qos, host_ratio)
    });
    for (label, qos, host_ratio) in rows {
        println!(
            "{label:<12}{:>21.1}%{:>21.2}x",
            qos * 100.0,
            1.0 / host_ratio.max(1e-9)
        );
    }
    println!(
        "Bypass protects the co-runner completely; LruInsert leaves a one-way\n\
         footprint per set (weaker protection, marginally cheaper for the host)."
    );
}

fn ablate_heuristics() {
    protean_bench::header(
        "Ablation 3 — search heuristics (candidates and projected search length)",
    );
    println!(
        "{:<26}{:>12}{:>12}{:>14}",
        "configuration", "soplex*", "sphinx3*", "proj. evals"
    );
    let cfg = experiment_os();
    let mut counts = Vec::new();
    for (label, active, depth) in [
        ("no pruning", false, false),
        ("active regions only", true, false),
        ("max depth only", false, true),
        ("both (paper)", true, true),
    ] {
        let mut row = Vec::new();
        for app in ["soplex", "sphinx3"] {
            let m = catalog::build(app, llc_lines(&cfg)).unwrap();
            let img = Compiler::new(Options::protean()).compile(&m).unwrap().image;
            let mut os = Os::new(cfg.clone());
            let pid = os.spawn(&img, 0);
            let rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).unwrap();
            let mut mon = HostMonitor::new(&os, pid, 1.0);
            for _ in 0..6000 {
                os.advance(1013);
                mon.sample(&os, &rt);
            }
            let (sites, _) = select_candidates_with(&rt, &mon, usize::MAX, active, depth);
            row.push(sites.len());
        }
        // Algorithm 1 runs ~n+2 variant evaluations.
        let evals = row[0] + 2;
        println!("{label:<26}{:>12}{:>12}{:>14}", row[0], row[1], evals);
        counts.push(row[0]);
    }
    println!(
        "(*) counts are dispatchable candidate loads: loads in functions the\n\
    runtime can actually redirect (uncalled cold code can never be\n\
    dispatched, so Figure 8's full-program totals shrink further here).\n\
    Without pruning the search would need {}x more evaluations than with\n\
    the paper's heuristics.",
        (counts[0] + 2) / (counts[3] + 2).max(1)
    );
}

fn ablate_nap_search() {
    protean_bench::header("Ablation 4 — Algorithm 2's bisection vs a linear nap sweep");
    println!(
        "{:<26}{:>18}{:>20}",
        "method", "windows needed", "achieved error"
    );
    let tol = 0.05;
    // A synthetic monotone threshold (true minimum nap = 0.37).
    let threshold = 0.37;
    let mut bis = NapBisection::new(0.0, 1.0, tol);
    while !bis.done() {
        let nap = bis.probe();
        bis.observe(nap >= threshold);
    }
    println!(
        "{:<26}{:>18}{:>19.3}",
        "bisection (paper)",
        bis.probes(),
        (bis.result() - threshold).abs()
    );
    // Linear sweep at the same resolution.
    let mut windows = 0;
    let mut found = 1.0;
    let mut nap = 0.0;
    while nap <= 1.0 {
        windows += 1;
        if nap >= threshold {
            found = nap;
            break;
        }
        nap += tol;
    }
    println!(
        "{:<26}{:>18}{:>19.3}",
        "linear sweep",
        windows,
        found - threshold
    );
    // With cross-variant bounds (Algorithm 1 narrows [lb, ub]).
    let mut bounded = NapBisection::new(0.25, 0.55, tol);
    while !bounded.done() {
        let nap = bounded.probe();
        bounded.observe(nap >= threshold);
    }
    println!(
        "{:<26}{:>18}{:>19.3}",
        "bisection + Alg.1 bounds",
        bounded.probes(),
        (bounded.result() - threshold).abs()
    );
}

fn ablate_prefetcher(secs: f64) {
    protean_bench::header("Ablation 5 — software NT hints under a hardware next-line prefetcher");
    println!(
        "{:<14}{:>22}{:>22}",
        "prefetcher", "co-runner QoS (hints)", "co-runner QoS (none)"
    );
    let configs = [("off", false), ("on (deg 2)", true)];
    let rows = pool::map(&configs, |_, &(label, enabled)| {
        let mut machine_cfg = MachineConfig::scaled();
        machine_cfg.prefetcher = machine::PrefetcherConfig { enabled, degree: 2 };
        let cfg = OsConfig {
            machine: machine_cfg,
            ..OsConfig::default()
        };
        let lines = llc_lines(&cfg);
        let host_m = catalog::build("libquantum", lines).unwrap();
        let ext_m = catalog::build("er-naive", lines).unwrap();
        let host_img = Compiler::new(Options::protean())
            .compile(&host_m)
            .unwrap()
            .image;
        let ext_img = Compiler::new(Options::plain())
            .compile(&ext_m)
            .unwrap()
            .image;
        let ext_solo = ips_of(&ext_img, secs, &cfg);
        let mut qos = [0.0f64; 2];
        for (i, hints) in [true, false].into_iter().enumerate() {
            let mut os = Os::new(cfg.clone());
            let ext = os.spawn(&ext_img, 0);
            let host = os.spawn(&host_img, 1);
            if hints {
                let mut rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).unwrap();
                let nt = NtAssignment::all(
                    pir::load_sites(rt.module())
                        .iter()
                        .filter(|s| s.at_max_depth())
                        .map(|s| s.site),
                );
                for func in rt.virtualized_funcs() {
                    let sub: NtAssignment = nt.sites_in(func).into_iter().collect();
                    if !sub.is_empty() {
                        let _ = rt.transform(&mut os, func, &sub);
                    }
                }
            }
            os.advance_seconds(secs * 0.3);
            let mut ext_mon = ExtMonitor::new(&os, ext);
            os.advance_seconds(secs);
            qos[i] = ext_mon.end_window(&os).ips / ext_solo;
        }
        (label, qos)
    });
    for (label, qos) in rows {
        println!(
            "{label:<14}{:>21.1}%{:>21.1}%",
            qos[0] * 100.0,
            qos[1] * 100.0
        );
    }
    println!(
        "A next-line prefetcher adds its own LLC fills on the host's stream, but
         software NT hints suppress it at hinted sites, so the protection the
         hints provide survives."
    );
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(3.0);
    let t0 = std::time::Instant::now();
    ablate_edge_policy(secs);
    ablate_nt_policy(secs);
    ablate_heuristics();
    ablate_nap_search();
    ablate_prefetcher(secs);
    report::record_harness(
        "ablations",
        t0.elapsed().as_millis() as u64,
        pool::jobs(),
        scale.name(),
    );
}
