//! Figure 3: online empirical evaluation of two variants of libquantum
//! (host) running with er-naive (co-runner) — normalized performance of
//! both applications as a function of the nap intensity applied to the
//! host. Variant 0 (no hints) needs a much higher nap intensity to meet
//! a 95% co-runner QoS target than variant 1 (fully non-temporal).

use pcc::NtAssignment;
use protean::{ExtMonitor, Runtime, RuntimeConfig};
use protean_bench::{compile_plain, compile_protean, experiment_os, solo_batch_bps, Scale};
use simos::Os;

const QOS_TARGET: f64 = 0.95;

struct Sweep {
    rows: Vec<(f64, f64, f64)>, // (nap, host_norm, ext_norm)
    crossing: Option<f64>,
}

fn sweep(all_hints: bool, secs: f64) -> Sweep {
    let cfg = experiment_os();
    let host_img = compile_protean("libquantum", &cfg);
    let ext_img = compile_plain("er-naive", &cfg);

    // Solo baselines (deterministic replays).
    let host_solo_bps = solo_batch_bps("libquantum", secs);
    let ext_solo_ips = {
        let mut os = Os::new(cfg.clone());
        let pid = os.spawn(&ext_img, 0);
        os.advance_seconds(secs * 0.2);
        let mut mon = ExtMonitor::new(&os, pid);
        os.advance_seconds(secs);
        mon.end_window(&os).ips
    };

    let mut rows = Vec::new();
    let mut crossing = None;
    for nap_pct in (0..=100).step_by(10) {
        let mut os = Os::new(cfg.clone());
        let ext = os.spawn(&ext_img, 0);
        let host = os.spawn(&host_img, 1);
        let mut rt = Runtime::attach(&os, host, RuntimeConfig::on_core(2)).expect("attach");
        if all_hints {
            // Variant 1: every innermost load carries a hint.
            let sites: Vec<_> = pir::load_sites(rt.module())
                .iter()
                .filter(|s| s.at_max_depth())
                .map(|s| s.site)
                .collect();
            let nt = NtAssignment::all(sites);
            for func in rt.virtualized_funcs() {
                let sub: NtAssignment = nt.sites_in(func).into_iter().collect();
                if !sub.is_empty() {
                    let _ = rt.transform(&mut os, func, &sub);
                }
            }
        }
        os.set_nap(host, nap_pct as f64 / 100.0);
        os.advance_seconds(secs * 0.2);
        let mut host_mon = ExtMonitor::new(&os, host);
        let mut ext_mon = ExtMonitor::new(&os, ext);
        os.advance_seconds(secs);
        let host_norm = host_mon.end_window(&os).bps / host_solo_bps;
        let ext_norm = ext_mon.end_window(&os).ips / ext_solo_ips;
        if crossing.is_none() && ext_norm >= QOS_TARGET {
            crossing = Some(nap_pct as f64);
        }
        rows.push((nap_pct as f64, host_norm, ext_norm));
    }
    Sweep { rows, crossing }
}

fn print_sweep(title: &str, s: &Sweep) {
    println!("\n{title}");
    println!(
        "{:>6}{:>22}{:>22}{:>10}",
        "nap %", "libquantum BPS (norm)", "er-naive IPS (norm)", "QoS met?"
    );
    for (nap, host, ext) in &s.rows {
        println!(
            "{nap:>6.0}{:>21.1}%{:>21.1}%{:>10}",
            host * 100.0,
            ext * 100.0,
            if *ext >= QOS_TARGET { "yes" } else { "" }
        );
    }
    match s.crossing {
        Some(c) => println!("co-runner QoS target (95%) first met at nap intensity ~{c:.0}%"),
        None => println!("co-runner QoS target (95%) never met in this sweep"),
    }
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.secs(3.0);
    protean_bench::header(
        "Figure 3 — nap-intensity sweep for two libquantum variants vs er-naive (QoS 95%)",
    );
    let v0 = sweep(false, secs);
    let v1 = sweep(true, secs);
    print_sweep(
        "(a) Original program, variant 0 (no non-temporal hints)",
        &v0,
    );
    print_sweep("(b) Fully non-temporal program, variant 1", &v1);
    println!(
        "\nPaper: variant 0 needs ~99% nap intensity to protect the co-runner;\n\
         variant 1 needs only ~23%, at far better host performance."
    );
}
