//! Figure 8: search-space reduction heuristics. For each batch
//! application: static loads remaining after "Active Regions" (exclude
//! uncovered code) and "Max Depth" (only innermost loops), as a
//! percentage of the full program, with absolute counts in parentheses.

use pc3d::select_candidates;
use protean::{HostMonitor, Runtime, RuntimeConfig};
use protean_bench::{compile_protean, experiment_os, Scale};
use simos::Os;
use workloads::catalog;

fn main() {
    let scale = Scale::from_env();
    let sample_cycles = scale.secs(20.0);
    protean_bench::header(
        "Figure 8 — variant search-space reduction (loads remaining, % of total)",
    );
    println!(
        "{:<14}{:>9}{:>18}{:>14}{:>12}",
        "benchmark", "(total)", "full program %", "active %", "max depth %"
    );
    let mut total_reduction = 0.0;
    let mut active_reduction = 0.0;
    let names = catalog::batch_names();
    for name in names {
        let cfg = experiment_os();
        let img = compile_protean(name, &cfg);
        let cps = cfg.machine.cycles_per_second;
        let mut os = Os::new(cfg);
        let pid = os.spawn(&img, 0);
        let rt = Runtime::attach(&os, pid, RuntimeConfig::on_core(1)).expect("attach");
        let mut mon = HostMonitor::new(&os, pid, 1.0);
        let total_cycles = (sample_cycles * cps as f64) as u64;
        let step = 1013;
        let mut done = 0;
        while done < total_cycles {
            os.advance(step);
            mon.sample(&os, &rt);
            done += step;
        }
        let (_, report) = select_candidates(&rt, &mon, usize::MAX);
        let pct = |x: usize| 100.0 * x as f64 / report.total_loads as f64;
        println!(
            "{name:<14}{:>8}{:>17.1}%{:>13.1}%{:>11.1}%",
            format!("({})", report.total_loads),
            100.0,
            pct(report.active_loads),
            pct(report.max_depth_loads),
        );
        total_reduction += report.total_loads as f64 / report.max_depth_loads.max(1) as f64;
        active_reduction += report.total_loads as f64 / report.active_loads.max(1) as f64;
    }
    let n = names.len() as f64;
    println!(
        "\nMean reduction: active regions {:.0}x (paper ~12x); with max depth {:.0}x (paper ~44x).",
        active_reduction / n,
        total_reduction / n
    );
    println!(
        "Paper spot checks: soplex 15666 -> 57 loads, sphinx3 4963 -> 116 loads\n\
         (this reproduction generates programs with those exact static load counts)."
    );
}
