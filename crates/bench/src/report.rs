//! Machine-readable benchmark reports.
//!
//! Harnesses and the interpreter micro-benchmark emit their headline
//! numbers as small JSON files (`BENCH_interp.json`, `BENCH_figures.json`)
//! so results can be diffed across commits and consumed by the CI
//! regression gate (`bench_gate`). Emission is **opt-in**: nothing is
//! written unless `PROTEAN_BENCH_JSON` names a directory, so ordinary
//! `cargo bench` runs stay side-effect free.
//!
//! The module carries its own minimal JSON value type and a top-level
//! merge (read–modify–write keyed on the outermost object), because the
//! workspace deliberately has no crates.io dependencies.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// A JSON value. Objects use a `BTreeMap` so serialized output is stable
/// (sorted keys) and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A floating-point number, printed with enough digits to round-trip.
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\t' => write!(out, "\\t")?,
            '\r' => write!(out, "\\r")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::F64(x) if x.is_finite() => {
                // Fixed-point with enough precision for throughput numbers;
                // trims trailing zeros so diffs stay compact.
                let s = format!("{x:.6}");
                let s = s.trim_end_matches('0').trim_end_matches('.');
                write!(f, "{s}")
            }
            Json::F64(_) => write!(f, "null"),
            Json::U64(n) => write!(f, "{n}"),
            Json::Str(s) => escape(s, f),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    escape(k, f)?;
                    write!(f, ": {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Directory for report files, taken from `PROTEAN_BENCH_JSON`. `None`
/// (the default) disables all report writes.
pub fn report_dir() -> Option<PathBuf> {
    std::env::var_os("PROTEAN_BENCH_JSON").map(PathBuf::from)
}

/// Merges `(key, value)` into the top-level object of the JSON file at
/// `path`, creating the file (and parent directory) if needed. Existing
/// keys other than `key` are preserved textually, so independent
/// harnesses can update one file without parsing each other's entries.
pub fn update_json_map(path: &Path, key: &str, value: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut entries = split_top_level(&existing);
    entries.retain(|(k, _)| k != key);
    entries.push((key.to_string(), value.to_string()));
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let key_json = Json::Str(k.clone()).to_string();
        out.push_str(&format!("  {key_json}: {v}"));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Splits the top-level object of `text` into raw `(key, value-text)`
/// pairs. Tolerant of whitespace and of a missing/empty file; values are
/// kept as their original text. String-escape- and nesting-aware, so
/// braces or commas inside nested values or strings don't confuse it.
fn split_top_level(text: &str) -> Vec<(String, String)> {
    let body = match (text.find('{'), text.rfind('}')) {
        (Some(a), Some(b)) if a < b => &text[a + 1..b],
        _ => return Vec::new(),
    };
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut esc = false;
    let mut start = 0usize;
    let bytes = body.as_bytes();
    let push = |start: usize, end: usize, entries: &mut Vec<(String, String)>| {
        let item = body[start..end].trim();
        if item.is_empty() {
            return;
        }
        if let Some((k, v)) = split_entry(item) {
            entries.push((k, v));
        }
    };
    for (i, &b) in bytes.iter().enumerate() {
        if esc {
            esc = false;
            continue;
        }
        match b {
            b'\\' if in_str => esc = true,
            b'"' => in_str = !in_str,
            b'{' | b'[' if !in_str => depth += 1,
            b'}' | b']' if !in_str => depth = depth.saturating_sub(1),
            b',' if !in_str && depth == 0 => {
                push(start, i, &mut entries);
                start = i + 1;
            }
            _ => {}
        }
    }
    push(start, body.len(), &mut entries);
    entries
}

/// Splits one `"key": value` entry; returns the unescaped key and the raw
/// value text.
fn split_entry(item: &str) -> Option<(String, String)> {
    let rest = item.strip_prefix('"')?;
    let mut key = String::new();
    let mut esc = false;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        if esc {
            key.push(match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                c => c,
            });
            esc = false;
        } else if c == '\\' {
            esc = true;
        } else if c == '"' {
            end = Some(i);
            break;
        } else {
            key.push(c);
        }
    }
    let after = &rest[end? + 1..];
    let value = after.trim_start().strip_prefix(':')?.trim();
    Some((key, value.to_string()))
}

/// Records one harness's wall-clock entry in `BENCH_figures.json` (under
/// the report directory), keyed by harness name. No-op unless
/// `PROTEAN_BENCH_JSON` is set; write failures warn rather than abort a
/// finished harness run.
pub fn record_harness(name: &str, wall_ms: u64, jobs: usize, scale: &str) {
    let Some(dir) = report_dir() else {
        return;
    };
    let entry = Json::obj([
        ("wall_ms", Json::U64(wall_ms)),
        ("jobs", Json::U64(jobs as u64)),
        ("scale", Json::Str(scale.to_string())),
    ]);
    if let Err(e) = update_json_map(&dir.join("BENCH_figures.json"), name, &entry) {
        eprintln!("warning: could not write BENCH_figures.json: {e}");
    }
}

/// Reads the raw value text for `key` from the top-level object of the
/// JSON file at `path`, if present.
pub fn read_top_level(path: &Path, key: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    split_top_level(&text)
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// Extracts the number stored at `"field": <number>` inside a flat JSON
/// object's text (as returned by [`read_top_level`]). Good enough for the
/// regression gate's baseline reads; not a general JSON parser.
pub fn number_field(object_text: &str, field: &str) -> Option<f64> {
    for (k, v) in split_top_level(object_text) {
        if k == field {
            return v.parse::<f64>().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_escapes_and_sorts() {
        let j = Json::obj([
            ("b", Json::Str("quote \" slash \\ nl \n".into())),
            ("a", Json::Arr(vec![Json::U64(1), Json::F64(2.5)])),
        ]);
        assert_eq!(
            j.to_string(),
            "{\"a\": [1, 2.5], \"b\": \"quote \\\" slash \\\\ nl \\n\"}"
        );
    }

    #[test]
    fn f64_formatting_trims_zeros() {
        assert_eq!(Json::F64(52.7).to_string(), "52.7");
        assert_eq!(Json::F64(45.0).to_string(), "45");
        assert_eq!(Json::F64(0.123456789).to_string(), "0.123457");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn update_merges_without_touching_other_keys() {
        let dir = std::env::temp_dir().join("protean_report_test");
        let path = dir.join("merge.json");
        let _ = std::fs::remove_file(&path);
        update_json_map(&path, "one", &Json::obj([("ms", Json::U64(100))])).unwrap();
        update_json_map(&path, "two", &Json::obj([("ms", Json::U64(200))])).unwrap();
        update_json_map(&path, "one", &Json::obj([("ms", Json::U64(150))])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let entries = split_top_level(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(read_top_level(&path, "one").unwrap(), "{\"ms\": 150}");
        assert_eq!(read_top_level(&path, "two").unwrap(), "{\"ms\": 200}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splitter_survives_nested_values_and_tricky_strings() {
        let text = r#"{
          "a": {"inner": [1, 2, {"x": "br } ace, \" quote"}]},
          "b, not a split": 7
        }"#;
        let entries = split_top_level(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1], ("b, not a split".to_string(), "7".to_string()));
        assert_eq!(number_field(&entries[0].1, "inner"), None);
    }

    #[test]
    fn number_field_reads_flat_objects() {
        let obj = r#"{"m_instr_per_s": 52.7, "insts": 20231340, "workload": "milc"}"#;
        assert_eq!(number_field(obj, "m_instr_per_s"), Some(52.7));
        assert_eq!(number_field(obj, "insts"), Some(20231340.0));
        assert_eq!(number_field(obj, "workload"), None);
        assert_eq!(number_field(obj, "missing"), None);
    }
}
