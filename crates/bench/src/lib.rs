//! # `protean-bench` — experiment harness utilities
//!
//! Shared machinery for the figure/table regeneration harnesses (the
//! `benches/` targets of this crate, one per paper table/figure; see
//! DESIGN.md's experiment index). Each harness prints the same rows or
//! series the paper reports.
//!
//! Set `PROTEAN_SCALE=quick` for abbreviated runs (CI) or
//! `PROTEAN_SCALE=full` for longer, lower-variance runs; the default is a
//! middle setting.

use pc3d::{Pc3d, Pc3dConfig};
use pcc::{Compiler, Options};
use protean::{ExtMonitor, Runtime, RuntimeConfig};
use reqos::{ReqosConfig, ReqosController};
use simos::{LoadSchedule, Os, OsConfig, Pid};
use visa::Image;
use workloads::catalog;

pub mod dc;
pub mod pool;
pub mod report;

/// Experiment duration scaling.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Short runs for smoke testing.
    Quick,
    /// Default.
    Normal,
    /// Long, low-variance runs.
    Full,
}

impl Scale {
    /// Reads `PROTEAN_SCALE` from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("PROTEAN_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Normal,
        }
    }

    /// The name this scale is selected by in `PROTEAN_SCALE` (used when
    /// labelling report entries).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Normal => "normal",
            Scale::Full => "full",
        }
    }

    /// Multiplies a base duration by the scale factor.
    pub fn secs(self, base: f64) -> f64 {
        match self {
            Scale::Quick => base * 0.4,
            Scale::Normal => base,
            Scale::Full => base * 3.0,
        }
    }
}

/// One interpreter-throughput sample (see `benches/micro.rs` and the
/// `bench_gate` CI binary).
#[derive(Clone, Debug)]
pub struct InterpMeasurement {
    /// Catalog workload name.
    pub workload: String,
    /// Simulated cycles advanced in the timed window.
    pub cycles: u64,
    /// Instructions retired in the timed window (deterministic for a
    /// given workload + cycle budget, so it doubles as a fidelity check).
    pub insts: u64,
    /// Host wall-clock seconds for the timed window.
    pub wall_secs: f64,
    /// Millions of simulated instructions per host second.
    pub m_instr_per_s: f64,
}

/// Simulated-cycle budget for one interpreter-throughput window at this
/// scale (400M cycles at `Normal`, matching the numbers recorded in
/// `BENCH_interp.json`).
pub fn interp_cycles(scale: Scale) -> u64 {
    (scale.secs(400.0) * 1e6) as u64
}

/// Measures end-to-end interpreter throughput (the full `Os::advance`
/// path: dispatch + memory hierarchy + scheduling) for a plain-compiled
/// catalog workload. Runs `reps` timed windows after a warmup and keeps
/// the fastest, which rejects host scheduling noise.
pub fn interp_throughput(workload: &str, cycles: u64, reps: usize) -> InterpMeasurement {
    interp_throughput_mode(workload, cycles, reps, false)
}

/// [`interp_throughput`] with an explicit decode mode: `fallback = true`
/// forces the interpreter's always-decode path (no block caching, no
/// superop fusion), the A-side of the decoded-tier A/B comparison.
/// Simulated results are bit-identical in either mode; only the host
/// wall-clock differs.
pub fn interp_throughput_mode(
    workload: &str,
    cycles: u64,
    reps: usize,
    fallback: bool,
) -> InterpMeasurement {
    let cfg = experiment_os();
    let img = compile_plain(workload, &cfg);
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    os.set_decode_fallback(pid, fallback);
    os.advance(cycles / 8); // warm caches and the block cache
    let mut best: Option<InterpMeasurement> = None;
    for _ in 0..reps.max(1) {
        let insts0 = os.counters(pid).instructions;
        let t0 = std::time::Instant::now();
        os.advance(cycles);
        let wall = t0.elapsed().as_secs_f64();
        let insts = os.counters(pid).instructions - insts0;
        let m = InterpMeasurement {
            workload: workload.to_string(),
            cycles,
            insts,
            wall_secs: wall,
            m_instr_per_s: insts as f64 / wall / 1e6,
        };
        if best
            .as_ref()
            .is_none_or(|b| m.m_instr_per_s > b.m_instr_per_s)
        {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

/// Workloads of the interp micro bench matrix (`interp_matrix` binary
/// and the CI determinism cross-check).
pub const MATRIX_WORKLOADS: &[&str] = &["milc", "libquantum", "bst"];

/// Runs the (workload × decode-mode) interp matrix over the experiment
/// pool and renders one deterministic CSV row per cell: simulated
/// counters plus decode-cache stats, no wall-clock anywhere. Rows are
/// bit-identical for any `PROTEAN_JOBS` (pool results come back in input
/// order) and for either decode mode's simulated counters — CI diffs a
/// one-worker run against an N-worker run to pin both properties.
pub fn interp_matrix_rows(cycles: u64) -> Vec<String> {
    let cells: Vec<(&str, bool)> = MATRIX_WORKLOADS
        .iter()
        .flat_map(|&w| [(w, false), (w, true)])
        .collect();
    pool::map(&cells, |_, &(workload, fallback)| {
        let cfg = experiment_os();
        let img = compile_plain(workload, &cfg);
        let mut os = Os::new(cfg);
        let pid = os.spawn(&img, 0);
        os.set_decode_fallback(pid, fallback);
        os.advance(cycles);
        let c = os.counters(pid);
        let d = os.decode_stats(pid);
        format!(
            "{workload},{mode},insts={},cycles={},branches={},llc_misses={},decoded_hits={},decoded_misses={},fused_ops={}",
            c.instructions,
            c.cycles,
            c.branches,
            c.llc_misses,
            d.hits,
            d.misses,
            d.fused_ops,
            mode = if fallback { "fallback" } else { "decoded" },
        )
    })
}

/// Measures a pure-arithmetic host calibration loop (millions of
/// iterations per second). Interpreter throughput in M instr/s is
/// host-dependent; `bench_gate` divides by this to get a host-normalized
/// ratio it can compare against a checked-in baseline.
pub fn host_calibration_mops() -> f64 {
    // Best of three to reject scheduling noise, like `interp_throughput`.
    let mut best = 0.0f64;
    for _ in 0..3 {
        let iters = 200_000_000u64;
        let mut acc = 0x9e3779b97f4a7c15u64;
        let t0 = std::time::Instant::now();
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i) ^ (acc >> 29);
        }
        let wall = t0.elapsed().as_secs_f64();
        // Keep the loop from being optimized out.
        assert_ne!(acc, 0, "calibration accumulator");
        best = best.max(iters as f64 / wall / 1e6);
    }
    best
}

/// The standard experiment machine: the paper's 4-core topology with
/// capacities scaled to the simulated time base (see
/// [`machine::MachineConfig::scaled`]).
pub fn experiment_os() -> OsConfig {
    OsConfig {
        machine: machine::MachineConfig::scaled(),
        ..OsConfig::default()
    }
}

/// LLC capacity in lines for an OS configuration.
pub fn llc_lines(cfg: &OsConfig) -> u64 {
    cfg.machine.llc_bytes() / cfg.machine.line_bytes
}

/// Compiles a catalog workload as a protean binary.
///
/// # Panics
///
/// Panics on unknown names (harness-internal misuse).
pub fn compile_protean(name: &str, cfg: &OsConfig) -> Image {
    let m =
        catalog::build(name, llc_lines(cfg)).unwrap_or_else(|| panic!("unknown workload {name}"));
    Compiler::new(Options::protean())
        .compile(&m)
        .expect("compile")
        .image
}

/// Compiles a catalog workload as a plain (non-protean) binary.
///
/// # Panics
///
/// Panics on unknown names.
pub fn compile_plain(name: &str, cfg: &OsConfig) -> Image {
    let m =
        catalog::build(name, llc_lines(cfg)).unwrap_or_else(|| panic!("unknown workload {name}"));
    Compiler::new(Options::plain())
        .compile(&m)
        .expect("compile")
        .image
}

/// True if the catalog entry is a latency-sensitive server.
pub fn is_server(name: &str) -> bool {
    matches!(catalog::by_name(name), Some(w) if w.kind == catalog::WorkloadKind::Server)
}

/// Measures a batch application's solo progress rate (branches per
/// second) on the experiment machine. Memoized per (name, rounded secs).
pub fn solo_batch_bps(name: &str, secs: f64) -> f64 {
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<std::collections::HashMap<(String, u64), f64>>> = OnceLock::new();
    let key = (name.to_string(), (secs * 10.0) as u64);
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    if let Some(v) = cache.lock().expect("cache lock").get(&key) {
        return *v;
    }
    let v = solo_batch_bps_uncached(name, secs);
    cache.lock().expect("cache lock").insert(key, v);
    v
}

fn solo_batch_bps_uncached(name: &str, secs: f64) -> f64 {
    let cfg = experiment_os();
    let img = compile_plain(name, &cfg);
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    // Warm up caches before measuring.
    os.advance_seconds(secs * 0.2);
    let mut mon = ExtMonitor::new(&os, pid);
    os.advance_seconds(secs);
    mon.end_window(&os).bps
}

/// Measures a server's solo query capacity (QPS at saturation).
pub fn server_capacity_qps(name: &str, secs: f64) -> f64 {
    let cfg = experiment_os();
    let img = compile_plain(name, &cfg);
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    os.set_load(pid, LoadSchedule::constant(1e9));
    os.advance_seconds(secs * 0.25); // warmup
    let start = os.app_metric(pid, 0);
    os.advance_seconds(secs);
    (os.app_metric(pid, 0) - start) as f64 / secs
}

/// The operating load used for a server co-runner: near saturation, so
/// co-runner interference shows up as QoS loss (the paper's webservices
/// run at high load in Figures 9-15). Memoized.
pub fn operating_qps(name: &str) -> f64 {
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<std::collections::HashMap<String, f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    if let Some(v) = cache.lock().expect("cache lock").get(name) {
        return *v;
    }
    let v = 0.85 * server_capacity_qps(name, 5.0);
    cache
        .lock()
        .expect("cache lock")
        .insert(name.to_string(), v);
    v
}

/// A co-located pair under some controller, with everything the figures
/// need.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PairResult {
    /// Batch progress relative to running alone (the paper's
    /// "Utilization").
    pub utilization: f64,
    /// Co-runner QoS (IPS relative to solo at the same load).
    pub qos: f64,
    /// Mean nap intensity over the measurement tail.
    pub mean_nap: f64,
    /// Non-temporal hints in the final variant.
    pub hints: usize,
    /// Fraction of server cycles consumed by the runtime.
    pub runtime_frac: f64,
    /// Batch core busy fraction (for the datacenter power model).
    pub batch_core_util: f64,
    /// LS/external core busy fraction.
    pub ext_core_util: f64,
}

/// Spawns the standard co-location topology: external app on core 0,
/// batch host on core 1 (protean), runtime work charged to core 2.
/// Returns `(os, ext_pid, host_pid)`.
pub fn spawn_pair(batch: &str, ext: &str, ext_qps: Option<f64>) -> (Os, Pid, Pid) {
    let cfg = experiment_os();
    let ext_img = compile_plain(ext, &cfg);
    let host_img = compile_protean(batch, &cfg);
    let mut os = Os::new(cfg);
    let ext_pid = os.spawn(&ext_img, 0);
    let host_pid = os.spawn(&host_img, 1);
    if let Some(qps) = ext_qps {
        os.set_load(ext_pid, LoadSchedule::constant(qps));
    }
    (os, ext_pid, host_pid)
}

fn measure_true_qos(ext_name: &str, ext_qps: Option<f64>, measured_ips: f64, secs: f64) -> f64 {
    // Ground-truth solo IPS at the same offered load, measured by
    // replaying the external app alone (deterministic).
    let cfg = experiment_os();
    let img = compile_plain(ext_name, &cfg);
    let mut os = Os::new(cfg);
    let pid = os.spawn(&img, 0);
    if let Some(qps) = ext_qps {
        os.set_load(pid, LoadSchedule::constant(qps));
    }
    os.advance_seconds(secs * 0.3);
    let mut mon = ExtMonitor::new(&os, pid);
    os.advance_seconds(secs);
    let solo = mon.end_window(&os).ips;
    if solo > 0.0 {
        (measured_ips / solo).min(1.05)
    } else {
        1.0
    }
}

/// Runs a (batch, external) pair under PC3D at the given QoS target.
pub fn run_pc3d_pair(batch: &str, ext: &str, qos_target: f64, secs: f64) -> PairResult {
    let ext_qps = is_server(ext).then(|| operating_qps(ext));
    let (mut os, ext_pid, host_pid) = spawn_pair(batch, ext, ext_qps);
    let rt = Runtime::attach(&os, host_pid, RuntimeConfig::on_core(2)).expect("attach");
    let mut ctl = Pc3d::new(
        &mut os,
        rt,
        ext_pid,
        Pc3dConfig {
            qos_target,
            ..Default::default()
        },
    );
    // Let the controller converge, then measure the tail.
    ctl.run_for(&mut os, secs * 0.6);
    let tail_start_ext = ExtMonitor::new(&os, ext_pid);
    let tail_start_host = ExtMonitor::new(&os, host_pid);
    let host_busy0 = os.counters(host_pid).cycles;
    let ext_busy0 = os.counters(ext_pid).cycles;
    let rtc0 = os.runtime_consumed_total();
    let t0 = os.now();
    ctl.run_for(&mut os, secs * 0.4);
    let mut ext_mon = tail_start_ext;
    let mut host_mon = tail_start_host;
    let ext_w = ext_mon.end_window(&os);
    let host_w = host_mon.end_window(&os);
    let dt = (os.now() - t0) as f64;
    let tail_secs = os.config().machine.cycles_to_seconds(os.now() - t0);

    let solo_bps = solo_batch_bps(batch, secs * 0.4);
    let qos = measure_true_qos(ext, ext_qps, ext_w.ips, tail_secs);
    PairResult {
        utilization: (host_w.bps / solo_bps).min(1.05),
        qos,
        mean_nap: ctl.nap(),
        hints: ctl.hints(),
        runtime_frac: (os.runtime_consumed_total() - rtc0) as f64
            / (dt * os.config().machine.cores as f64),
        batch_core_util: (os.counters(host_pid).cycles - host_busy0) as f64 / dt,
        ext_core_util: (os.counters(ext_pid).cycles - ext_busy0) as f64 / dt,
    }
}

/// Runs a (batch, external) pair under the ReQoS baseline.
pub fn run_reqos_pair(batch: &str, ext: &str, qos_target: f64, secs: f64) -> PairResult {
    let ext_qps = is_server(ext).then(|| operating_qps(ext));
    let (mut os, ext_pid, host_pid) = spawn_pair(batch, ext, ext_qps);
    let mut ctl = ReqosController::new(
        &mut os,
        host_pid,
        ext_pid,
        ReqosConfig {
            qos_target,
            ..Default::default()
        },
    );
    ctl.run_for(&mut os, secs * 0.6);
    let mut ext_mon = ExtMonitor::new(&os, ext_pid);
    let mut host_mon = ExtMonitor::new(&os, host_pid);
    let host_busy0 = os.counters(host_pid).cycles;
    let ext_busy0 = os.counters(ext_pid).cycles;
    let t0 = os.now();
    ctl.run_for(&mut os, secs * 0.4);
    let ext_w = ext_mon.end_window(&os);
    let host_w = host_mon.end_window(&os);
    let dt = (os.now() - t0) as f64;
    let tail_secs = os.config().machine.cycles_to_seconds(os.now() - t0);

    let solo_bps = solo_batch_bps(batch, secs * 0.4);
    let qos = measure_true_qos(ext, ext_qps, ext_w.ips, tail_secs);
    PairResult {
        utilization: (host_w.bps / solo_bps).min(1.05),
        qos,
        mean_nap: ctl.nap(),
        hints: 0,
        runtime_frac: 0.0,
        batch_core_util: (os.counters(host_pid).cycles - host_busy0) as f64 / dt,
        ext_core_util: (os.counters(ext_pid).cycles - ext_busy0) as f64 / dt,
    }
}

/// If `PROTEAN_CSV_DIR` is set, writes `rows` (plus `header`) to
/// `<dir>/<name>.csv` for downstream plotting; otherwise does nothing.
/// Harness output is unaffected either way.
pub fn maybe_csv(name: &str, header: &str, rows: &[String]) {
    let Ok(dir) = std::env::var("PROTEAN_CSV_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 2);
    out.push_str(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(csv written to {})", path.display());
    }
}

/// Prints a labelled horizontal bar (terminal "figure").
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let frac = (value / max).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!(
        "{label:<16} {:>7.1?} |{}{}|",
        value,
        "#".repeat(filled),
        " ".repeat(width - filled)
    )
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::Quick.secs(10.0), 4.0);
        assert_eq!(Scale::Normal.secs(10.0), 10.0);
        assert_eq!(Scale::Full.secs(10.0), 30.0);
    }

    #[test]
    fn solo_measurements_positive() {
        assert!(solo_batch_bps("er-naive", 2.0) > 0.0);
        assert!(server_capacity_qps("web-search", 2.0) > 1.0);
    }

    #[test]
    fn bar_renders() {
        let s = bar("x", 5.0, 10.0, 10);
        assert!(s.contains("#####"));
    }
}
