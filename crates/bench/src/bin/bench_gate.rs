//! CI regression gate for interpreter throughput.
//!
//! Raw M instr/s numbers are host-dependent, so the gate normalizes: it
//! times a pure-arithmetic calibration loop on the same host and gates on
//! `interpreter M instr/s / calibration M ops/s`. That ratio tracks how
//! much work the interpreter does per unit of host compute and is stable
//! across machines of different speeds (though not across radically
//! different microarchitectures — the 20% margin absorbs that).
//!
//! Usage:
//!   bench_gate            compare against the checked-in baseline;
//!                         exit 1 on a >20% regression
//!   bench_gate --update   rewrite the baseline from this host's numbers
//!
//! Besides the interpreter workloads, the gate times the discrete-event
//! datacenter simulator on a fixed pinned-colo cluster and gates on
//! simulated events processed per host second, normalized the same way.
//!
//! The baseline lives at `crates/bench/bench_baseline.json` (override
//! with `PROTEAN_BENCH_BASELINE`). Workload and cycle budget follow
//! `PROTEAN_SCALE` (quick/full); reports honor `PROTEAN_BENCH_JSON`.

use datacenter::{serial_exec, Cluster};
use protean_bench::report::{number_field, read_top_level, update_json_map, Json};
use protean_bench::{dc, host_calibration_mops, interp_cycles, interp_throughput, Scale};
use std::path::PathBuf;

/// Allowed loss of host-normalized throughput before the gate fails.
const MAX_REGRESSION: f64 = 0.20;

const WORKLOADS: &[&str] = &["milc", "libquantum"];

fn baseline_path() -> PathBuf {
    std::env::var_os("PROTEAN_BENCH_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench_baseline.json"))
}

fn main() {
    let update = std::env::args().any(|a| a == "--update");
    let scale = Scale::from_env();
    let cycles = interp_cycles(scale);
    let baseline = baseline_path();

    println!("bench_gate: calibrating host ...");
    let cal = host_calibration_mops();
    println!("  calibration loop: {cal:.1} M ops/s");

    let mut failures = 0;
    let mut gate_one = |name: &str, ratio: f64, raw: (&'static str, f64)| {
        if update {
            let entry = Json::obj([
                ("ratio", Json::F64(ratio)),
                (raw.0, Json::F64(raw.1)),
                ("calibration_mops_on_update_host", Json::F64(cal)),
            ]);
            update_json_map(&baseline, name, &entry).expect("write baseline");
            return;
        }
        let Some(base) = read_top_level(&baseline, name).and_then(|v| number_field(&v, "ratio"))
        else {
            println!(
                "  {name:<12} no baseline entry in {} — skipping",
                baseline.display()
            );
            return;
        };
        let floor = base * (1.0 - MAX_REGRESSION);
        if ratio < floor {
            println!(
                "  {name:<12} REGRESSION: ratio {ratio:.4} < floor {floor:.4} (baseline {base:.4})"
            );
            failures += 1;
        } else {
            println!("  {name:<12} ok: ratio {ratio:.4} vs baseline {base:.4} (floor {floor:.4})");
        }
    };
    for &w in WORKLOADS {
        let m = interp_throughput(w, cycles, 2);
        let ratio = m.m_instr_per_s / cal;
        println!(
            "  {w:<12} {:>8.1} M instr/s over {} cycles ({} insts)  ratio {ratio:.4}",
            m.m_instr_per_s, m.cycles, m.insts
        );
        gate_one(w, ratio, ("m_instr_per_s_on_update_host", m.m_instr_per_s));
    }

    // Datacenter DES throughput: simulated cluster events retired per
    // host second on a fixed pinned-colo cluster (every event fans the
    // fleet forward one epoch, so this tracks whole-simulator speed).
    let t0 = std::time::Instant::now();
    let r = Cluster::new(dc::gate_scenario()).run_with(&serial_exec());
    let wall = t0.elapsed().as_secs_f64();
    let events_per_sec = r.events as f64 / wall;
    let ratio = events_per_sec / cal;
    println!(
        "  {:<12} {:>8.1} events/s over {} events ({} queries)  ratio {ratio:.4}",
        "datacenter", events_per_sec, r.events, r.queries
    );
    gate_one(
        "datacenter",
        ratio,
        ("events_per_sec_on_update_host", events_per_sec),
    );

    if update {
        println!("baseline updated at {}", baseline.display());
    } else if failures > 0 {
        eprintln!(
            "bench_gate: {failures} workload(s) regressed more than {:.0}%",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    } else {
        println!(
            "bench_gate: interpreter and datacenter throughput within {:.0}% of baseline",
            MAX_REGRESSION * 100.0
        );
    }
}
