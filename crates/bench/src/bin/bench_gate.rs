//! CI regression gate for interpreter throughput.
//!
//! Raw M instr/s numbers are host-dependent, so the gate normalizes: it
//! times a pure-arithmetic calibration loop on the same host and gates on
//! `interpreter M instr/s / calibration M ops/s`. That ratio tracks how
//! much work the interpreter does per unit of host compute and is stable
//! across machines of different speeds (though not across radically
//! different microarchitectures — the 20% margin absorbs that).
//!
//! Usage:
//!   bench_gate            compare against the checked-in baseline;
//!                         exit 1 on a >20% regression
//!   bench_gate --update   rewrite the baseline from this host's numbers
//!
//! The baseline lives at `crates/bench/bench_baseline.json` (override
//! with `PROTEAN_BENCH_BASELINE`). Workload and cycle budget follow
//! `PROTEAN_SCALE` (quick/full); reports honor `PROTEAN_BENCH_JSON`.

use protean_bench::report::{number_field, read_top_level, update_json_map, Json};
use protean_bench::{host_calibration_mops, interp_cycles, interp_throughput, Scale};
use std::path::PathBuf;

/// Allowed loss of host-normalized throughput before the gate fails.
const MAX_REGRESSION: f64 = 0.20;

const WORKLOADS: &[&str] = &["milc", "libquantum"];

fn baseline_path() -> PathBuf {
    std::env::var_os("PROTEAN_BENCH_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench_baseline.json"))
}

fn main() {
    let update = std::env::args().any(|a| a == "--update");
    let scale = Scale::from_env();
    let cycles = interp_cycles(scale);
    let baseline = baseline_path();

    println!("bench_gate: calibrating host ...");
    let cal = host_calibration_mops();
    println!("  calibration loop: {cal:.1} M ops/s");

    let mut failures = 0;
    for &w in WORKLOADS {
        let m = interp_throughput(w, cycles, 2);
        let ratio = m.m_instr_per_s / cal;
        println!(
            "  {w:<12} {:>8.1} M instr/s over {} cycles ({} insts)  ratio {ratio:.4}",
            m.m_instr_per_s, m.cycles, m.insts
        );
        if update {
            let entry = Json::obj([
                ("ratio", Json::F64(ratio)),
                ("m_instr_per_s_on_update_host", Json::F64(m.m_instr_per_s)),
                ("calibration_mops_on_update_host", Json::F64(cal)),
            ]);
            update_json_map(&baseline, w, &entry).expect("write baseline");
            continue;
        }
        let Some(base) = read_top_level(&baseline, w).and_then(|v| number_field(&v, "ratio"))
        else {
            println!(
                "  {w:<12} no baseline entry in {} — skipping",
                baseline.display()
            );
            continue;
        };
        let floor = base * (1.0 - MAX_REGRESSION);
        if ratio < floor {
            println!(
                "  {w:<12} REGRESSION: ratio {ratio:.4} < floor {floor:.4} (baseline {base:.4})"
            );
            failures += 1;
        } else {
            println!("  {w:<12} ok: ratio {ratio:.4} vs baseline {base:.4} (floor {floor:.4})");
        }
    }

    if update {
        println!("baseline updated at {}", baseline.display());
    } else if failures > 0 {
        eprintln!(
            "bench_gate: {failures} workload(s) regressed more than {:.0}%",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    } else {
        println!(
            "bench_gate: interpreter throughput within {:.0}% of baseline",
            MAX_REGRESSION * 100.0
        );
    }
}
