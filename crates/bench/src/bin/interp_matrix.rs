//! Deterministic (workload × decode-mode) interpreter matrix.
//!
//! Prints one CSV row of *simulated* counters per cell — instructions,
//! cycles, branches, LLC misses, and the decode-cache stats — with no
//! wall-clock numbers, so the output is bit-identical across hosts and
//! across `PROTEAN_JOBS` worker counts. CI runs this twice (one worker
//! vs many) and diffs the output, the same pinning strategy as the
//! trace-determinism double-run.
//!
//! The matrix also cross-checks the decoded tier per cell: every
//! simulated counter of a `decoded` row must equal its `fallback`
//! sibling's (decode-cache stats excepted — those measure the tier
//! itself). A divergence exits nonzero.
//!
//! Cycle budget follows `PROTEAN_SCALE` (quick/normal/full).

use protean_bench::{interp_cycles, interp_matrix_rows, Scale};

fn main() {
    let scale = Scale::from_env();
    // The matrix runs 2 modes x N workloads; a fraction of the
    // throughput budget keeps the double-run CI step cheap.
    let cycles = interp_cycles(scale) / 8;
    let rows = interp_matrix_rows(cycles);
    let mut failures = 0;
    for pair in rows.chunks(2) {
        for row in pair {
            println!("{row}");
        }
        // decoded row, then fallback row, per workload; simulated
        // counters are everything before the decode-cache fields.
        let sim = |row: &str| {
            row.split(",decoded_hits=")
                .next()
                .map(|s| s.replacen("decoded", "", 1).replacen("fallback", "", 1))
        };
        if pair.len() == 2 && sim(&pair[0]) != sim(&pair[1]) {
            eprintln!(
                "interp_matrix: decoded/fallback divergence:\n  {}\n  {}",
                pair[0], pair[1]
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("interp_matrix: {failures} cell pair(s) diverged");
        std::process::exit(1);
    }
}
