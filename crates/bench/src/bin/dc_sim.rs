//! Deterministic datacenter-simulation runner for CI.
//!
//! Runs the discrete-event warehouse simulation at a pinned seed and
//! prints its results — simulated quantities only, no wall-clock — as
//! canonical JSON on stdout. CI runs this twice, once serial
//! (`PROTEAN_JOBS=1`) and once parallel, and diffs the bytes: any
//! divergence means cluster determinism broke.
//!
//! Scope follows `PROTEAN_SCALE`: at `quick` only the miniature fleets
//! run; the default derives Figures 17–18 from the full 1,080-server
//! warehouse (two fleets, millions of simulated queries).
//!
//! When `PROTEAN_BENCH_JSON` names a directory, host-side throughput
//! (cluster events and simulated server-seconds per host second) is
//! recorded to `BENCH_datacenter.json` — kept out of stdout so the
//! determinism diff never sees a timing.

use protean_bench::dc::{cluster_json, fig17_18_json, jobs_scenario, pool_exec, scaleout_scenario};
use protean_bench::report::{report_dir, update_json_map, Json};
use protean_bench::{pool, Scale};

use datacenter::cluster::Cluster;
use datacenter::scaleout::fig17_18;

fn main() {
    let scale = Scale::from_env();
    let exec = pool_exec();
    let t0 = std::time::Instant::now();

    // The jobs-mode scenario exercises arrivals/placement/parking.
    let jobs = Cluster::new(jobs_scenario(17)).run_with(&exec);
    // The scale-out experiment derives Figures 17–18 from the DES.
    let scenario = scaleout_scenario(scale);
    let fig = fig17_18(&scenario, &exec);
    let wall = t0.elapsed().as_secs_f64();

    let out = Json::obj([
        ("scale", Json::Str(scale.name().to_string())),
        ("seed", Json::U64(scenario.seed)),
        (
            "servers",
            Json::U64((scenario.servers_per_group * fig.rows.len()) as u64),
        ),
        ("jobs_mode", cluster_json(&jobs)),
        ("fig17_18", fig17_18_json(&fig)),
    ]);
    println!("{out}");

    if let Some(dir) = report_dir() {
        let events = jobs.events + fig.colo.events + fig.ls_only.events;
        let sim_server_secs = (fig.colo.groups.iter().map(|g| g.servers).sum::<usize>()
            + fig.ls_only.groups.iter().map(|g| g.servers).sum::<usize>())
            as f64
            * scenario.duration_secs
            + jobs.groups.iter().map(|g| g.servers).sum::<usize>() as f64 * jobs.duration_secs;
        let entry = Json::obj([
            ("events", Json::U64(events)),
            ("events_per_sec", Json::F64(events as f64 / wall)),
            ("sim_server_secs_per_sec", Json::F64(sim_server_secs / wall)),
            (
                "queries",
                Json::U64((jobs.queries + fig.colo.queries + fig.ls_only.queries).max(0) as u64),
            ),
            ("wall_secs", Json::F64(wall)),
            ("jobs", Json::U64(pool::jobs() as u64)),
            ("scale", Json::Str(scale.name().to_string())),
        ]);
        update_json_map(&dir.join("BENCH_datacenter.json"), "dc_sim", &entry)
            .expect("write BENCH_datacenter.json");
    }
}
