//! Deterministic parallel fan-out for experiment harnesses and test
//! matrices.
//!
//! Every figure harness and seed-matrix test in this repository is a map
//! over an independent work list: (batch, service, target) cells, chaos
//! seeds, fuzz programs. [`map`] runs such a list across a scoped thread
//! pool and returns results **in input order**, so the output of a
//! parallel run is bit-identical to a serial run of the same closure —
//! parallelism changes wall-clock time and nothing else. There is no
//! shared mutable state between work items; each item's closure runs
//! exactly once, on exactly one thread.
//!
//! The worker count comes from `PROTEAN_JOBS` when set, else from the
//! host's available parallelism. With one worker (or one item) the pool
//! degrades to a plain serial loop on the calling thread — no threads are
//! spawned, so single-core CI behaves exactly like the pre-pool harnesses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `PROTEAN_JOBS` if set (clamped to at least 1), else the
/// host's available parallelism, else 1.
pub fn jobs() -> usize {
    match std::env::var("PROTEAN_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `items` on [`jobs`] workers, returning results in input
/// order. See [`map_with`].
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(jobs(), items, f)
}

/// Maps `f` over `items` on up to `workers` threads.
///
/// Work items are claimed dynamically (an atomic cursor, so long items
/// don't leave workers idle) but results land in a slot per input index,
/// so the returned vector is always in input order: a run with `workers
/// == 1` and a run with `workers == 64` return identical vectors for a
/// deterministic `f`.
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the scope joins all workers
/// first), so a failing work item fails the whole map loudly rather than
/// producing a partial result.
pub fn map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let r = f(i, item);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every item completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = map_with(8, &items, |i, &x| {
            // Vary per-item runtime so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros(((x * 7) % 13) as u64));
            i * 2 + x
        });
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(2654435761).rotate_left((x % 63) as u32);
        let serial = map_with(1, &items, f);
        let parallel = map_with(7, &items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item_lists() {
        let none: Vec<u8> = vec![];
        assert!(map_with(4, &none, |_, &x| x).is_empty());
        assert_eq!(map_with(4, &[9u8], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn jobs_respects_env_override() {
        // Serialized via a temp var name unlikely to be set elsewhere; we
        // only check the parse rules, not the host's parallelism.
        std::env::set_var("PROTEAN_JOBS", "3");
        assert_eq!(jobs(), 3);
        std::env::set_var("PROTEAN_JOBS", "0");
        assert_eq!(jobs(), 1, "zero clamps to one worker");
        std::env::set_var("PROTEAN_JOBS", "nonsense");
        assert_eq!(jobs(), 1, "garbage degrades to serial");
        std::env::remove_var("PROTEAN_JOBS");
        assert!(jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items = [1, 2, 3];
        let _ = map_with(2, &items, |_, &x| {
            if x == 2 {
                panic!("work item failed");
            }
            x
        });
    }
}
