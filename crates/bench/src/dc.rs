//! Datacenter-simulation harness support: the pool-backed executor and
//! deterministic JSON rendering of Figures 17–18.
//!
//! The datacenter crate deliberately knows nothing about this crate's
//! thread pool — it only defines the [`SliceExec`] contract (results in
//! input order). [`pool_exec`] plugs `protean_bench::pool` into that
//! contract, so `PROTEAN_JOBS=1` and `PROTEAN_JOBS=N` runs of the same
//! seeded cluster are bit-identical; CI diffs the rendered JSON of both
//! to enforce it.
//!
//! The JSON here contains **simulated quantities only** — no wall-clock,
//! no host identifiers — so byte-equality of two runs means the
//! simulation itself was deterministic.

use std::sync::Mutex;

use datacenter::cluster::{
    BatchMode, ClusterConfig, ClusterResult, GroupSpec, Placement, SliceExec, SliceJob,
};
use datacenter::{Fig1718, QpsShape, ScaleOutScenario, MIXES};

use crate::pool;
use crate::report::Json;
use crate::Scale;

/// A [`SliceExec`] backed by the experiment thread pool: slices are
/// claimed dynamically across `PROTEAN_JOBS` workers and results come
/// back in input order, exactly as the contract requires.
pub fn pool_exec() -> SliceExec {
    Box::new(|jobs| {
        // `pool::map` hands out `&T`, but a slice job is consumed by
        // running it — park each in a Mutex slot and take it exactly
        // once, on whichever worker claims that index.
        let slots: Vec<Mutex<Option<SliceJob>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        pool::map(&slots, |_, slot| {
            slot.lock()
                .expect("slice slot")
                .take()
                .expect("each slice claimed exactly once")
                .run()
        })
    })
}

/// The scale-out scenario for a [`Scale`]: the full warehouse (1,080
/// servers, two fleets, millions of simulated queries) by default, a
/// 36-server miniature at `quick`.
pub fn scaleout_scenario(scale: Scale) -> ScaleOutScenario {
    match scale {
        Scale::Quick => ScaleOutScenario::quick(),
        Scale::Normal => ScaleOutScenario::default(),
        Scale::Full => ScaleOutScenario {
            duration_secs: 240.0,
            ..ScaleOutScenario::default()
        },
    }
}

/// A small jobs-mode scenario (Poisson arrivals, co-location-aware
/// placement, consolidating balancer) exercising the event paths the
/// pinned fleets don't: arrivals, placement, queueing, job completion,
/// park/reactivate cycles.
pub fn jobs_scenario(seed: u64) -> ClusterConfig {
    ClusterConfig {
        groups: vec![
            GroupSpec {
                name: "web-search/WL1".into(),
                ls_app: "web-search",
                mix: MIXES[0],
                servers: 6,
                shape: QpsShape::diurnal(40.0, 80.0, 10.0, 1.0, 0.0, 1.0),
            },
            GroupSpec {
                name: "graph-analytics/WL2".into(),
                ls_app: "graph-analytics",
                mix: MIXES[1],
                servers: 6,
                shape: QpsShape::bursty(40.0, 10.0, 60.0, 0.25, 1.0, seed ^ 0xb0b),
            },
        ],
        batch: BatchMode::Jobs {
            placement: Placement::ColocationAware,
            mean_interarrival_secs: 2.5,
        },
        duration_secs: 40.0,
        consolidate: true,
        min_active: 1,
        seed,
        job_branches: 3_000,
        ..ClusterConfig::default()
    }
}

/// A compact pinned-colo cluster for the CI throughput gate: small
/// enough to run in a couple of host seconds, busy enough (every server
/// active, PC3D on every box) that events/sec tracks simulator speed.
pub fn gate_scenario() -> ClusterConfig {
    ClusterConfig {
        groups: vec![GroupSpec {
            name: "web-search/WL1".into(),
            ls_app: "web-search",
            mix: MIXES[0],
            servers: 8,
            shape: QpsShape::diurnal(15.0, 120.0, 30.0, 1.0, 0.0, 1.0),
        }],
        batch: BatchMode::Pinned,
        duration_secs: 15.0,
        consolidate: false,
        seed: 1,
        ..ClusterConfig::default()
    }
}

/// Renders a cluster result as deterministic JSON (simulated quantities
/// only).
pub fn cluster_json(r: &ClusterResult) -> Json {
    let groups = r
        .groups
        .iter()
        .map(|g| {
            Json::obj([
                ("name", Json::Str(g.name.clone())),
                ("servers", Json::U64(g.servers as u64)),
                ("queries", Json::U64(g.queries.max(0) as u64)),
                ("jobs_completed", Json::U64(g.jobs_completed)),
                ("batch_branches", Json::U64(g.batch_branches)),
                ("busy_cycles", Json::U64(g.busy_cycles)),
                ("lifetime_cycles", Json::U64(g.lifetime_cycles)),
                ("energy_joules", Json::F64(g.energy_joules)),
                ("qos_violations", Json::U64(g.qos_violations)),
                ("activations", Json::U64(g.activations)),
                ("parks", Json::U64(g.parks)),
                ("idle_skipped_cycles", Json::U64(g.idle_skipped_cycles)),
                ("peak_active", Json::U64(g.peak_active as u64)),
            ])
        })
        .collect();
    Json::obj([
        ("events", Json::U64(r.events)),
        ("skipped_cycles", Json::U64(r.skipped_cycles)),
        ("queries", Json::U64(r.queries.max(0) as u64)),
        ("jobs_completed", Json::U64(r.jobs_completed)),
        ("energy_joules", Json::F64(r.energy_joules)),
        ("groups", Json::Arr(groups)),
    ])
}

/// Renders the full Fig. 17–18 derivation as deterministic JSON.
pub fn fig17_18_json(f: &Fig1718) -> Json {
    let rows = f
        .rows
        .iter()
        .map(|row| {
            Json::obj([
                ("name", Json::Str(row.name.clone())),
                ("servers", Json::U64(row.servers as u64)),
                ("queries", Json::U64(row.queries.max(0) as u64)),
                ("batch_branches", Json::U64(row.batch_branches)),
                ("qos_violations", Json::U64(row.qos_violations)),
                ("servers_no_colo", Json::F64(row.result.servers_no_colo)),
                ("extra_servers_10k", Json::F64(row.extra_servers_10k)),
                ("power_pc3d_w", Json::F64(row.result.power_pc3d)),
                ("power_no_colo_w", Json::F64(row.result.power_no_colo)),
                ("efficiency_ratio", Json::F64(row.result.efficiency_ratio)),
            ])
        })
        .collect();
    Json::obj([
        ("rows", Json::Arr(rows)),
        (
            "totals",
            Json::obj([
                ("servers_pc3d", Json::F64(f.totals.servers_pc3d)),
                ("servers_no_colo", Json::F64(f.totals.servers_no_colo)),
                ("power_pc3d_w", Json::F64(f.totals.power_pc3d)),
                ("power_no_colo_w", Json::F64(f.totals.power_no_colo)),
                ("efficiency_ratio", Json::F64(f.totals.efficiency_ratio)),
            ]),
        ),
        ("colo", cluster_json(&f.colo)),
        ("ls_only", cluster_json(&f.ls_only)),
    ])
}
