//! Differential testing: the PIR reference interpreter and the compiled
//! (VISA + machine) execution must produce bit-identical final memory for
//! arbitrary programs, across compilation options.
//!
//! This is the strongest correctness oracle in the workspace: it checks
//! the whole pipeline (lowering, layout, virtualization, optimization,
//! the interpreter loop, and register windows) in one property.

use proptest::collection::vec;
use proptest::prelude::*;

use machine::{CostModel, ExecContext, ExecEnv, MachineConfig, MemorySystem, PerfCounters};
use pcc::{Compiler, Options};
use pir::{BinOp, FunctionBuilder, Inst, Locality, Module, Reg};

const NREGS: u32 = 10;
const WORDS: i64 = 48;

fn arb_body() -> impl Strategy<Value = Vec<Inst>> {
    let reg = || (0..NREGS).prop_map(Reg);
    let op = (0usize..BinOp::ALL.len()).prop_map(|i| BinOp::ALL[i]);
    let inst = prop_oneof![
        (reg(), -500i64..500).prop_map(|(dst, value)| Inst::Const { dst, value }),
        (op.clone(), reg(), reg(), reg()).prop_map(|(op, dst, lhs, rhs)| Inst::Bin {
            op,
            dst,
            lhs,
            rhs
        }),
        (op, reg(), reg(), -32i64..32).prop_map(|(op, dst, lhs, imm)| Inst::BinImm {
            op,
            dst,
            lhs,
            imm
        }),
    ];
    vec(inst, 0..40)
}

/// A program with a leaf call, loops, sanitized memory traffic, and a
/// final memory checksum — all fed by the random body.
fn build(body: &[Inst], nt_some: bool) -> Module {
    let mut m = Module::new("diff");
    let data = m.add_global_full(pir::Global::with_words(
        "data",
        (0..WORDS).map(|i| i * 131 + 17).collect(),
    ));
    let out = m.add_global("out", 64);

    // Leaf: mix(a, b) = (a ^ b) * K + b
    let mut leaf = FunctionBuilder::new("mix", 2);
    let x = leaf.bin(BinOp::Xor, leaf.param(0), leaf.param(1));
    let y = leaf.mul_imm(x, 0x9e3779b97f4a7c15u64 as i64);
    let z = leaf.add(y, leaf.param(1));
    leaf.ret(Some(z));
    let leaf_id = m.add_function(leaf.finish());

    let mut b = FunctionBuilder::new("main", 0);
    while b.fresh().0 < NREGS - 1 {}
    let base = b.global_addr(data);
    let outa = b.global_addr(out);
    let locality = if nt_some {
        Locality::NonTemporal
    } else {
        Locality::Normal
    };
    b.counted_loop(0, 5, 1, |bl, i| {
        for inst in body {
            bl.push(inst.clone());
        }
        // Sanitized in-bounds load/store pair.
        let idx = bl.rem_imm(Reg(0), WORDS);
        let idx2 = bl.bin(BinOp::Add, idx, i);
        let idx3 = bl.rem_imm(idx2, WORDS);
        let pos = bl.mul_imm(idx3, 8);
        let pos2 = bl.add_imm(pos, WORDS * 8);
        let pos3 = bl.rem_imm(pos2, WORDS * 8);
        let addr = bl.add(base, pos3);
        let v = bl.load(addr, 0, locality);
        let mixed = bl.call(leaf_id, &[v, i]);
        bl.store(addr, 0, mixed);
        bl.add_into(Reg(1), Reg(1), mixed);
    });
    // Checksum registers into out[0].
    let acc = b.const_(0x5bd1e995);
    for r in 0..NREGS {
        b.bin_into(BinOp::Xor, acc, acc, Reg(r));
        b.bin_imm_into(BinOp::Mul, acc, acc, 0x100000001b3u64 as i64);
    }
    b.store(outa, 0, acc);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.set_entry(f);
    m
}

/// Runs the compiled image on the machine, returning final data memory.
fn run_compiled(m: &Module, opts: Options) -> (Vec<u8>, Vec<u64>) {
    let out = Compiler::new(opts).compile(m).expect("compile");
    let img = out.image;
    let global_addrs: Vec<u64> = img.globals.iter().map(|g| g.addr).collect();
    let cfg = MachineConfig::small();
    let mut mem = MemorySystem::new(&cfg);
    let mut counters = PerfCounters::default();
    let mut ctx = ExecContext::new(img.entry, 1, img.meta.map_or(0, |d| d.evt_base));
    let mut data = img.data.clone();
    let mut blocks = machine::BlockCache::new();
    let mut env = ExecEnv {
        text: &img.text,
        text_gen: 0,
        blocks: &mut blocks,
        data: &mut data,
        mem: &mut mem,
        core: 0,
        counters: &mut counters,
        costs: CostModel::default(),
    };
    let res = machine::exec::run(&mut ctx, &mut env, 100_000_000);
    assert_eq!(
        res.stop,
        machine::StopReason::Halted,
        "compiled program must halt"
    );
    (data, global_addrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpreter_and_machine_agree(body in arb_body(), nt in any::<bool>()) {
        let m = build(&body, nt);
        // Compile plainly to learn the layout, run on the machine.
        let (machine_data, addrs) = run_compiled(&m, Options::plain());
        // Interpret with the same layout.
        let interp = pir::interp::run(&m, &addrs, machine_data.len(), 50_000_000)
            .expect("interpret");
        // Compare every global byte-for-byte (the rest of the data
        // segment holds pcc metadata the interpreter does not model).
        for (g, addr) in m.globals().iter().zip(&addrs) {
            let a = *addr as usize;
            let len = g.size() as usize;
            prop_assert_eq!(
                &interp.data[a..a + len],
                &machine_data[a..a + len],
                "global {} diverged",
                g.name()
            );
        }
    }

    #[test]
    fn all_pipelines_agree_with_the_interpreter(
        body in arb_body(),
        protean in any::<bool>(),
        optimize in any::<bool>(),
    ) {
        let m = build(&body, false);
        let opts = Options {
            protean,
            edge_policy: pcc::EdgePolicy::MultiBlockCallees,
            embed_ir: protean,
            optimize,
            ..Options::protean()
        };
        let (machine_data, addrs) = run_compiled(&m, opts);
        let interp = pir::interp::run(&m, &addrs, machine_data.len(), 50_000_000)
            .expect("interpret");
        let out_addr = addrs[1] as usize;
        prop_assert_eq!(
            &interp.data[out_addr..out_addr + 8],
            &machine_data[out_addr..out_addr + 8],
            "checksum diverged (protean={}, optimize={})",
            protean,
            optimize
        );
    }
}
