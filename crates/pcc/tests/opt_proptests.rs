//! Property-based correctness tests: random PIR programs must compute
//! identical results before and after the scalar optimization pipeline,
//! and compile to valid images under every option combination.

use proptest::collection::vec;
use proptest::prelude::*;

use machine::{CostModel, ExecContext, ExecEnv, MachineConfig, MemorySystem, PerfCounters};
use pcc::{Compiler, EdgePolicy, Options};
use pir::{BinOp, FunctionBuilder, Inst, Locality, Module, Reg};

const NREGS: u32 = 12;
const DATA_WORDS: i64 = 64;

/// Strategy producing straight-line arithmetic (+ memory ops confined to
/// a small in-bounds buffer).
fn arb_body() -> impl Strategy<Value = Vec<Inst>> {
    let reg = || (0..NREGS).prop_map(Reg);
    let op = (0usize..BinOp::ALL.len()).prop_map(|i| BinOp::ALL[i]);
    let inst = prop_oneof![
        (reg(), -1000i64..1000).prop_map(|(dst, value)| Inst::Const { dst, value }),
        (op.clone(), reg(), reg(), reg()).prop_map(|(op, dst, lhs, rhs)| Inst::Bin {
            op,
            dst,
            lhs,
            rhs
        }),
        (op, reg(), reg(), -64i64..64).prop_map(|(op, dst, lhs, imm)| Inst::BinImm {
            op,
            dst,
            lhs,
            imm
        }),
        // Copy shapes the propagation pass cares about.
        (reg(), reg()).prop_map(|(dst, lhs)| Inst::BinImm {
            op: BinOp::Add,
            dst,
            lhs,
            imm: 0
        }),
    ];
    vec(inst, 0..60)
}

/// Builds a runnable module: the random body runs inside a loop over a
/// small buffer, with address registers forced in-bounds before each
/// memory access, and a final checksum of all registers stored to `out`.
fn build_module(body: &[Inst], with_mem: bool) -> Module {
    let mut m = Module::new("prop");
    let data = m.add_global_full(pir::Global::with_words(
        "data",
        (0..DATA_WORDS).map(|i| i * 31 + 7).collect(),
    ));
    let out = m.add_global("out", 64);
    let mut b = FunctionBuilder::new("main", 0);
    // Reserve the register range the generated instructions use.
    while b.fresh().0 < NREGS - 1 {}
    let base = b.global_addr(data);
    let outa = b.global_addr(out);
    b.counted_loop(0, 4, 1, |bl, i| {
        for inst in body {
            bl.push(inst.clone());
        }
        if with_mem {
            // One in-bounds load+store per iteration using a sanitized
            // index derived from r0.
            let idx = bl.rem_imm(Reg(0), DATA_WORDS);
            let idx2 = bl.bin(BinOp::Mul, idx, i); // mild variability
            let idx3 = bl.rem_imm(idx2, DATA_WORDS);
            let pos = bl.bin_imm(BinOp::Mul, idx3, 8);
            // rem can be negative; fold into range.
            let pos2 = bl.bin_imm(BinOp::Add, pos, DATA_WORDS * 8);
            let pos3 = bl.rem_imm(pos2, DATA_WORDS * 8);
            let addr = bl.add(base, pos3);
            let v = bl.load(addr, 0, Locality::Normal);
            bl.add_into(Reg(1), Reg(1), v);
            bl.store(addr, 0, Reg(1));
        }
    });
    // Checksum every generated register into out[0].
    let acc = b.const_(0);
    for r in 0..NREGS {
        b.bin_into(BinOp::Xor, acc, acc, Reg(r));
        b.bin_imm_into(BinOp::Mul, acc, acc, 1099511628211u64 as i64);
    }
    b.store(outa, 0, acc);
    b.ret(None);
    let f = m.add_function(b.finish());
    m.set_entry(f);
    m
}

/// Compiles and runs a module to completion, returning the checksum.
fn run(m: &Module, opts: Options) -> i64 {
    let img = Compiler::new(opts).compile(m).expect("compile").image;
    let cfg = MachineConfig::small();
    let mut mem = MemorySystem::new(&cfg);
    let mut counters = PerfCounters::default();
    let mut ctx = ExecContext::new(img.entry, 1, img.meta.map_or(0, |d| d.evt_base));
    let mut data = img.data.clone();
    let mut blocks = machine::BlockCache::new();
    let mut env = ExecEnv {
        text: &img.text,
        text_gen: 0,
        blocks: &mut blocks,
        data: &mut data,
        mem: &mut mem,
        core: 0,
        counters: &mut counters,
        costs: CostModel::default(),
    };
    let res = machine::exec::run(&mut ctx, &mut env, 50_000_000);
    assert_eq!(
        res.stop,
        machine::StopReason::Halted,
        "program must finish: {res:?}"
    );
    let addr = img.global_by_name("out").unwrap().addr as usize;
    i64::from_le_bytes(data[addr..addr + 8].try_into().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimization_preserves_results(body in arb_body(), with_mem in any::<bool>()) {
        let m = build_module(&body, with_mem);
        let baseline = run(&m, Options::plain());
        let optimized = run(&m, Options::plain().with_optimization());
        prop_assert_eq!(baseline, optimized, "optimization changed program semantics");
    }

    #[test]
    fn optimized_modules_stay_valid(body in arb_body()) {
        let mut m = build_module(&body, true);
        pcc::optimize_module(&mut m);
        prop_assert!(pir::verify::verify_module(&m).is_ok());
    }

    #[test]
    fn protean_and_plain_agree_on_random_programs(body in arb_body(), with_mem in any::<bool>()) {
        let m = build_module(&body, with_mem);
        let plain = run(&m, Options::plain());
        let protean = run(&m, Options::protean());
        prop_assert_eq!(plain, protean, "virtualization changed program semantics");
    }

    #[test]
    fn all_option_combinations_produce_valid_images(
        body in arb_body(),
        protean in any::<bool>(),
        optimize in any::<bool>(),
        policy_idx in 0usize..3,
    ) {
        let policy = [EdgePolicy::Never, EdgePolicy::MultiBlockCallees, EdgePolicy::AllCalls]
            [policy_idx];
        let m = build_module(&body, true);
        let opts =
            Options { protean, edge_policy: policy, embed_ir: protean, optimize, ..Options::protean() };
        let img = Compiler::new(opts).compile(&m).expect("compile").image;
        prop_assert_eq!(img.validate(), Ok(()));
    }

    #[test]
    fn optimization_never_grows_code(body in arb_body()) {
        let m = build_module(&body, true);
        let before = Compiler::new(Options::plain()).compile(&m).unwrap().image.text_len();
        let after = Compiler::new(Options::plain().with_optimization())
            .compile(&m)
            .unwrap()
            .image
            .text_len();
        prop_assert!(after <= before, "optimization grew code: {} -> {}", before, after);
    }
}
