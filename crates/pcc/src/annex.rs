//! The embedded metadata blob: serialized IR plus link annex.
//!
//! The paper embeds the program's IR in the data region so the runtime
//! compiler can perform "rich analysis and transformations online". To
//! *relink* a recompiled function into the running process, the runtime
//! also needs the static link facts; we bundle them with the IR as a
//! **link annex**: function text addresses, per-function EVT slots, global
//! addresses, and the EVT base. The whole bundle is compressed with
//! [`pir::compress`].

use std::error::Error;
use std::fmt;

use pir::absint::{OsrCertificate, OsrLiveSlot};
use pir::compress::{compress, decompress, DecompressError};
use pir::encode::{decode_module, encode_module, DecodeError};
use pir::{BlockId, FuncId, GlobalId, Interval, Module, PtClass, Reg, TransferRecipe};

/// Static link facts the runtime compiler needs to lower a function
/// variant against the original image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkInfo {
    /// Text address of each function body, indexed by [`pir::FuncId`].
    pub func_addrs: Vec<u32>,
    /// EVT slot of each function (None = calls to it are direct).
    pub func_evt_slot: Vec<Option<u32>>,
    /// Data address of each global, indexed by [`pir::GlobalId`].
    pub global_addrs: Vec<u64>,
    /// Data address of EVT slot 0.
    pub evt_base: u64,
}

impl LinkInfo {
    /// The EVT cell address for `func`, if its edges are virtualized.
    pub fn evt_cell(&self, func: pir::FuncId) -> Option<u64> {
        self.func_evt_slot[func.index()].map(|slot| self.evt_base + 8 * u64::from(slot))
    }
}

/// The full embedded bundle: the module IR plus the link annex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmbeddedMeta {
    /// The program's IR, exactly as compiled.
    pub module: Module,
    /// Link facts for relinking variants.
    pub link: LinkInfo,
    /// OSR-point certificates for every certified loop header
    /// ([`pir::absint::certify_module`] output, certificates only). The
    /// future OSR runtime (ROADMAP item 3) reads these to decide where a
    /// running frame may migrate into a variant. Empty when the module was
    /// compiled without protean support or by an older `pcc`.
    pub osr: Vec<OsrCertificate>,
    /// Proved OSR transfer recipes ([`pir::prove_osr_transfer`] output),
    /// one per certificate whose transfer the prover could close,
    /// derived against the module itself (identity remap). The safety
    /// gate revalidates them per variant; the runtime half of ROADMAP
    /// item 3 consumes them verbatim. Empty for pre-transfer blobs.
    pub osr_recipes: Vec<TransferRecipe>,
}

/// Failure to decode an embedded metadata blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaError {
    /// Decompression failed.
    Decompress(DecompressError),
    /// IR decode failed.
    Module(DecodeError),
    /// The annex section was malformed.
    BadAnnex,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::Decompress(e) => write!(f, "decompressing metadata: {e}"),
            MetaError::Module(e) => write!(f, "decoding embedded IR: {e}"),
            MetaError::BadAnnex => write!(f, "malformed link annex"),
        }
    }
}

impl Error for MetaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MetaError::Decompress(e) => Some(e),
            MetaError::Module(e) => Some(e),
            MetaError::BadAnnex => None,
        }
    }
}

fn put_varu(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Zigzag-folds a signed value so small magnitudes (of either sign)
/// stay short under the varint coding. Interval bounds are often exact
/// small constants or `i64::MIN`/`MAX` sentinels; both shapes code well.
fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn read_varu(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl EmbeddedMeta {
    /// Serializes and compresses the bundle into the blob `pcc` places in
    /// the data region.
    pub fn to_blob(&self) -> Vec<u8> {
        let module_bytes = encode_module(&self.module);
        let mut raw = Vec::with_capacity(module_bytes.len() + 256);
        put_varu(&mut raw, module_bytes.len() as u64);
        raw.extend_from_slice(&module_bytes);
        put_varu(&mut raw, self.link.func_addrs.len() as u64);
        for a in &self.link.func_addrs {
            put_varu(&mut raw, u64::from(*a));
        }
        for s in &self.link.func_evt_slot {
            match s {
                Some(slot) => put_varu(&mut raw, u64::from(*slot) + 1),
                None => put_varu(&mut raw, 0),
            }
        }
        put_varu(&mut raw, self.link.global_addrs.len() as u64);
        for a in &self.link.global_addrs {
            put_varu(&mut raw, *a);
        }
        put_varu(&mut raw, self.link.evt_base);
        put_varu(&mut raw, self.osr.len() as u64);
        for cert in &self.osr {
            put_varu(&mut raw, u64::from(cert.func.0));
            put_varu(&mut raw, u64::from(cert.header.0));
            put_varu(&mut raw, u64::from(cert.loop_depth));
            put_varu(&mut raw, cert.live.len() as u64);
            for slot in &cert.live {
                put_varu(&mut raw, u64::from(slot.reg.0));
                put_varu(&mut raw, zigzag(slot.range.lo));
                put_varu(&mut raw, zigzag(slot.range.hi));
                match slot.class {
                    PtClass::NotAddr => put_varu(&mut raw, 0),
                    PtClass::Unknown => put_varu(&mut raw, 1),
                    PtClass::Global(g) => {
                        put_varu(&mut raw, 2);
                        put_varu(&mut raw, u64::from(g.0));
                    }
                    PtClass::Param(p) => {
                        put_varu(&mut raw, 3);
                        put_varu(&mut raw, u64::from(p));
                    }
                }
            }
        }
        put_varu(&mut raw, self.osr_recipes.len() as u64);
        for r in &self.osr_recipes {
            put_varu(&mut raw, u64::from(r.func.0));
            put_varu(&mut raw, u64::from(r.baseline_header.0));
            put_varu(&mut raw, u64::from(r.variant_header.0));
            put_varu(&mut raw, r.moves.len() as u64);
            for (dst, src) in &r.moves {
                put_varu(&mut raw, u64::from(dst.0));
                put_varu(&mut raw, u64::from(src.0));
            }
            put_varu(&mut raw, r.consts.len() as u64);
            for (dst, value) in &r.consts {
                put_varu(&mut raw, u64::from(dst.0));
                put_varu(&mut raw, zigzag(*value));
            }
        }
        compress(&raw)
    }

    /// Decompresses and decodes a blob produced by [`Self::to_blob`].
    ///
    /// # Errors
    ///
    /// Returns a [`MetaError`] describing the first malformation.
    pub fn from_blob(blob: &[u8]) -> Result<EmbeddedMeta, MetaError> {
        let raw = decompress(blob).map_err(MetaError::Decompress)?;
        let mut pos = 0usize;
        let mlen = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)? as usize;
        if pos + mlen > raw.len() {
            return Err(MetaError::BadAnnex);
        }
        let module = decode_module(&raw[pos..pos + mlen]).map_err(MetaError::Module)?;
        pos += mlen;
        let nfuncs = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)? as usize;
        if nfuncs != module.functions().len() {
            return Err(MetaError::BadAnnex);
        }
        let mut func_addrs = Vec::with_capacity(nfuncs);
        for _ in 0..nfuncs {
            func_addrs.push(read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)? as u32);
        }
        let mut func_evt_slot = Vec::with_capacity(nfuncs);
        for _ in 0..nfuncs {
            let v = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
            func_evt_slot.push(if v == 0 { None } else { Some((v - 1) as u32) });
        }
        let nglobals = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)? as usize;
        if nglobals != module.globals().len() {
            return Err(MetaError::BadAnnex);
        }
        let mut global_addrs = Vec::with_capacity(nglobals);
        for _ in 0..nglobals {
            global_addrs.push(read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?);
        }
        let evt_base = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
        // Blobs written before the OSR section simply end here; treat them
        // as carrying no certificates rather than rejecting them.
        let mut osr = Vec::new();
        if pos != raw.len() {
            let ncerts = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
            for _ in 0..ncerts {
                let func = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                if func as usize >= module.functions().len() {
                    return Err(MetaError::BadAnnex);
                }
                let func = FuncId(func as u32);
                let header = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                if header as usize >= module.function(func).blocks().len() {
                    return Err(MetaError::BadAnnex);
                }
                let loop_depth = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)? as u32;
                let nlive = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                let mut live = Vec::new();
                for _ in 0..nlive {
                    let reg = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                    if reg as usize >= module.function(func).reg_count() as usize {
                        return Err(MetaError::BadAnnex);
                    }
                    let lo = unzigzag(read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?);
                    let hi = unzigzag(read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?);
                    if lo > hi {
                        return Err(MetaError::BadAnnex);
                    }
                    let class = match read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)? {
                        0 => PtClass::NotAddr,
                        1 => PtClass::Unknown,
                        2 => {
                            let g = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                            if g as usize >= module.globals().len() {
                                return Err(MetaError::BadAnnex);
                            }
                            PtClass::Global(GlobalId(g as u32))
                        }
                        3 => {
                            let p = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                            if p >= u64::from(module.function(func).params()) {
                                return Err(MetaError::BadAnnex);
                            }
                            PtClass::Param(p as u32)
                        }
                        _ => return Err(MetaError::BadAnnex),
                    };
                    live.push(OsrLiveSlot {
                        reg: Reg(reg as u32),
                        range: Interval { lo, hi },
                        class,
                    });
                }
                osr.push(OsrCertificate {
                    func,
                    header: BlockId(header as u32),
                    loop_depth,
                    live,
                });
            }
        }
        // Likewise, blobs written before the transfer-recipe section end
        // after the certificates.
        let mut osr_recipes = Vec::new();
        if pos != raw.len() {
            let nrecipes = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
            for _ in 0..nrecipes {
                let func = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                if func as usize >= module.functions().len() {
                    return Err(MetaError::BadAnnex);
                }
                let func = FuncId(func as u32);
                let f = module.function(func);
                let nblocks = f.blocks().len() as u64;
                let nregs = u64::from(f.reg_count().max(f.params()));
                let baseline_header = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                let variant_header = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                if baseline_header >= nblocks || variant_header >= nblocks {
                    return Err(MetaError::BadAnnex);
                }
                let nmoves = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                let mut moves = Vec::new();
                for _ in 0..nmoves {
                    let dst = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                    let src = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                    if dst >= nregs || src >= nregs {
                        return Err(MetaError::BadAnnex);
                    }
                    moves.push((Reg(dst as u32), Reg(src as u32)));
                }
                let nconsts = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                let mut consts = Vec::new();
                for _ in 0..nconsts {
                    let dst = read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?;
                    if dst >= nregs {
                        return Err(MetaError::BadAnnex);
                    }
                    let value = unzigzag(read_varu(&raw, &mut pos).ok_or(MetaError::BadAnnex)?);
                    consts.push((Reg(dst as u32), value));
                }
                osr_recipes.push(TransferRecipe {
                    func,
                    baseline_header: BlockId(baseline_header as u32),
                    variant_header: BlockId(variant_header as u32),
                    moves,
                    consts,
                });
            }
        }
        if pos != raw.len() {
            return Err(MetaError::BadAnnex);
        }
        Ok(EmbeddedMeta {
            module,
            link: LinkInfo {
                func_addrs,
                func_evt_slot,
                global_addrs,
                evt_base,
            },
            osr,
            osr_recipes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::FunctionBuilder;

    fn sample() -> EmbeddedMeta {
        let mut m = Module::new("s");
        m.add_global("a", 64);
        m.add_global("b", 8);
        let mut f = FunctionBuilder::new("f", 1);
        f.ret(None);
        m.add_function(f.finish());
        let mut g = FunctionBuilder::new("g", 0);
        g.counted_loop(0, 4, 1, |b, i| {
            let _ = b.add_imm(i, 1);
        });
        g.ret(None);
        let gid = m.add_function(g.finish());
        m.set_entry(gid);
        // Exercise every slot-class tag and both interval shapes.
        let osr = vec![
            OsrCertificate {
                func: FuncId(0),
                header: BlockId(0),
                loop_depth: 1,
                live: vec![OsrLiveSlot {
                    reg: Reg(0),
                    range: Interval { lo: -3, hi: 3 },
                    class: PtClass::Param(0),
                }],
            },
            OsrCertificate {
                func: FuncId(1),
                header: BlockId(1),
                loop_depth: 1,
                live: vec![
                    OsrLiveSlot {
                        reg: Reg(0),
                        range: Interval { lo: 0, hi: 4 },
                        class: PtClass::NotAddr,
                    },
                    OsrLiveSlot {
                        reg: Reg(1),
                        range: Interval::TOP,
                        class: PtClass::Global(GlobalId(1)),
                    },
                    OsrLiveSlot {
                        reg: Reg(2),
                        range: Interval {
                            lo: i64::MIN,
                            hi: 0,
                        },
                        class: PtClass::Unknown,
                    },
                ],
            },
        ];
        let osr_recipes = vec![TransferRecipe {
            func: FuncId(1),
            baseline_header: BlockId(1),
            variant_header: BlockId(1),
            moves: vec![(Reg(0), Reg(0)), (Reg(1), Reg(2))],
            consts: vec![(Reg(2), -7)],
        }];
        EmbeddedMeta {
            module: m,
            link: LinkInfo {
                func_addrs: vec![0, 10],
                func_evt_slot: vec![None, Some(0)],
                global_addrs: vec![64, 128],
                evt_base: 192,
            },
            osr,
            osr_recipes,
        }
    }

    #[test]
    fn blob_roundtrip() {
        let meta = sample();
        let blob = meta.to_blob();
        let back = EmbeddedMeta::from_blob(&blob).expect("decode");
        assert_eq!(back, meta);
    }

    #[test]
    fn evt_cell_lookup() {
        let meta = sample();
        assert_eq!(meta.link.evt_cell(pir::FuncId(0)), None);
        assert_eq!(meta.link.evt_cell(pir::FuncId(1)), Some(192));
    }

    #[test]
    fn corrupt_blob_rejected_cleanly() {
        let meta = sample();
        let mut blob = meta.to_blob();
        for i in 0..blob.len() {
            let mut copy = blob.clone();
            copy[i] ^= 0xff;
            let _ = EmbeddedMeta::from_blob(&copy); // must not panic
        }
        blob.truncate(blob.len() / 2);
        assert!(EmbeddedMeta::from_blob(&blob).is_err());
    }

    #[test]
    fn annex_func_count_must_match_module() {
        let mut meta = sample();
        meta.link.func_addrs.push(99);
        meta.link.func_evt_slot.push(None);
        // Manually build a blob with the inconsistent annex. to_blob will
        // happily encode it; decode must reject.
        let blob = meta.to_blob();
        assert_eq!(EmbeddedMeta::from_blob(&blob), Err(MetaError::BadAnnex));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!MetaError::BadAnnex.to_string().is_empty());
    }

    #[test]
    fn pre_osr_blob_still_decodes() {
        // A blob written by a pcc predating the OSR section ends right
        // after evt_base. Reconstruct that wire format by hand and check
        // it decodes to an empty certificate list.
        let meta = sample();
        let module_bytes = pir::encode::encode_module(&meta.module);
        let mut raw = Vec::new();
        put_varu(&mut raw, module_bytes.len() as u64);
        raw.extend_from_slice(&module_bytes);
        put_varu(&mut raw, meta.link.func_addrs.len() as u64);
        for a in &meta.link.func_addrs {
            put_varu(&mut raw, u64::from(*a));
        }
        for s in &meta.link.func_evt_slot {
            put_varu(&mut raw, s.map_or(0, |slot| u64::from(slot) + 1));
        }
        put_varu(&mut raw, meta.link.global_addrs.len() as u64);
        for a in &meta.link.global_addrs {
            put_varu(&mut raw, *a);
        }
        put_varu(&mut raw, meta.link.evt_base);
        let blob = pir::compress::compress(&raw);
        let back = EmbeddedMeta::from_blob(&blob).expect("old blob decodes");
        assert_eq!(back.module, meta.module);
        assert_eq!(back.link, meta.link);
        assert!(back.osr.is_empty());
        assert!(back.osr_recipes.is_empty());
    }

    #[test]
    fn pre_transfer_blob_still_decodes() {
        // A blob from the certificate era (PR 6) ends right after the
        // certs section, with no recipe section. Reconstruct it by
        // encoding with no recipes and truncating the recipe count.
        let mut meta = sample();
        meta.osr_recipes.clear();
        let blob = meta.to_blob();
        let mut raw = pir::compress::decompress(&blob).expect("own blob");
        assert_eq!(raw.last(), Some(&0), "empty recipe section is one 0 byte");
        raw.pop();
        let back =
            EmbeddedMeta::from_blob(&pir::compress::compress(&raw)).expect("cert-era blob decodes");
        assert_eq!(back.osr, meta.osr);
        assert!(back.osr_recipes.is_empty());
    }

    #[test]
    fn out_of_range_recipe_rejected() {
        for bad in [
            |m: &mut EmbeddedMeta| m.osr_recipes[0].func = FuncId(9),
            |m: &mut EmbeddedMeta| m.osr_recipes[0].baseline_header = BlockId(9),
            |m: &mut EmbeddedMeta| m.osr_recipes[0].variant_header = BlockId(9),
            |m: &mut EmbeddedMeta| m.osr_recipes[0].moves[0].0 = Reg(200),
            |m: &mut EmbeddedMeta| m.osr_recipes[0].moves[0].1 = Reg(200),
            |m: &mut EmbeddedMeta| m.osr_recipes[0].consts[0].0 = Reg(200),
        ] {
            let mut meta = sample();
            bad(&mut meta);
            assert_eq!(
                EmbeddedMeta::from_blob(&meta.to_blob()),
                Err(MetaError::BadAnnex)
            );
        }
    }

    #[test]
    fn out_of_range_certificate_rejected() {
        for bad in [
            |m: &mut EmbeddedMeta| m.osr[0].func = FuncId(9),
            |m: &mut EmbeddedMeta| m.osr[0].header = BlockId(9),
            |m: &mut EmbeddedMeta| m.osr[0].live[0].reg = Reg(200),
            |m: &mut EmbeddedMeta| m.osr[0].live[0].class = PtClass::Global(GlobalId(7)),
            |m: &mut EmbeddedMeta| m.osr[0].live[0].class = PtClass::Param(3),
            |m: &mut EmbeddedMeta| m.osr[0].live[0].range = Interval { lo: 5, hi: -5 },
        ] {
            let mut meta = sample();
            bad(&mut meta);
            assert_eq!(
                EmbeddedMeta::from_blob(&meta.to_blob()),
                Err(MetaError::BadAnnex)
            );
        }
    }

    #[test]
    fn real_certificates_roundtrip() {
        let mut meta = sample();
        meta.osr = pir::absint::certify_module(&meta.module)
            .into_iter()
            .filter_map(|d| d.certificate().cloned())
            .collect();
        assert!(!meta.osr.is_empty(), "counted loop should certify");
        let back = EmbeddedMeta::from_blob(&meta.to_blob()).expect("decode");
        assert_eq!(back, meta);
    }
}
