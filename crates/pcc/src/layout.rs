//! Data-segment layout: meta root, globals, EVT, and embedded IR blob.

use pir::Module;
use visa::META_ROOT_SIZE;

/// Alignment for globals and metadata regions (a cache line, so distinct
/// objects never share lines).
pub const ALIGN: u64 = 64;

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

/// Resolved addresses of everything in the data segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataLayout {
    /// Address of each global, indexed by [`pir::GlobalId`].
    pub global_addrs: Vec<u64>,
    /// Address of EVT slot 0 (meaningful when `evt_len > 0`).
    pub evt_base: u64,
    /// Number of EVT slots.
    pub evt_len: u32,
    /// Address of the compressed IR blob (meaningful when `ir_len > 0`).
    pub ir_addr: u64,
    /// Length of the compressed IR blob.
    pub ir_len: u64,
    /// Total data-segment size in bytes.
    pub total_size: u64,
}

/// Computes the data layout for `module` with `evt_len` EVT slots and an
/// IR blob of `ir_len` bytes.
///
/// Layout order: meta root header, globals (line-aligned), EVT, IR blob,
/// plus a trailing guard line.
pub fn compute(module: &Module, evt_len: u32, ir_len: u64) -> DataLayout {
    let mut cursor = align_up(META_ROOT_SIZE, ALIGN);
    let mut global_addrs = Vec::with_capacity(module.globals().len());
    for g in module.globals() {
        global_addrs.push(cursor);
        cursor = align_up(cursor + g.size().max(8), ALIGN);
    }
    let evt_base = cursor;
    cursor = align_up(cursor + 8 * u64::from(evt_len), ALIGN);
    let ir_addr = cursor;
    cursor = align_up(cursor + ir_len, ALIGN);
    let total_size = cursor + ALIGN; // trailing guard line
    DataLayout {
        global_addrs,
        evt_base,
        evt_len,
        ir_addr,
        ir_len,
        total_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::Module;

    fn module_with_globals(sizes: &[u64]) -> Module {
        let mut m = Module::new("t");
        for (i, s) in sizes.iter().enumerate() {
            m.add_global(format!("g{i}"), *s);
        }
        m
    }

    #[test]
    fn globals_are_line_aligned_and_disjoint() {
        let m = module_with_globals(&[100, 8, 64]);
        let l = compute(&m, 0, 0);
        assert_eq!(l.global_addrs.len(), 3);
        for (i, addr) in l.global_addrs.iter().enumerate() {
            assert_eq!(addr % ALIGN, 0, "global {i} misaligned");
            assert!(*addr >= META_ROOT_SIZE);
        }
        // Disjointness.
        assert!(l.global_addrs[0] + 100 <= l.global_addrs[1]);
        assert!(l.global_addrs[1] + 8 <= l.global_addrs[2]);
    }

    #[test]
    fn evt_and_ir_after_globals() {
        let m = module_with_globals(&[128]);
        let l = compute(&m, 4, 1000);
        assert!(l.evt_base >= l.global_addrs[0] + 128);
        assert_eq!(l.evt_base % ALIGN, 0);
        assert!(l.ir_addr >= l.evt_base + 32);
        assert_eq!(l.ir_addr % ALIGN, 0);
        assert!(l.total_size >= l.ir_addr + 1000);
    }

    #[test]
    fn empty_module_layout_is_minimal_but_valid() {
        let m = Module::new("e");
        let l = compute(&m, 0, 0);
        assert!(l.total_size >= META_ROOT_SIZE);
        assert_eq!(l.total_size % ALIGN, 0);
    }

    #[test]
    fn zero_size_global_gets_space() {
        let m = module_with_globals(&[0]);
        let l = compute(&m, 0, 0);
        assert_eq!(l.global_addrs.len(), 1);
        assert!(l.total_size > l.global_addrs[0]);
    }
}
