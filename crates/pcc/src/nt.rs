//! Non-temporal hint assignments — the paper's variant bit vectors.
//!
//! Section IV-B: "We refer to each such program variant as a bit vector
//! M = ⟨M1 … MN⟩, where N is the number of loads in the host program's
//! code and Mi ∈ {0,1} represents the absence or presence of a
//! non-temporal cache hint associated with the ith load."
//!
//! [`NtAssignment`] is that bit vector, keyed by [`pir::LoadSiteId`] so it
//! stays valid as search heuristics prune and reorder the site list.

use std::collections::BTreeSet;

use pir::{Function, Inst, LoadSiteId, Locality};

/// The set of load sites carrying a non-temporal hint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NtAssignment {
    sites: BTreeSet<LoadSiteId>,
}

impl NtAssignment {
    /// The all-zeros vector **0** (no hints): maximum cache pressure.
    pub fn none() -> Self {
        NtAssignment::default()
    }

    /// The all-ones vector **1** over the given sites: minimum cache
    /// pressure.
    pub fn all(sites: impl IntoIterator<Item = LoadSiteId>) -> Self {
        NtAssignment {
            sites: sites.into_iter().collect(),
        }
    }

    /// Whether the load at `site` carries a hint.
    pub fn contains(&self, site: LoadSiteId) -> bool {
        self.sites.contains(&site)
    }

    /// Adds a hint. Returns true if it was newly added.
    pub fn insert(&mut self, site: LoadSiteId) -> bool {
        self.sites.insert(site)
    }

    /// Removes a hint. Returns true if it was present.
    pub fn remove(&mut self, site: LoadSiteId) -> bool {
        self.sites.remove(&site)
    }

    /// Flips one bit, as Algorithm 1's `m ← ⟨m1 … !mi … mn⟩` step.
    pub fn flip(&mut self, site: LoadSiteId) {
        if !self.sites.remove(&site) {
            self.sites.insert(site);
        }
    }

    /// Number of hinted sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if no site is hinted (the **0** vector).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates hinted sites in order.
    pub fn iter(&self) -> impl Iterator<Item = LoadSiteId> + '_ {
        self.sites.iter().copied()
    }

    /// Hinted sites within one function.
    pub fn sites_in(&self, func: pir::FuncId) -> Vec<LoadSiteId> {
        self.sites
            .iter()
            .copied()
            .filter(|s| s.func == func)
            .collect()
    }

    /// Produces a copy of `func` (which must be function `fid` of the
    /// module) with load localities set exactly per this assignment:
    /// hinted sites become [`Locality::NonTemporal`], everything else
    /// [`Locality::Normal`].
    pub fn apply_to(&self, func: &Function, fid: pir::FuncId) -> Function {
        let mut out = func.clone();
        for (bi, block) in out.blocks_mut().iter_mut().enumerate() {
            for (ii, inst) in block.insts.iter_mut().enumerate() {
                if let Inst::Load { locality, .. } = inst {
                    let site = LoadSiteId {
                        func: fid,
                        block: pir::BlockId(bi as u32),
                        index: ii as u32,
                    };
                    *locality = if self.contains(site) {
                        Locality::NonTemporal
                    } else {
                        Locality::Normal
                    };
                }
            }
        }
        out
    }
}

impl FromIterator<LoadSiteId> for NtAssignment {
    fn from_iter<I: IntoIterator<Item = LoadSiteId>>(iter: I) -> Self {
        NtAssignment {
            sites: iter.into_iter().collect(),
        }
    }
}

impl Extend<LoadSiteId> for NtAssignment {
    fn extend<I: IntoIterator<Item = LoadSiteId>>(&mut self, iter: I) {
        self.sites.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::{load_sites, FuncId, FunctionBuilder, Module};

    fn two_load_module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global("buf", 1 << 12);
        let mut b = FunctionBuilder::new("f", 0);
        let base = b.global_addr(g);
        let _ = b.load(base, 0, Locality::Normal);
        let _ = b.load(base, 8, Locality::Normal);
        b.ret(None);
        let f = m.add_function(b.finish());
        m.set_entry(f);
        m
    }

    #[test]
    fn flip_toggles() {
        let m = two_load_module();
        let sites: Vec<_> = load_sites(&m).iter().map(|s| s.site).collect();
        let mut a = NtAssignment::none();
        a.flip(sites[0]);
        assert!(a.contains(sites[0]));
        a.flip(sites[0]);
        assert!(!a.contains(sites[0]));
        assert!(a.is_empty());
    }

    #[test]
    fn all_and_none_vectors() {
        let m = two_load_module();
        let sites: Vec<_> = load_sites(&m).iter().map(|s| s.site).collect();
        let one = NtAssignment::all(sites.iter().copied());
        assert_eq!(one.len(), 2);
        assert!(NtAssignment::none().is_empty());
        assert_eq!(one.iter().count(), 2);
    }

    #[test]
    fn apply_sets_localities_exactly() {
        let m = two_load_module();
        let sites: Vec<_> = load_sites(&m).iter().map(|s| s.site).collect();
        let mut a = NtAssignment::none();
        a.insert(sites[1]);
        let f2 = a.apply_to(m.function(FuncId(0)), FuncId(0));
        let locs: Vec<Locality> = f2
            .blocks()
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match i {
                Inst::Load { locality, .. } => Some(*locality),
                _ => None,
            })
            .collect();
        assert_eq!(locs, vec![Locality::Normal, Locality::NonTemporal]);
        // Applying the empty assignment resets everything.
        let f3 = NtAssignment::none().apply_to(&f2, FuncId(0));
        assert_eq!(f3, *m.function(FuncId(0)));
    }

    #[test]
    fn sites_in_filters_by_function() {
        let m = two_load_module();
        let sites: Vec<_> = load_sites(&m).iter().map(|s| s.site).collect();
        let a = NtAssignment::all(sites.iter().copied());
        assert_eq!(a.sites_in(FuncId(0)).len(), 2);
        assert!(a.sites_in(FuncId(5)).is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let m = two_load_module();
        let sites: Vec<_> = load_sites(&m).iter().map(|s| s.site).collect();
        let a: NtAssignment = sites.iter().copied().collect();
        assert_eq!(a.len(), 2);
        let mut b = NtAssignment::none();
        b.extend(sites.iter().copied());
        assert_eq!(a, b);
    }
}
