//! Classic scalar optimizations over PIR.
//!
//! The paper's third design requirement is *transformation power*: "having
//! the ability to apply transformations online that are as powerful as
//! static compilation" (Section I). Beyond the NT-hint transformation,
//! the runtime compiler can therefore run a standard scalar pipeline over
//! the embedded IR before lowering:
//!
//! * [`fold_constants`] — constant folding + algebraic identities,
//! * [`propagate_copies`] — local copy/constant propagation,
//! * [`eliminate_dead_code`] — removal of unobservable instructions,
//! * [`compact_registers`] — dense renumbering of the register file
//!   (smaller activation frames),
//! * [`optimize_function`] / [`optimize_module`] — the pipeline, iterated
//!   to a fixed point.
//!
//! All passes are semantics-preserving on the ISA's wrapping, no-trap
//! arithmetic; the integration tests check checksum equality across
//! optimization levels.

use std::collections::HashMap;

use pir::{BinOp, Function, Inst, Module, Reg, Term};

/// Statistics from one optimization run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Operands rewritten by copy/constant propagation.
    pub propagated: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Registers saved by compaction.
    pub regs_saved: u32,
}

impl OptStats {
    fn merge(&mut self, other: OptStats) {
        self.folded += other.folded;
        self.propagated += other.propagated;
        self.dead_removed += other.dead_removed;
        self.regs_saved += other.regs_saved;
    }

    /// True if the run changed anything.
    pub fn changed(&self) -> bool {
        self.folded + self.propagated + self.dead_removed > 0 || self.regs_saved > 0
    }
}

/// Per-block view of what each register currently holds, for local
/// propagation/folding. Invalidated at block boundaries (no global
/// dataflow needed for the workloads at hand; block-local is sound).
#[derive(Clone, Debug, PartialEq)]
enum Known {
    Const(i64),
    CopyOf(Reg),
}

fn invalidate(map: &mut HashMap<Reg, Known>, dst: Reg) {
    map.remove(&dst);
    // Anything known to be a copy of `dst` is stale now.
    map.retain(|_, v| !matches!(v, Known::CopyOf(r) if *r == dst));
}

/// Folds constant expressions and algebraic identities within blocks.
/// `x + 0`, `x * 1`, `x * 0`, `x & 0`, `x | 0`, `x ^ 0`, `x << 0`,
/// `x >> 0` simplify; `Bin`/`BinImm` over known constants fold to
/// `Const`.
pub fn fold_constants(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    for block in func.blocks_mut() {
        let mut known: HashMap<Reg, Known> = HashMap::new();
        for inst in &mut block.insts {
            let mut replace: Option<Inst> = None;
            match inst {
                Inst::Const { dst, value } => {
                    invalidate(&mut known, *dst);
                    known.insert(*dst, Known::Const(*value));
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    let lv = known.get(lhs).and_then(|k| match k {
                        Known::Const(v) => Some(*v),
                        Known::CopyOf(_) => None,
                    });
                    let rv = known.get(rhs).and_then(|k| match k {
                        Known::Const(v) => Some(*v),
                        Known::CopyOf(_) => None,
                    });
                    if let (Some(a), Some(b)) = (lv, rv) {
                        replace = Some(Inst::Const {
                            dst: *dst,
                            value: op.eval(a, b),
                        });
                        stats.folded += 1;
                    } else if let Some(b) = rv {
                        replace = Some(Inst::BinImm {
                            op: *op,
                            dst: *dst,
                            lhs: *lhs,
                            imm: b,
                        });
                        stats.folded += 1;
                    }
                }
                Inst::BinImm { op, dst, lhs, imm } => {
                    let lv = known.get(lhs).and_then(|k| match k {
                        Known::Const(v) => Some(*v),
                        Known::CopyOf(_) => None,
                    });
                    if let Some(a) = lv {
                        replace = Some(Inst::Const {
                            dst: *dst,
                            value: op.eval(a, *imm),
                        });
                        stats.folded += 1;
                    } else {
                        // Algebraic identities: the result equals lhs.
                        let identity = matches!(
                            (op, *imm),
                            (BinOp::Add, 0)
                                | (BinOp::Sub, 0)
                                | (BinOp::Mul, 1)
                                | (BinOp::Div, 1)
                                | (BinOp::Or, 0)
                                | (BinOp::Xor, 0)
                                | (BinOp::Shl, 0)
                                | (BinOp::Shr, 0)
                        );
                        if identity {
                            // dst = copy of lhs, expressed as `lhs + 0`
                            // then recorded for propagation.
                            replace = Some(Inst::BinImm {
                                op: BinOp::Add,
                                dst: *dst,
                                lhs: *lhs,
                                imm: 0,
                            });
                        }
                    }
                }
                _ => {}
            }
            if let Some(new) = replace {
                *inst = new;
            }
            // Update knowledge AFTER the instruction takes effect.
            match inst {
                Inst::Const { dst, value } => {
                    invalidate(&mut known, *dst);
                    known.insert(*dst, Known::Const(*value));
                }
                Inst::BinImm {
                    op: BinOp::Add,
                    dst,
                    lhs,
                    imm: 0,
                } if dst != lhs => {
                    let src = *lhs;
                    invalidate(&mut known, *dst);
                    match known.get(&src).cloned() {
                        Some(k) => {
                            known.insert(*dst, k);
                        }
                        None => {
                            known.insert(*dst, Known::CopyOf(src));
                        }
                    }
                }
                other => {
                    if let Some(dst) = other.dst() {
                        invalidate(&mut known, dst);
                    }
                }
            }
        }
    }
    stats
}

/// Rewrites register operands through block-local copies (`dst = src + 0`)
/// and materialized constants where an immediate form exists.
pub fn propagate_copies(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    for block in func.blocks_mut() {
        let mut copy_of: HashMap<Reg, Reg> = HashMap::new();
        let resolve = |copies: &HashMap<Reg, Reg>, r: &mut Reg, stats: &mut OptStats| {
            if let Some(src) = copies.get(r) {
                *r = *src;
                stats.propagated += 1;
            }
        };
        for inst in &mut block.insts {
            // Rewrite uses first.
            match inst {
                Inst::Bin { lhs, rhs, .. } => {
                    resolve(&copy_of, lhs, &mut stats);
                    resolve(&copy_of, rhs, &mut stats);
                }
                Inst::BinImm { lhs, .. } => resolve(&copy_of, lhs, &mut stats),
                Inst::Load { base, .. } => resolve(&copy_of, base, &mut stats),
                Inst::Store { base, src, .. } => {
                    resolve(&copy_of, base, &mut stats);
                    resolve(&copy_of, src, &mut stats);
                }
                Inst::Call { args, .. } => {
                    for a in args.iter_mut() {
                        resolve(&copy_of, a, &mut stats);
                    }
                }
                Inst::Report { src, .. } => resolve(&copy_of, src, &mut stats),
                _ => {}
            }
            // Then record/kill definitions.
            match inst {
                Inst::BinImm {
                    op: BinOp::Add,
                    dst,
                    lhs,
                    imm: 0,
                } if dst != lhs => {
                    let (d, s) = (*dst, *lhs);
                    copy_of.remove(&d);
                    copy_of.retain(|_, v| *v != d);
                    // Collapse chains: if s is itself a copy, point at the
                    // root.
                    let root = copy_of.get(&s).copied().unwrap_or(s);
                    copy_of.insert(d, root);
                }
                other => {
                    if let Some(d) = other.dst() {
                        copy_of.remove(&d);
                        copy_of.retain(|_, v| *v != d);
                    }
                }
            }
        }
        // Terminator uses.
        match &mut block.term {
            Term::CondBr { cond, .. } => {
                if let Some(src) = copy_of.get(cond) {
                    *cond = *src;
                    stats.propagated += 1;
                }
            }
            Term::Ret(Some(r)) => {
                if let Some(src) = copy_of.get(r) {
                    *r = *src;
                    stats.propagated += 1;
                }
            }
            _ => {}
        }
    }
    stats
}

/// Removes instructions whose results are never observed. Conservative:
/// loads, stores, calls, reports, and waits are always kept (loads have
/// architectural cache effects the transformations care about).
pub fn eliminate_dead_code(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    // Liveness: a register is live if any instruction or terminator
    // anywhere reads it (flow-insensitive, which is sound for removal of
    // pure instructions).
    let mut used = vec![false; func.reg_count() as usize];
    let mark = |r: &Reg, used: &mut Vec<bool>| {
        used[r.index()] = true;
    };
    for block in func.blocks() {
        for inst in &block.insts {
            match inst {
                Inst::Bin { lhs, rhs, .. } => {
                    mark(lhs, &mut used);
                    mark(rhs, &mut used);
                }
                Inst::BinImm { lhs, .. } => mark(lhs, &mut used),
                Inst::Load { base, .. } => mark(base, &mut used),
                Inst::Store { base, src, .. } => {
                    mark(base, &mut used);
                    mark(src, &mut used);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        mark(a, &mut used);
                    }
                }
                Inst::Report { src, .. } => mark(src, &mut used),
                _ => {}
            }
        }
        match &block.term {
            Term::CondBr { cond, .. } => mark(cond, &mut used),
            Term::Ret(Some(r)) => mark(r, &mut used),
            _ => {}
        }
    }
    for block in func.blocks_mut() {
        let before = block.insts.len();
        block.insts.retain(|inst| match inst {
            Inst::Const { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::GlobalAddr { dst, .. } => used[dst.index()],
            // Loads have cache side effects PC3D relies on; everything
            // else with effects is kept too.
            _ => true,
        });
        stats.dead_removed += before - block.insts.len();
    }
    stats
}

/// Renumbers registers densely (parameters keep their slots). Shrinks the
/// activation frame the virtual ISA's register windows allocate.
pub fn compact_registers(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    let params = func.params();
    let mut mapping: HashMap<Reg, Reg> = HashMap::new();
    let mut next = params;
    let remap = |r: &mut Reg, mapping: &mut HashMap<Reg, Reg>, next: &mut u32| {
        if r.0 < params {
            return; // parameters are pinned by the calling convention
        }
        let new = *mapping.entry(*r).or_insert_with(|| {
            let n = Reg(*next);
            *next += 1;
            n
        });
        *r = new;
    };
    for block in func.blocks_mut() {
        for inst in &mut block.insts {
            match inst {
                Inst::Const { dst, .. } => remap(dst, &mut mapping, &mut next),
                Inst::Bin { dst, lhs, rhs, .. } => {
                    remap(lhs, &mut mapping, &mut next);
                    remap(rhs, &mut mapping, &mut next);
                    remap(dst, &mut mapping, &mut next);
                }
                Inst::BinImm { dst, lhs, .. } => {
                    remap(lhs, &mut mapping, &mut next);
                    remap(dst, &mut mapping, &mut next);
                }
                Inst::Load { dst, base, .. } => {
                    remap(base, &mut mapping, &mut next);
                    remap(dst, &mut mapping, &mut next);
                }
                Inst::Store { base, src, .. } => {
                    remap(base, &mut mapping, &mut next);
                    remap(src, &mut mapping, &mut next);
                }
                Inst::GlobalAddr { dst, .. } => remap(dst, &mut mapping, &mut next),
                Inst::Call { dst, args, .. } => {
                    for a in args.iter_mut() {
                        remap(a, &mut mapping, &mut next);
                    }
                    if let Some(d) = dst {
                        remap(d, &mut mapping, &mut next);
                    }
                }
                Inst::Report { src, .. } => remap(src, &mut mapping, &mut next),
                Inst::Nop | Inst::Wait => {}
            }
        }
        match &mut block.term {
            Term::CondBr { cond, .. } => remap(cond, &mut mapping, &mut next),
            Term::Ret(Some(r)) => remap(r, &mut mapping, &mut next),
            _ => {}
        }
    }
    let old = func.reg_count();
    stats.regs_saved = old.saturating_sub(next);
    func.set_reg_count(next.max(params));
    stats
}

/// Runs the full scalar pipeline on one function, iterating fold +
/// propagate + DCE to a fixed point (bounded), then compacting registers.
pub fn optimize_function(func: &mut Function) -> OptStats {
    let mut total = OptStats::default();
    for _ in 0..8 {
        let mut round = OptStats::default();
        round.merge(fold_constants(func));
        round.merge(propagate_copies(func));
        round.merge(eliminate_dead_code(func));
        let changed = round.changed();
        total.merge(round);
        if !changed {
            break;
        }
    }
    total.merge(compact_registers(func));
    total
}

/// Optimizes every function of a module.
pub fn optimize_module(module: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    for func in module.functions_mut() {
        total.merge(optimize_function(func));
    }
    total
}

/// [`optimize_module`] run stage by stage across the whole module, with
/// the pass-manager invariants (verify + definite assignment) re-checked
/// after **every** stage: each of fold/propagate/DCE per round, then
/// register compaction. The first stage to break the module fails the
/// run with its name attached.
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`](crate::CompileError)
/// naming the offending stage.
pub fn optimize_module_checked(module: &mut Module) -> Result<OptStats, crate::CompileError> {
    // A named per-function rewrite stage.
    type Stage = (&'static str, fn(&mut Function) -> OptStats);
    let checker = crate::invariants::InvariantChecker::for_module(module);
    let stages: [Stage; 3] = [
        ("fold-constants", fold_constants),
        ("propagate-copies", propagate_copies),
        ("eliminate-dead-code", eliminate_dead_code),
    ];
    let mut total = OptStats::default();
    for _ in 0..8 {
        let mut round = OptStats::default();
        for (name, stage) in stages {
            for func in module.functions_mut() {
                round.merge(stage(func));
            }
            checker.check(module, name)?;
        }
        let changed = round.changed();
        total.merge(round);
        if !changed {
            break;
        }
    }
    for func in module.functions_mut() {
        total.merge(compact_registers(func));
    }
    checker.check(module, "compact-registers")?;
    Ok(total)
}

/// [`optimize_module_checked`] plus per-stage translation validation: the
/// module is snapshotted before each stage, and after the stage (and its
/// invariant check) [`pir::equiv::check_module`] must *prove* the new
/// module observationally equivalent to the snapshot. The scalar pipeline
/// never touches loads at all — DCE deliberately keeps them for their
/// cache effects — so the proof must report *countably zero* NT flips:
/// `Some(0)`, with `None` (load structure changed) failing validation.
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`](crate::CompileError) if a
/// stage breaks a structural invariant,
/// [`CompileError::TranslationRefuted`](crate::CompileError) if a stage's
/// output was concretely refuted, or
/// [`CompileError::TranslationUnproved`](crate::CompileError) if it could
/// not be proved equivalent (no counterexample either).
pub fn optimize_module_validated(module: &mut Module) -> Result<OptStats, crate::CompileError> {
    type Stage = (&'static str, fn(&mut Function) -> OptStats);
    let checker = crate::invariants::InvariantChecker::for_module(module);
    let equiv_opts = pir::equiv::EquivOptions::default();
    let validate = |snapshot: &Module,
                    module: &Module,
                    stage: &'static str|
     -> Result<(), crate::CompileError> {
        let report = pir::equiv::check_module(snapshot, module, &equiv_opts);
        // Strictly `Some(0)`: a scalar stage that changed load structure
        // (flips uncountable, `None`) or flipped a locality bit has left
        // its lane even if the result is behaviorally equivalent.
        if report.all_proved() && report.total_nt_flips() == Some(0) {
            Ok(())
        } else if report.first_refutation().is_some() {
            Err(crate::CompileError::TranslationRefuted { stage, report })
        } else {
            Err(crate::CompileError::TranslationUnproved { stage, report })
        }
    };
    let stages: [Stage; 3] = [
        ("fold-constants", fold_constants),
        ("propagate-copies", propagate_copies),
        ("eliminate-dead-code", eliminate_dead_code),
    ];
    let mut total = OptStats::default();
    for _ in 0..8 {
        let mut round = OptStats::default();
        for (name, stage) in stages {
            let snapshot = module.clone();
            for func in module.functions_mut() {
                round.merge(stage(func));
            }
            checker.check(module, name)?;
            validate(&snapshot, module, name)?;
        }
        let changed = round.changed();
        total.merge(round);
        if !changed {
            break;
        }
    }
    let snapshot = module.clone();
    for func in module.functions_mut() {
        total.merge(compact_registers(func));
    }
    checker.check(module, "compact-registers")?;
    validate(&snapshot, module, "compact-registers")?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::verify::verify_function;
    use pir::FunctionBuilder;

    #[test]
    fn folds_constant_chains() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.const_(6);
        let c = b.const_(7);
        let m = b.mul(a, c);
        let n = b.add_imm(m, 0); // identity
        b.ret(Some(n));
        let mut f = b.finish();
        let stats = optimize_function(&mut f);
        assert!(stats.folded >= 1, "{stats:?}");
        // The return value must now be a constant 42 somewhere.
        let has_42 = f
            .blocks()
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .any(|i| matches!(i, Inst::Const { value: 42, .. }));
        assert!(has_42, "6*7 should fold to 42: {f}");
        assert!(verify_function(&f, 1, 0).is_ok());
    }

    #[test]
    fn dce_removes_unused_arithmetic_keeps_loads() {
        let mut b = FunctionBuilder::new("f", 0);
        let base = b.const_(64);
        let _unused = b.add_imm(base, 5); // dead
        let v = b.load(base, 0, pir::Locality::Normal); // kept (cache effects)
        let _unused2 = b.mul_imm(v, 3); // dead
        b.ret(None);
        let mut f = b.finish();
        let before = f.inst_count();
        let stats = optimize_function(&mut f);
        assert!(stats.dead_removed >= 2, "{stats:?}");
        assert!(f.inst_count() < before);
        assert_eq!(f.load_count(), 1, "loads must survive DCE");
    }

    #[test]
    fn register_compaction_shrinks_frames() {
        let mut b = FunctionBuilder::new("f", 1);
        // Burn registers.
        for _ in 0..50 {
            let _ = b.fresh();
        }
        let p = b.param(0);
        let x = b.add_imm(p, 1);
        b.ret(Some(x));
        let mut f = b.finish();
        assert!(f.reg_count() > 50);
        let stats = optimize_function(&mut f);
        assert!(stats.regs_saved > 40, "{stats:?}");
        assert!(f.reg_count() <= 3);
        assert!(verify_function(&f, 1, 0).is_ok());
    }

    #[test]
    fn copy_propagation_rewrites_uses() {
        let mut b = FunctionBuilder::new("f", 1);
        let p = b.param(0);
        let copy = b.add_imm(p, 0); // copy of p
        let r = b.mul_imm(copy, 2);
        b.ret(Some(r));
        let mut f = b.finish();
        let stats = optimize_function(&mut f);
        assert!(stats.propagated >= 1, "{stats:?}");
        // The multiply should now read the parameter directly.
        let reads_param = f.blocks().iter().flat_map(|blk| blk.insts.iter()).any(|i| {
            matches!(
                i,
                Inst::BinImm {
                    op: BinOp::Mul,
                    lhs: Reg(0),
                    ..
                }
            )
        });
        assert!(reads_param, "{f}");
    }

    #[test]
    fn optimization_preserves_executed_semantics() {
        use machine::{CostModel, ExecContext, ExecEnv, MemorySystem, PerfCounters};
        // A program with foldable, propagatable, and dead code computing
        // a checksum into memory; run optimized and unoptimized lowering
        // and compare results.
        let build = || {
            let mut m = pir::Module::new("sem");
            let g = m.add_global("out", 64);
            let mut b = FunctionBuilder::new("main", 0);
            let base = b.global_addr(g);
            let six = b.const_(6);
            let seven = b.const_(7);
            let xx = b.mul(six, seven);
            let copy = b.add_imm(xx, 0);
            let _dead = b.mul_imm(copy, 999);
            let acc = b.const_(0);
            b.counted_loop(0, 10, 1, |bl, i| {
                let t = bl.mul(i, copy);
                bl.add_into(acc, acc, t);
            });
            b.store(base, 0, acc);
            b.ret(None);
            let f = m.add_function(b.finish());
            m.set_entry(f);
            m
        };
        let run = |m: &pir::Module| -> i64 {
            let img = crate::Compiler::new(crate::Options::plain())
                .compile(m)
                .unwrap()
                .image;
            let cfg = machine::MachineConfig::small();
            let mut mem = MemorySystem::new(&cfg);
            let mut counters = PerfCounters::default();
            let mut ctx = ExecContext::new(img.entry, 1, 0);
            let mut data = img.data.clone();
            let mut blocks = machine::BlockCache::new();
            let mut env = ExecEnv {
                text: &img.text,
                text_gen: 0,
                blocks: &mut blocks,
                data: &mut data,
                mem: &mut mem,
                core: 0,
                counters: &mut counters,
                costs: CostModel::default(),
            };
            machine::exec::run(&mut ctx, &mut env, 10_000_000);
            let addr = img.global_by_name("out").unwrap().addr as usize;
            i64::from_le_bytes(data[addr..addr + 8].try_into().unwrap())
        };
        let plain = build();
        let mut optimized = build();
        let stats = optimize_module(&mut optimized);
        assert!(stats.changed());
        assert!(pir::verify::verify_module(&optimized).is_ok());
        assert_eq!(run(&plain), run(&optimized));
        assert_eq!(run(&plain), 42 * 45);
    }

    #[test]
    fn validated_pipeline_proves_every_stage() {
        let mut m = pir::Module::new("sem");
        let g = m.add_global("out", 64);
        let gin = m.add_global_full(pir::Global::with_words(
            "in",
            (0..32).map(|i| (i * 3) as i64).collect(),
        ));
        let mut b = FunctionBuilder::new("main", 0);
        let base = b.global_addr(gin);
        let outa = b.global_addr(g);
        let six = b.const_(6);
        let seven = b.const_(7);
        let xx = b.mul(six, seven);
        let copy = b.add_imm(xx, 0);
        let _dead = b.mul_imm(copy, 999);
        let acc = b.const_(0);
        b.counted_loop(0, 32, 1, |bl, i| {
            let off = bl.shl_imm(i, 3);
            let addr = bl.add(base, off);
            let v = bl.load(addr, 0, pir::Locality::Normal);
            let t = bl.mul(v, copy);
            bl.add_into(acc, acc, t);
        });
        b.store(outa, 0, acc);
        b.ret(None);
        let f = m.add_function(b.finish());
        m.set_entry(f);
        let original = m.clone();
        let stats = optimize_module_validated(&mut m).expect("all stages prove");
        assert!(stats.changed());
        // End-to-end: the final module is also equivalent to the input.
        let report = pir::equiv::check_module(&original, &m, &pir::equiv::EquivOptions::default());
        assert!(report.all_proved(), "{report}");
    }

    #[test]
    fn translation_refutation_names_stage_and_function() {
        // Simulate a miscompiling stage: corrupt a constant and check the
        // error a validated pipeline would surface.
        let build = || {
            let mut m = pir::Module::new("m");
            let g = m.add_global("out", 64);
            let mut b = FunctionBuilder::new("main", 0);
            let base = b.global_addr(g);
            let x = b.const_(21);
            let y = b.mul_imm(x, 2);
            b.store(base, 0, y);
            b.ret(None);
            let f = m.add_function(b.finish());
            m.set_entry(f);
            m
        };
        let baseline = build();
        let mut corrupt = build();
        for func in corrupt.functions_mut() {
            for block in func.blocks_mut() {
                for inst in &mut block.insts {
                    if let Inst::Const { value, .. } = inst {
                        *value += 1;
                    }
                }
            }
        }
        let report =
            pir::equiv::check_module(&baseline, &corrupt, &pir::equiv::EquivOptions::default());
        assert!(!report.all_proved());
        let err = crate::CompileError::TranslationRefuted {
            stage: "fold-constants",
            report,
        };
        let text = err.to_string();
        assert!(text.contains("fold-constants"), "{text}");
        assert!(text.contains("main"), "{text}");
        assert!(text.contains("refuted"), "{text}");
    }

    #[test]
    fn fixed_point_terminates_on_pathological_input() {
        let mut b = FunctionBuilder::new("f", 0);
        let mut r = b.const_(1);
        for _ in 0..100 {
            r = b.add_imm(r, 0);
        }
        b.ret(Some(r));
        let mut f = b.finish();
        let _ = optimize_function(&mut f);
        assert!(verify_function(&f, 1, 0).is_ok());
    }
}
