//! Edge-selection policies for call virtualization.
//!
//! Section III-A1: "Selecting too many edges or edges that are executed
//! too frequently may result in unwanted overheads ... selecting only
//! edges that are rarely executed risks introducing large gaps in
//! execution during which new code variants are not executed. ... Our
//! current approach is to virtualize only function calls, and only those
//! where the callee function has more than one basic block."
//!
//! The EVT carries one slot per *callee function*: redirecting a function
//! redirects every virtualized call edge into it (Figure 1's EVT holds
//! `&func2 .. &func5`).

use pir::{FuncId, Module};

/// Which call edges to virtualize.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum EdgePolicy {
    /// Virtualize no edges (produces a protean binary whose code cannot be
    /// redirected — useful as an overhead-ablation baseline).
    Never,
    /// Virtualize every call.
    AllCalls,
    /// The paper's policy: virtualize calls whose callee has more than one
    /// basic block.
    #[default]
    MultiBlockCallees,
    /// Virtualize calls whose callee has at least `n` basic blocks.
    MinCalleeBlocks(u32),
}

impl EdgePolicy {
    /// Decides whether calls to `callee` should be virtualized.
    pub fn virtualizes(self, module: &Module, callee: FuncId) -> bool {
        match self {
            EdgePolicy::Never => false,
            EdgePolicy::AllCalls => true,
            EdgePolicy::MultiBlockCallees => module.function(callee).block_count() > 1,
            EdgePolicy::MinCalleeBlocks(n) => module.function(callee).block_count() >= n as usize,
        }
    }

    /// Assigns EVT slots: one per function whose incoming calls are
    /// virtualized under this policy. Returns `slot_of[func] = Some(slot)`.
    pub fn assign_slots(self, module: &Module) -> Vec<Option<u32>> {
        let mut called = vec![false; module.functions().len()];
        for func in module.functions() {
            for block in func.blocks() {
                for inst in &block.insts {
                    if let pir::Inst::Call { callee, .. } = inst {
                        called[callee.index()] = true;
                    }
                }
            }
        }
        let mut slots = vec![None; module.functions().len()];
        let mut next = 0u32;
        for (i, was_called) in called.iter().enumerate() {
            if *was_called && self.virtualizes(module, FuncId(i as u32)) {
                slots[i] = Some(next);
                next += 1;
            }
        }
        slots
    }

    /// Number of slots this policy would assign.
    pub fn slot_count(self, module: &Module) -> u32 {
        self.assign_slots(module).iter().flatten().count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::FunctionBuilder;

    /// Module with: `leaf` (1 block), `looper` (4 blocks), `main` calling
    /// both.
    fn module() -> Module {
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        leaf.ret(None);
        let leaf_id = m.add_function(leaf.finish());
        let mut looper = FunctionBuilder::new("looper", 0);
        looper.counted_loop(0, 4, 1, |b, i| {
            let _ = b.add_imm(i, 1);
        });
        looper.ret(None);
        let looper_id = m.add_function(looper.finish());
        let mut main = FunctionBuilder::new("main", 0);
        main.call_void(leaf_id, &[]);
        main.call_void(looper_id, &[]);
        main.ret(None);
        let main_id = m.add_function(main.finish());
        m.set_entry(main_id);
        m
    }

    #[test]
    fn default_policy_skips_single_block_callees() {
        let m = module();
        let policy = EdgePolicy::MultiBlockCallees;
        assert!(!policy.virtualizes(&m, FuncId(0)), "leaf has one block");
        assert!(
            policy.virtualizes(&m, FuncId(1)),
            "looper has several blocks"
        );
        let slots = policy.assign_slots(&m);
        assert_eq!(slots[0], None);
        assert_eq!(slots[1], Some(0));
        assert_eq!(slots[2], None, "main is never called");
        assert_eq!(policy.slot_count(&m), 1);
    }

    #[test]
    fn all_calls_policy_virtualizes_called_functions_only() {
        let m = module();
        let slots = EdgePolicy::AllCalls.assign_slots(&m);
        assert!(slots[0].is_some());
        assert!(slots[1].is_some());
        assert_eq!(
            slots[2], None,
            "main is never called, no edge to virtualize"
        );
        assert_eq!(EdgePolicy::AllCalls.slot_count(&m), 2);
    }

    #[test]
    fn never_policy_assigns_nothing() {
        let m = module();
        assert_eq!(EdgePolicy::Never.slot_count(&m), 0);
        assert!(EdgePolicy::Never
            .assign_slots(&m)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn min_blocks_threshold() {
        let m = module();
        assert!(EdgePolicy::MinCalleeBlocks(1).virtualizes(&m, FuncId(0)));
        assert!(!EdgePolicy::MinCalleeBlocks(2).virtualizes(&m, FuncId(0)));
        assert!(EdgePolicy::MinCalleeBlocks(4).virtualizes(&m, FuncId(1)));
        assert!(!EdgePolicy::MinCalleeBlocks(5).virtualizes(&m, FuncId(1)));
    }

    #[test]
    fn slots_are_dense() {
        let m = module();
        let slots = EdgePolicy::AllCalls.assign_slots(&m);
        let mut seen: Vec<u32> = slots.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }
}
