#![warn(missing_docs)]

//! # `pcc` — the Protean Code Compiler
//!
//! The static half of the paper's co-designed system (Section III-A). It
//! lowers PIR modules to VISA images and, in protean mode, performs the two
//! preparation steps that make online re-transformation near-free:
//!
//! 1. **Control-flow edge virtualization** ([`virtualize`]): a selected
//!    subset of direct calls become indirect calls through the **Edge
//!    Virtualization Table**. The default [`EdgePolicy`] is the paper's:
//!    virtualize only calls whose callee has more than one basic block.
//! 2. **Metadata embedding** ([`annex`], [`layout`]): the module's IR is
//!    serialized, compressed, and placed in the image's data region
//!    together with a link annex (function/global addresses, EVT slots),
//!    discoverable at runtime via the meta root header.
//!
//! The same backend doubles as the **runtime compiler**:
//! [`compile_function_variant`] lowers a single function — with an
//! arbitrary set of non-temporal hints applied ([`nt`]) — at a code-cache
//! address, producing the variant the runtime dispatches by patching the
//! EVT.
//!
//! # Example
//!
//! ```
//! use pcc::{Compiler, Options};
//! use pir::{Module, FunctionBuilder};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", 0);
//! b.ret(None);
//! let f = m.add_function(b.finish());
//! m.set_entry(f);
//! let out = Compiler::new(Options::protean()).compile(&m).expect("compile");
//! assert!(out.image.is_protean());
//! ```

pub mod annex;
pub mod compile;
pub mod inline;
pub mod invariants;
pub mod layout;
pub mod lower;
pub mod nt;
pub mod opt;
pub mod virtualize;

pub use annex::{EmbeddedMeta, LinkInfo};
pub use compile::{
    compile_function_variant, compile_function_variant_checked, CompileError, Compiler, Options,
    Output,
};
pub use inline::{inline_module, inline_module_checked, InlineConfig, InlineStats};
pub use lower::{block_offsets, lowered_size};
pub use nt::NtAssignment;
pub use opt::{
    optimize_function, optimize_module, optimize_module_checked, optimize_module_validated,
    OptStats,
};
pub use virtualize::EdgePolicy;
