//! Inter-stage invariant checking for the compilation pipeline.
//!
//! Every transformation in the protean toolchain — scalar optimization,
//! inlining, the NT-hint rewrite — must hand the next stage a module that
//! still verifies, and must not introduce reads of unassigned registers
//! into a module that had none. Bugs here are the worst kind: they
//! surface later as silently-wrong generated code. When enabled (default
//! in debug builds, opt-in through
//! [`Options::check_invariants`](crate::Options)), the pass manager
//! re-runs the [`pir::verify`] structural checks plus the
//! definite-assignment analysis after **every** stage and reports the
//! first stage that broke the module, by name.
//!
//! The definite-assignment half is *baseline-aware*: PIR registers read
//! as zero before their first write, so a workload may legally read an
//! unassigned register. [`InvariantChecker::for_module`] records whether
//! the input was clean; only a clean module is required to stay clean.

use pir::dataflow;
use pir::verify::verify_module;
use pir::{Function, Module};

use crate::compile::CompileError;

/// Re-checks pipeline invariants between transformation stages.
#[derive(Copy, Clone, Debug)]
pub struct InvariantChecker {
    check_undef: bool,
}

fn module_is_assigned_clean(module: &Module) -> bool {
    module
        .functions()
        .iter()
        .all(|f| dataflow::maybe_undef_uses(f).is_empty())
}

impl InvariantChecker {
    /// Builds a checker whose definite-assignment expectation is taken
    /// from `module` *before* any stage runs: if the input already reads
    /// unassigned (zero-valued) registers, only structural verification
    /// is enforced afterwards.
    pub fn for_module(module: &Module) -> Self {
        InvariantChecker {
            check_undef: module_is_assigned_clean(module),
        }
    }

    /// A checker that enforces both invariants unconditionally.
    pub fn strict() -> Self {
        InvariantChecker { check_undef: true }
    }

    /// Checks the invariants on `module`, attributing any violation to
    /// `stage` (a short pass name like `"fold-constants"`).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvariantViolation`] naming the stage if
    /// the module no longer verifies, or (when the baseline was clean) an
    /// instruction now reads a register that is not assigned on every
    /// path.
    pub fn check(&self, module: &Module, stage: &'static str) -> Result<(), CompileError> {
        if let Err(report) = verify_module(module) {
            return Err(CompileError::InvariantViolation {
                stage,
                detail: report.to_string(),
            });
        }
        if self.check_undef {
            for func in module.functions() {
                check_function_assigned(func, stage)?;
            }
        }
        Ok(())
    }

    /// Checks one function (same invariants, function granularity) — used
    /// by the runtime compiler on NT-transformed variants, where the rest
    /// of the module is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvariantViolation`] naming the stage.
    pub fn check_function(&self, func: &Function, stage: &'static str) -> Result<(), CompileError> {
        if self.check_undef {
            check_function_assigned(func, stage)?;
        }
        Ok(())
    }
}

fn check_function_assigned(func: &Function, stage: &'static str) -> Result<(), CompileError> {
    let undef = dataflow::maybe_undef_uses(func);
    if let Some(u) = undef.first() {
        return Err(CompileError::InvariantViolation {
            stage,
            detail: format!(
                "function `{}` {} reads {} which is not assigned on every path \
                 ({} such read(s) total)",
                func.name(),
                u.block,
                u.reg,
                undef.len()
            ),
        });
    }
    Ok(())
}

/// One-shot convenience: checks `module` with a strict checker.
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`] naming the stage.
pub fn check_module(module: &Module, stage: &'static str) -> Result<(), CompileError> {
    InvariantChecker::strict().check(module, stage)
}

/// Checks that embedded OSR certificates are exactly the ones
/// [`pir::absint::certify_module`] derives for `module`. The analysis is
/// deterministic, so any mismatch means the metadata is stale or
/// fabricated — and a stale anchor would let the future OSR runtime
/// migrate a frame on a wrong live-state map.
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`] naming the stage.
pub fn check_osr_certificates(
    module: &Module,
    certs: &[pir::absint::OsrCertificate],
    stage: &'static str,
) -> Result<(), CompileError> {
    let expected: Vec<pir::absint::OsrCertificate> = pir::absint::certify_module(module)
        .into_iter()
        .filter_map(|d| d.certificate().cloned())
        .collect();
    if certs != expected.as_slice() {
        return Err(CompileError::InvariantViolation {
            stage,
            detail: format!(
                "embedded OSR certificates disagree with analysis \
                 ({} embedded, {} derived)",
                certs.len(),
                expected.len()
            ),
        });
    }
    Ok(())
}

/// Checks that embedded OSR transfer recipes are exactly the ones
/// [`pir::prove_osr_transfer`] re-derives and re-proves for `module`
/// against the embedded certificates. Like the certificates, derivation
/// is deterministic; a mismatch means stale or fabricated recipes —
/// and a fabricated recipe would let the OSR runtime rebuild a frame
/// from the wrong registers.
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`] naming the stage.
pub fn check_osr_transfer(
    module: &Module,
    certs: &[pir::absint::OsrCertificate],
    recipes: &[pir::TransferRecipe],
    stage: &'static str,
) -> Result<(), CompileError> {
    let expected: Vec<pir::TransferRecipe> = certs
        .iter()
        .filter_map(|cert| {
            pir::prove_osr_transfer(
                module,
                module,
                cert.func,
                cert,
                &pir::EquivOptions::default(),
            )
            .recipe()
            .cloned()
        })
        .collect();
    if recipes != expected.as_slice() {
        return Err(CompileError::InvariantViolation {
            stage,
            detail: format!(
                "embedded OSR transfer recipes disagree with re-proof \
                 ({} embedded, {} derived)",
                recipes.len(),
                expected.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::{Block, BlockId, FunctionBuilder, Inst, Reg, Term};

    fn ok_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.const_(1);
        b.ret(Some(x));
        let f = m.add_function(b.finish());
        m.set_entry(f);
        m
    }

    #[test]
    fn clean_module_passes() {
        assert!(check_module(&ok_module(), "noop").is_ok());
    }

    #[test]
    fn structural_breakage_names_the_stage() {
        let mut m = ok_module();
        // Corrupt: point the terminator at a nonexistent block.
        m.functions_mut()[0].blocks_mut()[0].term = Term::Br(BlockId(9));
        let err = check_module(&m, "fold-constants").unwrap_err();
        let CompileError::InvariantViolation { stage, detail } = err else {
            panic!("expected InvariantViolation");
        };
        assert_eq!(stage, "fold-constants");
        assert!(detail.contains("bb9"), "{detail}");
    }

    fn undef_read_module() -> Module {
        let mut m = Module::new("m");
        let mut blk = Block::new(Term::Ret(Some(Reg(1))));
        blk.insts.push(Inst::BinImm {
            op: pir::BinOp::Add,
            dst: Reg(1),
            lhs: Reg(3),
            imm: 1,
        });
        let f = Function::from_parts("main", 0, 4, vec![blk]);
        let id = m.add_function(f);
        m.set_entry(id);
        m
    }

    #[test]
    fn undef_read_is_reported_by_strict_checker() {
        let err = check_module(&undef_read_module(), "dce").unwrap_err();
        assert!(err.to_string().contains("r3"), "{err}");
    }

    #[test]
    fn dirty_baseline_relaxes_the_assignment_check() {
        let m = undef_read_module();
        // A checker baselined on the dirty module tolerates the read...
        let checker = InvariantChecker::for_module(&m);
        assert!(checker.check(&m, "noop").is_ok());
        // ...but still enforces structure.
        let mut broken = m.clone();
        broken.functions_mut()[0].blocks_mut()[0].term = Term::Br(BlockId(9));
        assert!(checker.check(&broken, "noop").is_err());
    }

    #[test]
    fn clean_baseline_enforces_the_assignment_check() {
        let checker = InvariantChecker::for_module(&ok_module());
        assert!(checker.check(&undef_read_module(), "stage").is_err());
    }

    #[test]
    fn osr_certificates_must_match_the_analysis() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", 0);
        b.counted_loop(0, 8, 1, |b, i| {
            let _ = b.add_imm(i, 1);
        });
        b.ret(None);
        let f = m.add_function(b.finish());
        m.set_entry(f);
        let mut certs: Vec<_> = pir::absint::certify_module(&m)
            .into_iter()
            .filter_map(|d| d.certificate().cloned())
            .collect();
        assert!(!certs.is_empty());
        assert!(check_osr_certificates(&m, &certs, "osr-certify").is_ok());
        // Tampered live-state map: caught.
        certs[0].live.clear();
        let err = check_osr_certificates(&m, &certs, "osr-certify").unwrap_err();
        assert!(err.to_string().contains("OSR"), "{err}");
        // Dropped certificate: caught.
        assert!(check_osr_certificates(&m, &[], "osr-certify").is_err());
    }

    #[test]
    fn osr_recipes_must_match_the_reproof() {
        let mut m = Module::new("m");
        let g = m.add_global("buf", 64);
        let mut b = FunctionBuilder::new("main", 0);
        let base = b.global_addr(g);
        b.counted_loop(0, 8, 1, |b, i| {
            let off = b.shl_imm(i, 3);
            let a = b.add(base, off);
            b.store(a, 0, i);
        });
        b.ret(None);
        let f = m.add_function(b.finish());
        m.set_entry(f);
        let certs: Vec<_> = pir::absint::certify_module(&m)
            .into_iter()
            .filter_map(|d| d.certificate().cloned())
            .collect();
        assert!(!certs.is_empty());
        let mut recipes: Vec<_> = certs
            .iter()
            .filter_map(|c| {
                pir::prove_osr_transfer(&m, &m, c.func, c, &pir::EquivOptions::default())
                    .recipe()
                    .cloned()
            })
            .collect();
        assert!(!recipes.is_empty(), "the loop header should prove");
        assert!(check_osr_transfer(&m, &certs, &recipes, "osr-transfer").is_ok());
        // Tampered remap: caught.
        recipes[0].moves.pop();
        let err = check_osr_transfer(&m, &certs, &recipes, "osr-transfer").unwrap_err();
        assert!(err.to_string().contains("recipes"), "{err}");
        // Dropped recipe: caught.
        assert!(check_osr_transfer(&m, &certs, &[], "osr-transfer").is_err());
    }
}
