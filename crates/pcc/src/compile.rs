//! Whole-module compilation and runtime variant compilation.

use std::error::Error;
use std::fmt;

use pir::verify::{verify_module, VerifyReport};
use pir::{FuncId, GlobalInit, Module};
use visa::{EvtEntry, FuncSym, GlobalSym, Image, MetaDesc, Op};

use crate::annex::{EmbeddedMeta, LinkInfo};
use crate::layout;
use crate::lower::{lower_function, lowered_size, LowerCtx};
use crate::nt::NtAssignment;
use crate::virtualize::EdgePolicy;

/// Compilation options.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Options {
    /// Produce a protean binary: virtualize edges and embed metadata.
    pub protean: bool,
    /// Edge-selection policy (ignored when `protean` is false).
    pub edge_policy: EdgePolicy,
    /// Embed the compressed IR + link annex (ignored when `protean` is
    /// false; protean binaries normally embed it).
    pub embed_ir: bool,
    /// Run the scalar optimization pipeline (fold/propagate/DCE/compact)
    /// before lowering. The embedded IR is the optimized module, so the
    /// runtime compiler starts from what actually runs.
    pub optimize: bool,
    /// Re-run the verifier and the definite-assignment analysis after
    /// every transformation stage, failing the compile with
    /// [`CompileError::InvariantViolation`] naming the stage that broke
    /// the module. Defaults to on in debug builds, off in release.
    pub check_invariants: bool,
    /// Translation validation: prove every optimization stage's output
    /// observationally equivalent to its input with [`pir::equiv`],
    /// failing the compile with [`CompileError::TranslationRefuted`]
    /// naming the offending stage. Stronger (and costlier) than
    /// `check_invariants`; off by default.
    pub validate_translations: bool,
}

impl Options {
    /// Plain (non-protean) compilation, like an ordinary `-O2` build.
    pub fn plain() -> Self {
        Options {
            protean: false,
            edge_policy: EdgePolicy::Never,
            embed_ir: false,
            optimize: false,
            check_invariants: cfg!(debug_assertions),
            validate_translations: false,
        }
    }

    /// Protean compilation with the paper's default edge policy.
    pub fn protean() -> Self {
        Options {
            protean: true,
            edge_policy: EdgePolicy::default(),
            embed_ir: true,
            optimize: false,
            check_invariants: cfg!(debug_assertions),
            validate_translations: false,
        }
    }

    /// Enables the scalar optimization pipeline.
    pub fn with_optimization(mut self) -> Self {
        self.optimize = true;
        self
    }

    /// Enables (or disables) inter-stage invariant checking regardless of
    /// build profile.
    pub fn with_invariant_checks(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Enables (or disables) per-stage translation validation with
    /// [`pir::equiv`].
    pub fn with_translation_validation(mut self, on: bool) -> Self {
        self.validate_translations = on;
        self
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::protean()
    }
}

/// A compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The input module failed verification (all violations reported).
    Verify(VerifyReport),
    /// A transformation stage handed the next stage a broken module.
    InvariantViolation {
        /// The stage that broke the module (e.g. `"fold-constants"`).
        stage: &'static str,
        /// Human-readable description of the breakage.
        detail: String,
    },
    /// Translation validation *refuted* a stage's output: the embedded
    /// [`pir::equiv::EquivReport`] carries an interpreter-confirmed
    /// counterexample trace naming the function, block pair, and first
    /// diverging event.
    TranslationRefuted {
        /// The stage whose output failed validation.
        stage: &'static str,
        /// Per-function verdicts for the offending stage transition.
        report: pir::equiv::EquivReport,
    },
    /// Translation validation could not *prove* a stage's output
    /// equivalent, without demonstrating a concrete divergence either
    /// (irreducible control flow, exhausted budgets, unconfirmed
    /// mismatches). The checked paths require provability, so this still
    /// fails the compile — but the output may well be correct, and no
    /// counterexample exists.
    TranslationUnproved {
        /// The stage whose output could not be proved.
        stage: &'static str,
        /// Per-function verdicts, including the `Unknown` reasons.
        report: pir::equiv::EquivReport,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Verify(e) => write!(f, "module verification failed: {e}"),
            CompileError::InvariantViolation { stage, detail } => {
                write!(f, "stage `{stage}` broke a module invariant: {detail}")
            }
            CompileError::TranslationRefuted { stage, report } => {
                write!(f, "stage `{stage}` failed translation validation: {report}")
            }
            CompileError::TranslationUnproved { stage, report } => {
                write!(
                    f,
                    "stage `{stage}` could not be proved equivalent \
                     (no counterexample found either): {report}"
                )
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Verify(e) => Some(e),
            CompileError::InvariantViolation { .. }
            | CompileError::TranslationRefuted { .. }
            | CompileError::TranslationUnproved { .. } => None,
        }
    }
}

impl From<VerifyReport> for CompileError {
    fn from(e: VerifyReport) -> Self {
        CompileError::Verify(e)
    }
}

/// Result of a compilation: the image plus (for protean builds) the
/// metadata that was embedded, returned directly for convenience.
#[derive(Clone, Debug)]
pub struct Output {
    /// The executable image.
    pub image: Image,
    /// The embedded metadata (what a runtime will discover), if protean.
    pub meta: Option<EmbeddedMeta>,
}

/// The protean code compiler.
#[derive(Copy, Clone, Debug, Default)]
pub struct Compiler {
    options: Options,
}

impl Compiler {
    /// Creates a compiler with the given options.
    pub fn new(options: Options) -> Self {
        Compiler { options }
    }

    /// The compiler's options.
    pub fn options(&self) -> Options {
        self.options
    }

    /// Compiles `module` into an executable image.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Verify`] if the module is malformed.
    pub fn compile(&self, module: &Module) -> Result<Output, CompileError> {
        verify_module(module)?;
        let opts = self.options;
        let optimized;
        let module = if opts.optimize {
            let mut m = module.clone();
            if opts.validate_translations {
                crate::opt::optimize_module_validated(&mut m)?;
            } else if opts.check_invariants {
                crate::opt::optimize_module_checked(&mut m)?;
            } else {
                crate::opt::optimize_module(&mut m);
            }
            optimized = m;
            &optimized
        } else {
            module
        };

        // 1. Edge virtualization: one EVT slot per virtualized callee.
        let func_evt_slot = if opts.protean {
            opts.edge_policy.assign_slots(module)
        } else {
            vec![None; module.functions().len()]
        };
        let evt_len = func_evt_slot.iter().flatten().count() as u32;

        // 2. Text layout: function sizes are address-independent.
        let sizes: Vec<u32> = module.functions().iter().map(lowered_size).collect();
        let mut func_addrs = Vec::with_capacity(sizes.len());
        let mut cursor = 0u32;
        for s in &sizes {
            func_addrs.push(cursor);
            cursor += s;
        }

        // 3. Data layout. Global addresses and the EVT base do not depend
        //    on the IR blob length (the blob comes last), so we can build
        //    the link info, encode the blob, then finalize.
        let prelim = layout::compute(module, evt_len, 0);
        let link = LinkInfo {
            func_addrs: func_addrs.clone(),
            func_evt_slot: func_evt_slot.clone(),
            global_addrs: prelim.global_addrs.clone(),
            evt_base: prelim.evt_base,
        };
        let (blob, meta) = if opts.protean && opts.embed_ir {
            // Certified OSR anchors ride along with the IR so the future
            // OSR runtime (ROADMAP item 3) never re-derives them online.
            let osr: Vec<pir::OsrCertificate> = pir::absint::certify_module(module)
                .into_iter()
                .filter_map(|d| d.certificate().cloned())
                .collect();
            // One proved transfer recipe per certificate the cut-point
            // prover can close against the module itself (identity
            // remap). Shape-identical NT variants inherit these verbatim
            // at the gate; rewritten variants get re-proved there.
            let osr_recipes = osr
                .iter()
                .filter_map(|cert| {
                    pir::prove_osr_transfer(
                        module,
                        module,
                        cert.func,
                        cert,
                        &pir::EquivOptions::default(),
                    )
                    .recipe()
                    .cloned()
                })
                .collect();
            let meta = EmbeddedMeta {
                module: module.clone(),
                link: link.clone(),
                osr,
                osr_recipes,
            };
            (meta.to_blob(), Some(meta))
        } else {
            (Vec::new(), None)
        };
        if opts.check_invariants {
            if let Some(meta) = &meta {
                crate::invariants::check_osr_certificates(module, &meta.osr, "osr-certify")?;
                crate::invariants::check_osr_transfer(
                    module,
                    &meta.osr,
                    &meta.osr_recipes,
                    "osr-transfer",
                )?;
            }
        }
        let lay = layout::compute(module, evt_len, blob.len() as u64);
        debug_assert_eq!(lay.global_addrs, prelim.global_addrs);
        debug_assert_eq!(lay.evt_base, prelim.evt_base);

        // 4. Build the data segment.
        let mut data = vec![0u8; lay.total_size as usize];
        for (g, addr) in module.globals().iter().zip(&lay.global_addrs) {
            if let GlobalInit::Words(words) = g.init() {
                let mut a = *addr as usize;
                for w in words {
                    data[a..a + 8].copy_from_slice(&w.to_le_bytes());
                    a += 8;
                }
            }
        }
        let mut evt = Vec::with_capacity(evt_len as usize);
        for (fi, slot) in func_evt_slot.iter().enumerate() {
            if let Some(slot) = slot {
                let target = func_addrs[fi];
                let cell = (lay.evt_base + 8 * u64::from(*slot)) as usize;
                data[cell..cell + 8].copy_from_slice(&u64::from(target).to_le_bytes());
                evt.push(EvtEntry {
                    slot: *slot,
                    callee: FuncId(fi as u32),
                    original_target: target,
                });
            }
        }
        evt.sort_by_key(|e| e.slot);
        let meta_desc = if opts.protean {
            let desc = MetaDesc {
                evt_base: lay.evt_base,
                evt_len,
                ir_addr: lay.ir_addr,
                ir_len: blob.len() as u64,
            };
            desc.write_root(&mut data);
            data[lay.ir_addr as usize..lay.ir_addr as usize + blob.len()].copy_from_slice(&blob);
            Some(desc)
        } else {
            None
        };

        // 5. Lower every function.
        let ctx = LowerCtx {
            module,
            link: &link,
            virtualize: opts.protean,
        };
        let mut text: Vec<Op> = Vec::with_capacity(cursor as usize);
        let mut funcs = Vec::with_capacity(module.functions().len());
        for (fi, func) in module.functions().iter().enumerate() {
            let base = func_addrs[fi];
            debug_assert_eq!(base as usize, text.len());
            text.extend(lower_function(func, &ctx, base));
            funcs.push(FuncSym {
                name: func.name().to_string(),
                func: FuncId(fi as u32),
                start: base,
                len: sizes[fi],
            });
        }

        let globals = module
            .globals()
            .iter()
            .zip(&lay.global_addrs)
            .map(|(g, addr)| GlobalSym {
                name: g.name().to_string(),
                addr: *addr,
                size: g.size(),
            })
            .collect();

        let entry_fn = module.entry().expect("verified module has an entry");
        let image = Image {
            name: module.name().to_string(),
            entry: func_addrs[entry_fn.index()],
            text,
            data,
            funcs,
            globals,
            evt,
            meta: meta_desc,
        };
        debug_assert_eq!(image.validate(), Ok(()));
        Ok(Output { image, meta })
    }
}

/// The runtime compiler's entry point: lowers function `fid` of `module`
/// with the non-temporal hints in `nt` applied, at code-cache address
/// `base`. Calls out of the variant use the original link facts, so the
/// variant composes with the rest of the running program.
pub fn compile_function_variant(
    module: &Module,
    fid: FuncId,
    nt: &NtAssignment,
    link: &LinkInfo,
    base: u32,
) -> Vec<Op> {
    let variant = nt.apply_to(module.function(fid), fid);
    let ctx = LowerCtx {
        module,
        link,
        virtualize: true,
    };
    lower_function(&variant, &ctx, base)
}

/// True when the two bodies are syntactically identical except for load
/// locality bits — exactly the shape a correct NT transform produces.
fn identical_modulo_locality(baseline: &pir::Function, variant: &pir::Function) -> bool {
    use pir::Inst;
    baseline.params() == variant.params()
        && baseline.block_count() == variant.block_count()
        && baseline
            .blocks()
            .iter()
            .zip(variant.blocks())
            .all(|(b, v)| {
                b.term == v.term
                    && b.insts.len() == v.insts.len()
                    && b.insts.iter().zip(&v.insts).all(|(bi, vi)| match (bi, vi) {
                        (
                            Inst::Load {
                                dst: da,
                                base: ba,
                                offset: oa,
                                ..
                            },
                            Inst::Load {
                                dst: db,
                                base: bb,
                                offset: ob,
                                ..
                            },
                        ) => da == db && ba == bb && oa == ob,
                        _ => bi == vi,
                    })
            })
}

/// [`compile_function_variant`] with the inter-stage invariants checked
/// and the NT transformation translation-validated before lowering. The
/// NT rewrite is shape-preserving, so a variant that is syntactically
/// identical to the baseline modulo load-locality bits is accepted
/// outright; anything else must be equiv-proved against the baseline
/// (any number of NT flips is fine — that is the transformation).
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`] (stage `"nt-transform"`)
/// if the transformed function no longer verifies or reads an unassigned
/// register, [`CompileError::TranslationRefuted`] if the prover produced
/// a concrete counterexample, and [`CompileError::TranslationUnproved`]
/// if equivalence could be neither proved nor refuted (the checked path
/// requires provability).
pub fn compile_function_variant_checked(
    module: &Module,
    fid: FuncId,
    nt: &NtAssignment,
    link: &LinkInfo,
    base: u32,
) -> Result<Vec<Op>, CompileError> {
    let variant = nt.apply_to(module.function(fid), fid);
    let arities: Vec<u32> = module.functions().iter().map(|f| f.params()).collect();
    let globals = module.globals().len() as u32;
    if let Err(report) = pir::verify::verify_function_in(&variant, &arities, globals) {
        return Err(CompileError::InvariantViolation {
            stage: "nt-transform",
            detail: report.to_string(),
        });
    }
    // Baseline the assignment check on the original function: the NT
    // rewrite must not introduce undefined reads, but a workload that
    // legally reads zero-initialized registers stays compilable.
    let clean = pir::dataflow::maybe_undef_uses(module.function(fid)).is_empty();
    if clean {
        crate::invariants::InvariantChecker::strict().check_function(&variant, "nt-transform")?;
    }
    // Translation validation, cheapest tier first: a locality-only delta
    // is legal by definition; only an unexpected shape change (a buggy
    // NtAssignment::apply_to) invokes the prover.
    if !identical_modulo_locality(module.function(fid), &variant) {
        let mut vmod = module.clone();
        vmod.functions_mut()[fid.index()] = variant.clone();
        let verdict =
            pir::equiv::check_function_in(module, &vmod, fid, &pir::equiv::EquivOptions::default());
        let wrap = |verdict| {
            pir::equiv::EquivReport::from_results(vec![(
                module.function(fid).name().to_string(),
                verdict,
            )])
        };
        match verdict {
            pir::equiv::Verdict::Proved { .. } => {}
            v @ pir::equiv::Verdict::Refuted(_) => {
                return Err(CompileError::TranslationRefuted {
                    stage: "nt-transform",
                    report: wrap(v),
                });
            }
            v @ pir::equiv::Verdict::Unknown { .. } => {
                return Err(CompileError::TranslationUnproved {
                    stage: "nt-transform",
                    report: wrap(v),
                });
            }
        }
    }
    let ctx = LowerCtx {
        module,
        link,
        virtualize: true,
    };
    Ok(lower_function(&variant, &ctx, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::{FunctionBuilder, Locality};

    /// main() { s = 0; for i in 0..64 { s += buf[i] }; buf2[0] = s } with
    /// a helper function making the call graph non-trivial.
    fn program() -> Module {
        let mut m = Module::new("p");
        let buf = m.add_global_full(pir::Global::with_words(
            "buf",
            (0..64).map(|i| i as i64).collect(),
        ));
        let out = m.add_global("out", 64);
        // helper(sum) { return sum * 2; } - multi-block so it virtualizes
        let mut h = FunctionBuilder::new("helper", 1);
        let p = h.param(0);
        let doubled = h.mul_imm(p, 2);
        let t = h.new_block();
        h.br(t);
        h.switch_to(t);
        h.ret(Some(doubled));
        let hid = m.add_function(h.finish());
        // main
        let mut b = FunctionBuilder::new("main", 0);
        let base = b.global_addr(buf);
        let outa = b.global_addr(out);
        let acc = b.const_(0);
        b.counted_loop(0, 64, 1, |b, i| {
            let off = b.shl_imm(i, 3);
            let addr = b.add(base, off);
            let v = b.load(addr, 0, Locality::Normal);
            b.add_into(acc, acc, v);
        });
        let r = b.call(hid, &[acc]);
        b.store(outa, 0, r);
        b.ret(None);
        let mid = m.add_function(b.finish());
        m.set_entry(mid);
        m
    }

    #[test]
    fn plain_compile_validates() {
        let out = Compiler::new(Options::plain()).compile(&program()).unwrap();
        assert_eq!(out.image.validate(), Ok(()));
        assert!(!out.image.is_protean());
        assert!(out.image.evt.is_empty());
        assert!(out.meta.is_none());
    }

    #[test]
    fn protean_compile_has_evt_and_meta() {
        let out = Compiler::new(Options::protean())
            .compile(&program())
            .unwrap();
        let img = &out.image;
        assert_eq!(img.validate(), Ok(()));
        assert!(img.is_protean());
        assert_eq!(img.evt.len(), 1, "helper is called and multi-block");
        // CallVirt appears in text.
        assert!(img.text.iter().any(|o| matches!(o, Op::CallVirt { .. })));
        // The metadata is discoverable from raw data memory.
        let desc = MetaDesc::read_root(&img.data).expect("meta root present");
        assert_eq!(Some(desc), img.meta);
        let blob = &img.data[desc.ir_addr as usize..(desc.ir_addr + desc.ir_len) as usize];
        let meta = EmbeddedMeta::from_blob(blob).expect("embedded meta decodes");
        assert_eq!(meta.module, program());
        assert_eq!(Some(&meta), out.meta.as_ref());
        // OSR anchors ride along and survive the wire format: the counted
        // loop in `main` certifies, and the embedded set is exactly what
        // the analysis derives.
        let expected: Vec<_> = pir::absint::certify_module(&meta.module)
            .into_iter()
            .filter_map(|d| d.certificate().cloned())
            .collect();
        assert!(!expected.is_empty(), "main's loop should certify");
        assert_eq!(meta.osr, expected);
    }

    #[test]
    fn evt_cells_initialized_to_original_targets() {
        let out = Compiler::new(Options::protean())
            .compile(&program())
            .unwrap();
        let img = &out.image;
        let desc = img.meta.unwrap();
        for e in &img.evt {
            let cell = (desc.evt_base + 8 * u64::from(e.slot)) as usize;
            let v = u64::from_le_bytes(img.data[cell..cell + 8].try_into().unwrap());
            assert_eq!(v, u64::from(e.original_target));
        }
    }

    #[test]
    fn function_symbols_cover_text_exactly() {
        let out = Compiler::new(Options::protean())
            .compile(&program())
            .unwrap();
        let img = &out.image;
        let total: u32 = img.funcs.iter().map(|f| f.len).sum();
        assert_eq!(total, img.text_len());
        // Contiguous and sorted.
        let mut cursor = 0;
        for f in &img.funcs {
            assert_eq!(f.start, cursor);
            cursor += f.len;
        }
    }

    #[test]
    fn variant_compilation_adds_prefetches() {
        let m = program();
        let out = Compiler::new(Options::protean()).compile(&m).unwrap();
        let meta = out.meta.unwrap();
        let main_id = m.function_by_name("main").unwrap();
        let sites: Vec<_> = pir::load_sites(&m)
            .iter()
            .map(|s| s.site)
            .filter(|s| s.func == main_id)
            .collect();
        assert!(!sites.is_empty());
        let nt = NtAssignment::all(sites.iter().copied());
        let base = out.image.text_len();
        let variant = compile_function_variant(&m, main_id, &nt, &meta.link, base);
        let prefetches = variant
            .iter()
            .filter(|o| matches!(o, Op::PrefetchNta { .. }))
            .count();
        assert_eq!(prefetches, sites.len());
        // The empty assignment reproduces the original lowering.
        let original = compile_function_variant(&m, main_id, &NtAssignment::none(), &meta.link, 0);
        let sym = out.image.func_sym(main_id).unwrap();
        let orig_text = &out.image.text[sym.start as usize..(sym.start + sym.len) as usize];
        assert_eq!(original.len(), orig_text.len());
    }

    #[test]
    fn never_policy_produces_no_callvirt() {
        let opts = Options {
            edge_policy: EdgePolicy::Never,
            ..Options::protean()
        };
        let out = Compiler::new(opts).compile(&program()).unwrap();
        assert!(out.image.is_protean());
        assert!(out.image.evt.is_empty());
        assert!(!out
            .image
            .text
            .iter()
            .any(|o| matches!(o, Op::CallVirt { .. })));
    }

    #[test]
    fn invalid_module_rejected() {
        let m = Module::new("empty"); // no entry
        let err = Compiler::new(Options::plain()).compile(&m).unwrap_err();
        assert!(matches!(err, CompileError::Verify(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn global_initializers_written() {
        let out = Compiler::new(Options::plain()).compile(&program()).unwrap();
        let img = &out.image;
        let g = img.global_by_name("buf").unwrap();
        let first = i64::from_le_bytes(
            img.data[g.addr as usize..g.addr as usize + 8]
                .try_into()
                .unwrap(),
        );
        let third = i64::from_le_bytes(
            img.data[g.addr as usize + 16..g.addr as usize + 24]
                .try_into()
                .unwrap(),
        );
        assert_eq!(first, 0);
        assert_eq!(third, 2);
    }
}
