//! Function inlining for small leaf callees.
//!
//! Call overhead on the virtual ISA is small but real (register-window
//! shuffle, and an EVT read for virtualized edges), so inlining tiny leaf
//! functions is profitable exactly as on real hardware. The pass is
//! deliberately conservative:
//!
//! * only **single-block** callees are inlined (the same functions the
//!   paper's edge policy declines to virtualize — so inlining never
//!   removes a PC3D redirection hook), and
//! * only callees below a size threshold, to bound code growth.
//!
//! Inlining remaps callee registers above the caller's register file and
//! rewrites the return into a move, so it composes with the scalar
//! pipeline (`opt`), which then cleans up the copies.

use pir::{BinOp, FuncId, Inst, Module, Reg, Term};

/// Inlining thresholds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct InlineConfig {
    /// Maximum callee instruction count to inline.
    pub max_callee_insts: usize,
    /// Maximum register count a caller may grow to.
    pub max_caller_regs: u32,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_insts: 12,
            max_caller_regs: pir::MAX_REGS,
        }
    }
}

/// Result of an inlining run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Call sites replaced by callee bodies.
    pub inlined: usize,
}

/// Returns the callee's body if it is inlinable: a single block ending in
/// `Ret`, small enough, and containing no calls (leaf).
fn inlinable(
    module: &Module,
    callee: FuncId,
    config: InlineConfig,
) -> Option<(Vec<Inst>, Option<Reg>, u32)> {
    let f = module.function(callee);
    if f.block_count() != 1 || f.inst_count() > config.max_callee_insts {
        return None;
    }
    let block = f.block(pir::BlockId(0));
    let Term::Ret(ret) = block.term else {
        return None;
    };
    if block
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Call { .. } | Inst::Wait))
    {
        return None;
    }
    Some((block.insts.clone(), ret, f.reg_count()))
}

fn remap_reg(r: Reg, params: u32, arg_map: &[Reg], base: u32) -> Reg {
    if r.0 < params {
        arg_map[r.index()]
    } else {
        Reg(base + (r.0 - params))
    }
}

/// Inlines eligible call sites throughout the module. Run before the
/// scalar pipeline for best results.
pub fn inline_module(module: &mut Module, config: InlineConfig) -> InlineStats {
    let mut stats = InlineStats::default();
    let nfuncs = module.functions().len();
    for fi in 0..nfuncs {
        // Collect this function's rewrite plan against an immutable view.
        let mut new_blocks: Vec<Vec<Inst>> = Vec::new();
        let mut grew_to = module.function(FuncId(fi as u32)).reg_count();
        {
            let caller = module.function(FuncId(fi as u32));
            for block in caller.blocks() {
                let mut out: Vec<Inst> = Vec::with_capacity(block.insts.len());
                for inst in &block.insts {
                    let Inst::Call { dst, callee, args } = inst else {
                        out.push(inst.clone());
                        continue;
                    };
                    if callee.index() == fi {
                        out.push(inst.clone()); // never inline recursion
                        continue;
                    }
                    let Some((body, ret, callee_regs)) = inlinable(module, *callee, config) else {
                        out.push(inst.clone());
                        continue;
                    };
                    let callee_params = module.function(*callee).params();
                    let locals = callee_regs.saturating_sub(callee_params);
                    if grew_to + locals > config.max_caller_regs {
                        out.push(inst.clone());
                        continue;
                    }
                    let base = grew_to;
                    grew_to += locals;
                    // Arguments map directly onto the caller's registers.
                    let arg_map: Vec<Reg> = args.clone();
                    for bi in &body {
                        let mut cloned = bi.clone();
                        // Remap every register operand.
                        let fix = |r: &mut Reg| {
                            *r = remap_reg(*r, callee_params, &arg_map, base);
                        };
                        match &mut cloned {
                            Inst::Const { dst, .. } => fix(dst),
                            Inst::Bin { dst, lhs, rhs, .. } => {
                                fix(lhs);
                                fix(rhs);
                                fix(dst);
                            }
                            Inst::BinImm { dst, lhs, .. } => {
                                fix(lhs);
                                fix(dst);
                            }
                            Inst::Load { dst, base, .. } => {
                                fix(base);
                                fix(dst);
                            }
                            Inst::Store { base, src, .. } => {
                                fix(base);
                                fix(src);
                            }
                            Inst::GlobalAddr { dst, .. } => fix(dst),
                            Inst::Report { src, .. } => fix(src),
                            Inst::Call { .. } | Inst::Nop | Inst::Wait => {}
                        }
                        out.push(cloned);
                    }
                    // The return value becomes a copy into the call's dst.
                    if let (Some(d), Some(r)) = (dst, ret) {
                        let src = remap_reg(r, callee_params, &arg_map, base);
                        out.push(Inst::BinImm {
                            op: BinOp::Add,
                            dst: *d,
                            lhs: src,
                            imm: 0,
                        });
                    }
                    stats.inlined += 1;
                }
                new_blocks.push(out);
            }
        }
        let caller = &mut module.functions_mut()[fi];
        caller.set_reg_count(grew_to.max(caller.reg_count()));
        for (block, insts) in caller.blocks_mut().iter_mut().zip(new_blocks) {
            block.insts = insts;
        }
    }
    stats
}

/// [`inline_module`] with the pass-manager invariants (verify + definite
/// assignment) checked on the result.
///
/// # Errors
///
/// Returns [`CompileError::InvariantViolation`](crate::CompileError)
/// (stage `"inline"`) if inlining broke the module.
pub fn inline_module_checked(
    module: &mut Module,
    config: InlineConfig,
) -> Result<InlineStats, crate::CompileError> {
    let checker = crate::invariants::InvariantChecker::for_module(module);
    let stats = inline_module(module, config);
    checker.check(module, "inline")?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::verify::verify_module;
    use pir::FunctionBuilder;

    /// leaf(a, b) = a*2 + b; main stores leaf(5, 9) twice.
    fn module() -> Module {
        let mut m = Module::new("t");
        let out = m.add_global("out", 64);
        let mut leaf = FunctionBuilder::new("leaf", 2);
        let a = leaf.param(0);
        let b = leaf.param(1);
        let d = leaf.mul_imm(a, 2);
        let s = leaf.add(d, b);
        leaf.ret(Some(s));
        let leaf_id = m.add_function(leaf.finish());
        let mut main = FunctionBuilder::new("main", 0);
        let base = main.global_addr(out);
        let x = main.const_(5);
        let y = main.const_(9);
        let r1 = main.call(leaf_id, &[x, y]);
        main.store(base, 0, r1);
        let r2 = main.call(leaf_id, &[y, x]);
        main.store(base, 8, r2);
        main.ret(None);
        let main_id = m.add_function(main.finish());
        m.set_entry(main_id);
        m
    }

    fn run(m: &Module) -> (i64, i64) {
        use machine::{CostModel, ExecContext, ExecEnv, MachineConfig, MemorySystem, PerfCounters};
        let img = crate::Compiler::new(crate::Options::plain())
            .compile(m)
            .unwrap()
            .image;
        let cfg = MachineConfig::small();
        let mut mem = MemorySystem::new(&cfg);
        let mut counters = PerfCounters::default();
        let mut ctx = ExecContext::new(img.entry, 1, 0);
        let mut data = img.data.clone();
        let mut blocks = machine::BlockCache::new();
        let mut env = ExecEnv {
            text: &img.text,
            text_gen: 0,
            blocks: &mut blocks,
            data: &mut data,
            mem: &mut mem,
            core: 0,
            counters: &mut counters,
            costs: CostModel::default(),
        };
        machine::exec::run(&mut ctx, &mut env, 1_000_000);
        let a = img.global_by_name("out").unwrap().addr as usize;
        (
            i64::from_le_bytes(data[a..a + 8].try_into().unwrap()),
            i64::from_le_bytes(data[a + 8..a + 16].try_into().unwrap()),
        )
    }

    #[test]
    fn inlines_leaf_and_preserves_results() {
        let m = module();
        let before = run(&m);
        assert_eq!(before, (19, 23));
        let mut inlined = m.clone();
        let stats = inline_module(&mut inlined, InlineConfig::default());
        assert_eq!(stats.inlined, 2);
        assert!(verify_module(&inlined).is_ok());
        assert_eq!(run(&inlined), before);
        // No calls remain in main.
        let main = inlined.function(inlined.function_by_name("main").unwrap());
        let calls = main
            .blocks()
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 0);
    }

    #[test]
    fn recursion_is_never_inlined() {
        let mut m = Module::new("r");
        let mut f = FunctionBuilder::new("f", 1);
        let p = f.param(0);
        f.call_void(pir::FuncId(0), &[p]); // self-call
        f.ret(None);
        m.add_function(f.finish());
        let mut main = FunctionBuilder::new("main", 0);
        main.ret(None);
        let mid = m.add_function(main.finish());
        m.set_entry(mid);
        let stats = inline_module(&mut m, InlineConfig::default());
        assert_eq!(stats.inlined, 0);
    }

    #[test]
    fn large_callees_are_skipped() {
        let mut m = Module::new("big");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let mut r = leaf.const_(1);
        for _ in 0..50 {
            r = leaf.add_imm(r, 1);
        }
        leaf.ret(Some(r));
        let leaf_id = m.add_function(leaf.finish());
        let mut main = FunctionBuilder::new("main", 0);
        let _ = main.call(leaf_id, &[]);
        main.ret(None);
        let mid = m.add_function(main.finish());
        m.set_entry(mid);
        let stats = inline_module(&mut m, InlineConfig::default());
        assert_eq!(stats.inlined, 0, "callee exceeds the size threshold");
    }

    #[test]
    fn multiblock_callees_are_skipped() {
        let mut m = Module::new("mb");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let next = leaf.new_block();
        leaf.br(next);
        leaf.switch_to(next);
        leaf.ret(None);
        let leaf_id = m.add_function(leaf.finish());
        let mut main = FunctionBuilder::new("main", 0);
        main.call_void(leaf_id, &[]);
        main.ret(None);
        let mid = m.add_function(main.finish());
        m.set_entry(mid);
        let stats = inline_module(&mut m, InlineConfig::default());
        assert_eq!(
            stats.inlined, 0,
            "PC3D's redirection hooks must survive inlining"
        );
    }

    #[test]
    fn inlining_then_optimizing_shrinks_code() {
        let m = module();
        let plain_len = crate::Compiler::new(crate::Options::plain())
            .compile(&m)
            .unwrap()
            .image
            .text_len();
        let mut opt = m.clone();
        inline_module(&mut opt, InlineConfig::default());
        crate::opt::optimize_module(&mut opt);
        assert!(verify_module(&opt).is_ok());
        let opt_len = crate::Compiler::new(crate::Options::plain())
            .compile(&opt)
            .unwrap()
            .image
            .text_len();
        // Two call+ret pairs disappear; bodies are tiny.
        assert!(opt_len <= plain_len, "{opt_len} vs {plain_len}");
        assert_eq!(run(&opt), run(&m));
    }
}
