//! Lowering PIR functions to VISA.
//!
//! The same routine serves the static compiler (laying out the whole
//! module) and the runtime compiler (lowering one transformed function at
//! a code-cache address): only the base address and the link facts differ.
//!
//! Instruction selection notes:
//!
//! * A [`pir::Locality::NonTemporal`] load lowers to `prefetchnta` +
//!   `ld` — two instructions, mirroring x86, which is why variants change
//!   the program's instruction count but not its branch count (the paper's
//!   justification for the BPS metric).
//! * Calls to functions with an EVT slot lower to `callv [evt+slot]` when
//!   virtualization is enabled; all other calls are direct.
//! * Branches to the next block in layout order are elided (fallthrough).

use pir::{Function, Inst, Locality, Module, Reg, Term};
use visa::{Op, PReg};

use crate::annex::LinkInfo;

/// Context shared by every function lowering within one module.
#[derive(Copy, Clone, Debug)]
pub struct LowerCtx<'a> {
    /// The module being compiled (callee arities, globals).
    pub module: &'a Module,
    /// Resolved addresses and EVT slots.
    pub link: &'a LinkInfo,
    /// Whether calls to slot-assigned callees go through the EVT.
    pub virtualize: bool,
}

fn preg(r: Reg) -> PReg {
    debug_assert!(r.0 < 256, "register {r} exceeds frame register file");
    PReg(r.0 as u8)
}

/// Number of VISA ops one instruction lowers to.
fn inst_size(inst: &Inst) -> u32 {
    match inst {
        Inst::Load {
            locality: Locality::NonTemporal,
            ..
        } => 2,
        Inst::Nop => 0,
        _ => 1,
    }
}

/// Number of VISA ops a terminator lowers to, given whether each successor
/// is the fallthrough block.
fn term_size(term: &Term, next: Option<pir::BlockId>) -> u32 {
    match term {
        Term::Br(t) => u32::from(Some(*t) != next),
        Term::CondBr {
            then_bb, else_bb, ..
        } => {
            if Some(*then_bb) == next {
                // Invert: a single bz to the else block (or nothing if
                // both fall through).
                u32::from(Some(*else_bb) != next)
            } else {
                1 + u32::from(Some(*else_bb) != next)
            }
        }
        Term::Ret(_) => 1,
    }
}

/// Computes the lowered size (in instructions) of a function. Independent
/// of the base address, so the static compiler can lay out all functions
/// before lowering any.
pub fn lowered_size(func: &Function) -> u32 {
    let offsets = block_offsets(func);
    let nblocks = func.block_count();
    match func.blocks().last() {
        Some(block) => {
            let last = offsets[nblocks - 1];
            last + block.insts.iter().map(inst_size).sum::<u32>() + term_size(&block.term, None)
        }
        None => 0,
    }
}

/// Per-block start offsets of `func`'s lowered code, relative to the
/// function's base address. Lowering is deterministic, so a runtime can
/// recompute these from the embedded IR and resolve the text address of
/// any block — in particular a certified OSR loop header — as
/// `func_addr + block_offsets(func)[header.index()]`, for both the
/// baseline image layout and a code-cache variant.
pub fn block_offsets(func: &Function) -> Vec<u32> {
    let nblocks = func.block_count();
    let mut starts = Vec::with_capacity(nblocks);
    let mut off = 0u32;
    for (bi, block) in func.blocks().iter().enumerate() {
        starts.push(off);
        let next = (bi + 1 < nblocks).then(|| pir::BlockId(bi as u32 + 1));
        off += block.insts.iter().map(inst_size).sum::<u32>();
        off += term_size(&block.term, next);
    }
    starts
}

/// Lowers `func` at text address `base`, resolving calls and globals via
/// the context.
///
/// # Panics
///
/// Panics if the function references link facts that do not exist; a
/// verified module with a complete [`LinkInfo`] never does.
pub fn lower_function(func: &Function, ctx: &LowerCtx<'_>, base: u32) -> Vec<Op> {
    let nblocks = func.block_count();
    // Pass 1: block start offsets.
    let starts = block_offsets(func);
    let off = lowered_size(func);
    let target_of = |b: pir::BlockId| base + starts[b.index()];

    // Pass 2: emit.
    let mut ops = Vec::with_capacity(off as usize);
    for (bi, block) in func.blocks().iter().enumerate() {
        let next = (bi + 1 < nblocks).then(|| pir::BlockId(bi as u32 + 1));
        for inst in &block.insts {
            match inst {
                Inst::Const { dst, value } => {
                    ops.push(Op::Movi {
                        dst: preg(*dst),
                        imm: *value,
                    });
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    ops.push(Op::Alu {
                        op: *op,
                        dst: preg(*dst),
                        a: preg(*lhs),
                        b: preg(*rhs),
                    });
                }
                Inst::BinImm { op, dst, lhs, imm } => {
                    ops.push(Op::AluImm {
                        op: *op,
                        dst: preg(*dst),
                        a: preg(*lhs),
                        imm: *imm,
                    });
                }
                Inst::Load {
                    dst,
                    base: b,
                    offset,
                    locality,
                } => {
                    if locality.is_non_temporal() {
                        ops.push(Op::PrefetchNta {
                            base: preg(*b),
                            offset: *offset,
                        });
                    }
                    ops.push(Op::Load {
                        dst: preg(*dst),
                        base: preg(*b),
                        offset: *offset,
                    });
                }
                Inst::Store {
                    base: b,
                    offset,
                    src,
                } => {
                    ops.push(Op::Store {
                        base: preg(*b),
                        offset: *offset,
                        src: preg(*src),
                    });
                }
                Inst::GlobalAddr { dst, global } => {
                    let addr = ctx.link.global_addrs[global.index()];
                    ops.push(Op::Movi {
                        dst: preg(*dst),
                        imm: addr as i64,
                    });
                }
                Inst::Call { dst, callee, args } => {
                    let vargs: Vec<PReg> = args.iter().map(|r| preg(*r)).collect();
                    let vdst = dst.map(preg);
                    let slot = if ctx.virtualize {
                        ctx.link.func_evt_slot[callee.index()]
                    } else {
                        None
                    };
                    match slot {
                        Some(slot) => ops.push(Op::CallVirt {
                            slot,
                            dst: vdst,
                            args: vargs,
                        }),
                        None => ops.push(Op::Call {
                            target: ctx.link.func_addrs[callee.index()],
                            dst: vdst,
                            args: vargs,
                        }),
                    }
                }
                Inst::Report { channel, src } => {
                    ops.push(Op::Report {
                        channel: *channel,
                        src: preg(*src),
                    });
                }
                Inst::Nop => {}
                Inst::Wait => ops.push(Op::Wait),
            }
        }
        match &block.term {
            Term::Br(t) => {
                if Some(*t) != next {
                    ops.push(Op::Jmp {
                        target: target_of(*t),
                    });
                }
            }
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                if Some(*then_bb) == next {
                    if Some(*else_bb) != next {
                        ops.push(Op::Bz {
                            cond: preg(*cond),
                            target: target_of(*else_bb),
                        });
                    }
                } else {
                    ops.push(Op::Bnz {
                        cond: preg(*cond),
                        target: target_of(*then_bb),
                    });
                    if Some(*else_bb) != next {
                        ops.push(Op::Jmp {
                            target: target_of(*else_bb),
                        });
                    }
                }
            }
            Term::Ret(v) => {
                ops.push(Op::Ret { src: v.map(preg) });
            }
        }
    }
    debug_assert_eq!(
        ops.len() as u32,
        off,
        "size computation out of sync with emission"
    );
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir::FunctionBuilder;

    fn link_for(module: &Module) -> LinkInfo {
        LinkInfo {
            func_addrs: (0..module.functions().len() as u32)
                .map(|i| i * 100)
                .collect(),
            func_evt_slot: vec![None; module.functions().len()],
            global_addrs: (0..module.globals().len() as u64)
                .map(|i| 64 + i * 64)
                .collect(),
            evt_base: 0,
        }
    }

    #[test]
    fn straight_line_size_and_emission_agree() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 64);
        let mut b = FunctionBuilder::new("f", 0);
        let base = b.global_addr(g);
        let v = b.load(base, 0, Locality::Normal);
        let w = b.load(base, 8, Locality::NonTemporal);
        let s = b.add(v, w);
        b.store(base, 16, s);
        b.ret(Some(s));
        let f = b.finish();
        m.add_function(f.clone());
        let link = link_for(&m);
        let ctx = LowerCtx {
            module: &m,
            link: &link,
            virtualize: false,
        };
        let ops = lower_function(&f, &ctx, 0);
        assert_eq!(ops.len() as u32, lowered_size(&f));
        // NT load produced a prefetchnta.
        assert!(ops.iter().any(|o| matches!(o, Op::PrefetchNta { .. })));
        // Exactly one prefetch (one NT site).
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, Op::PrefetchNta { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn fallthrough_branches_elided() {
        let mut b = FunctionBuilder::new("f", 0);
        b.counted_loop(0, 4, 1, |b, i| {
            let _ = b.add_imm(i, 1);
        });
        b.ret(None);
        let f = b.finish();
        let m = {
            let mut m = Module::new("t");
            m.add_function(f.clone());
            m
        };
        let link = link_for(&m);
        let ctx = LowerCtx {
            module: &m,
            link: &link,
            virtualize: false,
        };
        let ops = lower_function(&f, &ctx, 0);
        // entry falls through to header: the entry block's Br is elided.
        // The loop needs exactly one backward Jmp (body -> header).
        let jmps = ops.iter().filter(|o| matches!(o, Op::Jmp { .. })).count();
        assert_eq!(jmps, 1, "ops: {ops:?}");
    }

    #[test]
    fn virtualized_call_uses_evt() {
        let mut m = Module::new("t");
        let mut callee = FunctionBuilder::new("callee", 1);
        let p = callee.param(0);
        callee.ret(Some(p));
        let cid = m.add_function(callee.finish());
        let mut main = FunctionBuilder::new("main", 0);
        let x = main.const_(3);
        let _ = main.call(cid, &[x]);
        main.ret(None);
        let f = main.finish();
        m.add_function(f.clone());
        let mut link = link_for(&m);
        link.func_evt_slot[cid.index()] = Some(7);
        // Virtualization on: emits CallVirt.
        let ctx = LowerCtx {
            module: &m,
            link: &link,
            virtualize: true,
        };
        let ops = lower_function(&f, &ctx, 0);
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::CallVirt { slot: 7, .. })));
        // Virtualization off: emits a direct call to the callee address.
        let ctx2 = LowerCtx {
            module: &m,
            link: &link,
            virtualize: false,
        };
        let ops2 = lower_function(&f, &ctx2, 0);
        assert!(ops2.iter().any(|o| matches!(o, Op::Call { target: 0, .. })));
    }

    #[test]
    fn base_address_offsets_targets() {
        let mut b = FunctionBuilder::new("f", 0);
        b.counted_loop(0, 4, 1, |b, i| {
            let _ = b.add_imm(i, 1);
        });
        b.ret(None);
        let f = b.finish();
        let m = {
            let mut m = Module::new("t");
            m.add_function(f.clone());
            m
        };
        let link = link_for(&m);
        let ctx = LowerCtx {
            module: &m,
            link: &link,
            virtualize: false,
        };
        let at0 = lower_function(&f, &ctx, 0);
        let at500 = lower_function(&f, &ctx, 500);
        for (a, b) in at0.iter().zip(&at500) {
            match (a, b) {
                (Op::Jmp { target: t0 }, Op::Jmp { target: t1 })
                | (Op::Bnz { target: t0, .. }, Op::Bnz { target: t1, .. })
                | (Op::Bz { target: t0, .. }, Op::Bz { target: t1, .. }) => {
                    assert_eq!(t0 + 500, *t1);
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn block_offsets_match_branch_targets() {
        // Every branch target the lowerer emits must equal the base plus
        // the advertised block offset — the property the runtime's OSR
        // header resolution depends on.
        let mut b = FunctionBuilder::new("f", 0);
        b.counted_loop(0, 4, 1, |b, i| {
            let _ = b.add_imm(i, 1);
        });
        b.ret(None);
        let f = b.finish();
        let m = {
            let mut m = Module::new("t");
            m.add_function(f.clone());
            m
        };
        let link = link_for(&m);
        let ctx = LowerCtx {
            module: &m,
            link: &link,
            virtualize: false,
        };
        let base = 300u32;
        let ops = lower_function(&f, &ctx, base);
        let offsets = block_offsets(&f);
        assert_eq!(offsets.len(), f.block_count());
        assert_eq!(offsets[0], 0);
        let block_starts: Vec<u32> = offsets.iter().map(|o| base + o).collect();
        for op in &ops {
            if let Op::Jmp { target } | Op::Bnz { target, .. } | Op::Bz { target, .. } = op {
                assert!(
                    block_starts.contains(target),
                    "branch target {target} is not a block start ({block_starts:?})"
                );
            }
        }
        assert_eq!(ops.len() as u32, lowered_size(&f));
    }

    #[test]
    fn nop_lowers_to_nothing() {
        let mut b = FunctionBuilder::new("f", 0);
        b.push(Inst::Nop);
        b.push(Inst::Nop);
        b.ret(None);
        let f = b.finish();
        assert_eq!(lowered_size(&f), 1); // just the ret
    }
}
